"""Shared singletons hammered from many threads.

The serving layer makes previously per-database components truly shared
(one KernelCache, one metrics registry, one UdfRegistry's stats and
breakers across every session), so each gets a >=8-thread stress test
asserting *exact* counts — a lost increment is a real lock bug, not
flakiness.
"""

import threading

import numpy as np

from repro.engine.kernels import KernelCache
from repro.engine.udf import BatchUdf, UdfStats
from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.obs.metrics import MetricsRegistry
from repro.serve.server import Server, ServerConfig
from repro.storage.schema import DataType

from tests.serve.conftest import install_base

THREADS = 8
ROUNDS = 400


def _hammer(fn) -> None:
    barrier = threading.Barrier(THREADS)

    def worker(index: int) -> None:
        barrier.wait()
        for round_number in range(ROUNDS):
            fn(index, round_number)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsRegistry:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")

        _hammer(lambda i, r: counter.inc())
        assert counter.value == THREADS * ROUNDS

    def test_labeled_counter_per_label_exact(self):
        registry = MetricsRegistry()
        labeled = registry.labeled_counter("hammer_by_thread", label="thread")

        _hammer(lambda i, r: labeled.inc(f"t{i}"))
        for i in range(THREADS):
            assert labeled.values[f"t{i}"] == ROUNDS

    def test_histogram_total_count_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammer_seconds")

        _hammer(lambda i, r: histogram.observe(0.001 * (r % 10)))
        assert sum(histogram.counts) == THREADS * ROUNDS

    def test_concurrent_getters_return_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def fn(i, r):
            counter = registry.counter("shared_total")
            with lock:
                seen.append(id(counter))
            counter.inc()

        _hammer(fn)
        assert len(set(seen)) == 1
        assert registry.counter("shared_total").value == THREADS * ROUNDS


class TestUdfStats:
    def test_record_and_record_cache_are_exact(self):
        stats = UdfStats()

        def fn(i, r):
            stats.record(rows=3, seconds=0.0)
            stats.record_cache(hits=1, misses=2)

        _hammer(fn)
        assert stats.calls == THREADS * ROUNDS
        assert stats.rows == 3 * THREADS * ROUNDS
        assert stats.cache_hits == THREADS * ROUNDS
        assert stats.cache_misses == 2 * THREADS * ROUNDS


class TestCircuitBreaker:
    def test_concurrent_failures_open_once(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout_s=1e9)

        _hammer(lambda i, r: breaker.record_failure())
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1
        assert not breaker.allow()

    def test_mixed_outcomes_leave_a_valid_state(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout_s=1e9)

        def fn(i, r):
            if (i + r) % 3 == 0:
                breaker.record_failure()
            else:
                breaker.record_success()
            breaker.allow()

        _hammer(fn)
        assert breaker.state in (BreakerState.CLOSED, BreakerState.OPEN)

    def test_shared_breaker_registry_from_sessions(self):
        """Sessions share breaker instances through shared_view()."""
        server = Server(ServerConfig())
        install_base(server, rows=8)
        server.root.register_udf(
            BatchUdf(
                name="ident",
                fn=lambda xs: np.asarray(xs, dtype=np.float64),
                return_dtype=DataType.FLOAT64,
            ),
            replace=True,
        )
        try:
            sessions = [server.session(f"bk{i}") for i in range(THREADS)]
            barrier = threading.Barrier(THREADS)

            def worker(index):
                barrier.wait()
                for _ in range(5):
                    sessions[index].query("SELECT sum(ident(x)) FROM base")

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # All sessions resolved the same underlying breaker object.
            breakers = {
                id(s.db.udfs._breaker_get_or_create(s.db.udfs.get("ident")))
                for s in sessions
            }
            assert len(breakers) == 1
        finally:
            server.close()


class TestKernelCache:
    def test_shared_cache_from_many_sessions(self):
        server = Server(ServerConfig(max_concurrent=THREADS))
        install_base(server, rows=32)
        try:
            sessions = [server.session(f"kc{i}") for i in range(THREADS)]
            results = []
            lock = threading.Lock()
            barrier = threading.Barrier(THREADS)

            def worker(index):
                barrier.wait()
                for _ in range(20):
                    rows = sessions[index].query(
                        "SELECT count(*) FROM base WHERE x * 2.0 + 1.0 > 4.0"
                    )
                    with lock:
                        results.append(rows[0][0])

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(results)) == 1  # every lookup compiled/read safely
            kernels = server.kernels
            if kernels is not None:
                assert kernels.hits + kernels.misses >= THREADS * 20
        finally:
            server.close()

    def test_direct_lookup_race_is_consistent(self):
        """Raw cache hammering: racing lookups for the same key must all
        return a working kernel and the cache must stay within capacity."""
        from repro.engine.frame import Frame, FrameColumn
        from repro.sql import parse_statement

        cache = KernelCache(capacity=4)
        frame = Frame(
            [
                FrameColumn(
                    None, "x", DataType.FLOAT64,
                    np.arange(16, dtype=np.float64),
                )
            ]
        )
        statement = parse_statement("SELECT x * 2.0 + 1.0 FROM t")
        expression = statement.items[0].expression
        outputs = []
        lock = threading.Lock()

        def fn(i, r):
            kernel = cache.lookup(expression, frame)
            if kernel is not None:
                with lock:
                    outputs.append(float(kernel.evaluate(frame).data.sum()))

        _hammer(fn)
        assert len(cache) <= 4
        assert len(set(outputs)) <= 1
