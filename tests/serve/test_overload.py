"""Admission control: bounded queue, typed shedding, per-session caps."""

import threading

import numpy as np
import pytest

from repro.engine.udf import BatchUdf
from repro.errors import ServerOverloaded
from repro.serve.server import Server, ServerConfig
from repro.storage.schema import DataType

from tests.serve.conftest import install_base


def _slow_server(config: ServerConfig):
    """A server whose ``slow(x)`` UDF blocks until ``release`` is set,
    so tests can pin its only slot deterministically."""
    server = Server(config)
    install_base(server, rows=8)
    entered = threading.Event()
    release = threading.Event()

    def slow(xs):
        entered.set()
        assert release.wait(10.0), "slot holder never released"
        return np.asarray(xs, dtype=np.float64)

    server.root.register_udf(
        BatchUdf(
            name="slow", fn=slow, return_dtype=DataType.FLOAT64,
            cacheable=False,
        ),
        replace=True,
    )
    return server, entered, release


def _occupy_slot(server, entered):
    """Start a query that holds the server's slot; returns its thread."""
    session = server.session("holder")
    thread = threading.Thread(
        target=lambda: session.execute(
            "SELECT sum(slow(x)) FROM base", timeout_s=30.0
        ),
        daemon=True,
    )
    thread.start()
    assert entered.wait(10.0)
    return thread


class TestShedding:
    def test_queue_full_sheds_r006(self):
        server, entered, release = _slow_server(
            ServerConfig(max_concurrent=1, max_queue=0)
        )
        try:
            holder = _occupy_slot(server, entered)
            victim = server.session("victim")
            with pytest.raises(ServerOverloaded) as excinfo:
                victim.execute("SELECT count(*) FROM base", timeout_s=5.0)
            assert excinfo.value.code == "R006"
            assert excinfo.value.reason == "queue_full"
            assert excinfo.value.retry_after_s > 0
            release.set()
            holder.join(timeout=10.0)
            # Capacity freed: the same statement is admitted now.
            assert victim.query("SELECT count(*) FROM base") == [(8,)]
            assert server.stats().shed == {"queue_full": 1}
        finally:
            release.set()
            server.close()

    def test_queue_timeout_sheds_r006(self):
        server, entered, release = _slow_server(
            ServerConfig(max_concurrent=1, max_queue=4, queue_timeout_s=0.05)
        )
        try:
            holder = _occupy_slot(server, entered)
            victim = server.session("victim")
            with pytest.raises(ServerOverloaded) as excinfo:
                victim.execute("SELECT count(*) FROM base", timeout_s=5.0)
            assert excinfo.value.reason == "queue_timeout"
            release.set()
            holder.join(timeout=10.0)
        finally:
            release.set()
            server.close()

    def test_session_inflight_cap_sheds(self):
        server, entered, release = _slow_server(
            ServerConfig(max_concurrent=4, max_queue=8, session_inflight_cap=1)
        )
        try:
            session = server.session("greedy")
            thread = threading.Thread(
                target=lambda: session.execute(
                    "SELECT sum(slow(x)) FROM base", timeout_s=30.0
                ),
                daemon=True,
            )
            thread.start()
            assert entered.wait(10.0)
            # Second statement on the *same* session exceeds its cap.
            with pytest.raises(ServerOverloaded) as excinfo:
                session.execute("SELECT count(*) FROM base", timeout_s=5.0)
            assert excinfo.value.reason == "session_cap"
            # A different session is unaffected.
            other = server.session("polite")
            assert other.query("SELECT count(*) FROM base") == [(8,)]
            release.set()
            thread.join(timeout=10.0)
        finally:
            release.set()
            server.close()

    def test_server_memory_budget_sheds(self):
        server = Server(
            ServerConfig(max_concurrent=4, server_memory_bytes=1)
        )
        install_base(server, rows=8)
        try:
            session = server.session()
            with pytest.raises(ServerOverloaded) as excinfo:
                session.execute("SELECT count(*) FROM base")
            assert excinfo.value.reason == "memory"
        finally:
            server.close()

    def test_shed_is_not_counted_as_executed(self):
        server, entered, release = _slow_server(
            ServerConfig(max_concurrent=1, max_queue=0)
        )
        try:
            holder = _occupy_slot(server, entered)
            victim = server.session("victim")
            with pytest.raises(ServerOverloaded):
                victim.execute("SELECT count(*) FROM base", timeout_s=5.0)
            release.set()
            holder.join(timeout=10.0)
            stats = server.stats()
            assert stats.executed == 1  # only the holder's query ran
            assert sum(stats.shed.values()) == 1
        finally:
            release.set()
            server.close()
