"""Differential correctness: concurrent serving == serial execution.

The acceptance bar for the serving layer: a fixed corpus of statements,
run through 8 concurrent sessions (mixed readers and writers), produces
per-query results identical to running the same per-session scripts one
session at a time — with and without a fault plan active.  Writers
target per-session tables, so the expected answer of every read is
well-defined regardless of interleaving; the concurrency still hammers
the shared catalog, statistics, caches, and admission control.
"""

import threading

import numpy as np

from repro.errors import ReproError
from repro.serve.server import Server, ServerConfig

from tests.serve.conftest import install_base, register_bucket

SESSIONS = 8


def _script(index: int) -> list[tuple[str, str | None]]:
    """(sql, query_id) statements for session ``index``; query_id is
    None for writes (judged only by not failing)."""
    t = f"w{index}"
    return [
        (f"CREATE TABLE {t} (k INT, v FLOAT)", None),
        (f"INSERT INTO {t} VALUES (1, 1.5), (2, 2.5)", None),
        (f"SELECT count(*), sum(v) FROM {t}", "own_agg"),
        ("SELECT count(*) FROM base", "base_count"),
        (f"INSERT INTO {t} VALUES (3, {index}.25)", None),
        (f"SELECT k, v FROM {t} ORDER BY k", "own_rows"),
        (
            "SELECT bucket(x), count(*) FROM base "
            "GROUP BY bucket(x) ORDER BY bucket(x)",
            "udf_groupby",
        ),
        ("SELECT count(*) FROM base WHERE x > 3", "filtered"),
    ]


def _fingerprint(rows) -> tuple:
    return tuple(
        sorted(
            tuple(v.item() if isinstance(v, np.generic) else v for v in row)
            for row in rows
        )
    )


def _make_server(fault_plan=None) -> Server:
    server = Server(
        ServerConfig(max_concurrent=4, max_queue=SESSIONS * 8, queue_timeout_s=30.0),
        fault_plan=fault_plan,
    )
    install_base(server)
    register_bucket(server)
    return server


def _run_script(session, index, results, errors) -> None:
    for sql, query_id in _script(index):
        try:
            result = session.execute(sql, timeout_s=30.0)
        except ReproError as exc:
            if query_id is not None:
                errors[(index, query_id)] = type(exc).__name__
            continue
        if query_id is not None:
            results[(index, query_id)] = _fingerprint(result.rows())


def _serial_baseline() -> dict:
    results: dict = {}
    errors: dict = {}
    server = _make_server()
    try:
        for index in range(SESSIONS):
            with server.session(f"serial{index}") as session:
                _run_script(session, index, results, errors)
    finally:
        server.close()
    assert not errors, f"serial baseline must be error-free: {errors}"
    return results


def _concurrent_run(fault_plan=None) -> tuple[dict, dict]:
    results: dict = {}
    errors: dict = {}
    lock = threading.Lock()
    server = _make_server(fault_plan)
    try:
        barrier = threading.Barrier(SESSIONS)

        def worker(index: int) -> None:
            mine: dict = {}
            bad: dict = {}
            with server.session(f"conc{index}") as session:
                barrier.wait()
                _run_script(session, index, mine, bad)
            with lock:
                results.update(mine)
                errors.update(bad)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(SESSIONS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        server.close()
    return results, errors


class TestDifferential:
    def test_concurrent_matches_serial(self):
        baseline = _serial_baseline()
        concurrent, errors = _concurrent_run()
        assert errors == {}
        assert concurrent == baseline

    def test_concurrent_matches_serial_under_faults(self):
        """With a transient fault plan live at every PR-4 site, each
        query either matches the fault-free serial answer exactly or
        fails typed — never a silently wrong answer."""
        baseline = _serial_baseline()
        concurrent, errors = _concurrent_run(
            fault_plan="seed=11; udf.batch_call:transient@0.3#6"
        )
        for key, fingerprint in concurrent.items():
            assert fingerprint == baseline[key], f"wrong rows for {key}"
        # Anything that did error must have been typed (collected as a
        # class name) and must not also claim a result.
        for key in errors:
            assert key not in concurrent


class TestSnapshotVisibility:
    def test_reader_pinned_before_write_never_sees_it(self):
        """A read that began before an INSERT commits must finish on the
        old version even when the write lands mid-scan."""
        from repro.engine.udf import BatchUdf
        from repro.storage.schema import DataType

        server = _make_server()
        entered = threading.Event()
        release = threading.Event()

        def gate(xs):
            entered.set()
            assert release.wait(10.0), "gate never released"
            return np.asarray(xs, dtype=np.float64)

        server.root.register_udf(
            BatchUdf(
                name="gate",
                fn=gate,
                return_dtype=DataType.FLOAT64,
                cacheable=False,
            ),
            replace=True,
        )
        reader = server.session("reader")
        writer = server.session("writer")
        seen: list = []
        try:
            thread = threading.Thread(
                target=lambda: seen.extend(
                    reader.query("SELECT count(*), min(gate(x)) FROM base")
                ),
                daemon=True,
            )
            thread.start()
            assert entered.wait(10.0)
            # The write commits while the reader is mid-query...
            writer.execute("INSERT INTO base VALUES (999, -50.0)")
            assert writer.query("SELECT count(*) FROM base") == [(65,)]
            release.set()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            # ...yet the reader's answer reflects its pinned snapshot.
            assert seen == [(64, 0.0)]
            # A *new* read sees the committed row.
            release.set()
            assert reader.query("SELECT count(*) FROM base") == [(65,)]
        finally:
            reader.close()
            writer.close()
            server.close()
