"""Socket front end: line-JSON round-trips over real TCP."""

import json
import socket

import pytest

from repro.serve.net import start
from repro.serve.server import Server, ServerConfig

from tests.serve.conftest import install_base, register_bucket


@pytest.fixture()
def tcp_server():
    server = Server(ServerConfig(max_concurrent=4))
    install_base(server)
    register_bucket(server)
    tcp, thread = start(server, port=0)
    yield tcp
    tcp.shutdown()
    tcp.server_close()
    server.close()


def _connect(tcp):
    sock = socket.create_connection(tcp.server_address, timeout=10.0)
    return sock, sock.makefile("rwb")


def _ask(stream, payload) -> dict:
    stream.write((json.dumps(payload) + "\n").encode())
    stream.flush()
    return json.loads(stream.readline())


class TestSocketRoundTrip:
    def test_select_returns_rows(self, tcp_server):
        sock, stream = _connect(tcp_server)
        try:
            response = _ask(stream, {"sql": "SELECT count(*) FROM base"})
            assert response["ok"] is True
            assert response["rows"] == [[64]]
            assert len(response["columns"]) == 1
            assert response["elapsed_ms"] >= 0
        finally:
            sock.close()

    def test_write_then_read_on_one_connection(self, tcp_server):
        sock, stream = _connect(tcp_server)
        try:
            created = _ask(stream, {"sql": "CREATE TEMP TABLE t (k INT)"})
            assert created["ok"] is True
            inserted = _ask(stream, {"sql": "INSERT INTO t VALUES (1), (2)"})
            assert inserted["ok"] is True
            assert inserted["affected_rows"] == 2
            rows = _ask(stream, {"sql": "SELECT count(*) FROM t"})
            assert rows["rows"] == [[2]]
        finally:
            sock.close()

    def test_temp_tables_die_with_the_connection(self, tcp_server):
        sock1, stream1 = _connect(tcp_server)
        _ask(stream1, {"sql": "CREATE TEMP TABLE mine (k INT)"})
        # A second live connection cannot see the first one's temps.
        sock2, stream2 = _connect(tcp_server)
        try:
            response = _ask(stream2, {"sql": "SELECT count(*) FROM mine"})
            assert response["ok"] is False
            assert response["error"] == "SemanticError"
        finally:
            sock1.close()
            sock2.close()

    def test_error_payload_carries_code(self, tcp_server):
        sock, stream = _connect(tcp_server)
        try:
            response = _ask(stream, {"sql": "SELECT FROM FROM"})
            assert response["ok"] is False
            assert "message" in response
        finally:
            sock.close()

    def test_malformed_request_is_bad_request(self, tcp_server):
        sock, stream = _connect(tcp_server)
        try:
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert response["error"] == "BadRequest"
        finally:
            sock.close()

    def test_udf_and_timeout_knob(self, tcp_server):
        sock, stream = _connect(tcp_server)
        try:
            response = _ask(
                stream,
                {
                    "sql": (
                        "SELECT bucket(x), count(*) FROM base "
                        "GROUP BY bucket(x) ORDER BY bucket(x)"
                    ),
                    "timeout_s": 10.0,
                },
            )
            assert response["ok"] is True
            assert len(response["rows"]) == 4
        finally:
            sock.close()
