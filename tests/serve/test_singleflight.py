"""Single-flight deduplication of identical concurrent inference."""

import threading
import time

import numpy as np

from repro.engine.infer_cache import SingleFlight, group_key
from repro.engine.udf import BatchUdf
from repro.errors import UdfError
from repro.serve.server import Server, ServerConfig
from repro.storage.schema import DataType

from tests.serve.conftest import install_base

N = 6
SQL = "SELECT sum(model(x)) FROM base"


def _server_with_model(fn) -> Server:
    server = Server(ServerConfig(max_concurrent=N + 2, max_queue=N * 4))
    install_base(server)
    server.root.register_udf(
        BatchUdf(name="model", fn=fn, return_dtype=DataType.FLOAT64),
        replace=True,
    )
    return server


def _fan_out(server, sql=SQL):
    """Run ``sql`` once from N sessions simultaneously; returns
    (results, exceptions) keyed by session index."""
    results: dict = {}
    failures: dict = {}
    barrier = threading.Barrier(N)
    lock = threading.Lock()

    def worker(index: int) -> None:
        with server.session(f"sf{index}") as session:
            barrier.wait()
            try:
                rows = session.execute(sql, timeout_s=30.0).rows()
            except Exception as exc:  # noqa: BLE001 - collected for asserts
                with lock:
                    failures[index] = exc
                return
        with lock:
            results[index] = rows

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(N)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, failures


class TestSingleFlightEndToEnd:
    def test_n_identical_queries_one_model_call(self):
        calls = []

        def model(xs):
            calls.append(len(xs))
            time.sleep(0.15)  # hold the flight open so followers pile up
            return np.asarray(xs, dtype=np.float64) * 2.0

        server = _server_with_model(model)
        try:
            results, failures = _fan_out(server)
            assert failures == {}
            assert len(results) == N
            expected = results[0]
            assert all(rows == expected for rows in results.values())
            # The acceptance criterion: exactly one model call for N
            # concurrent identical queries.
            assert len(calls) == 1
            stats = server.infer_cache.stats_dict()
            assert stats["singleflight_leaders"] == 1
            assert stats["singleflight_followers"] == N - 1
        finally:
            server.close()

    def test_leader_failure_propagates_to_followers(self):
        calls = []

        def model(xs):
            calls.append(len(xs))
            time.sleep(0.15)
            raise RuntimeError("model exploded")

        server = _server_with_model(model)
        try:
            results, failures = _fan_out(server)
            assert results == {}
            assert len(failures) == N
            # Every caller gets the typed failure; nobody stampedes the
            # broken model with a duplicate call.
            assert all(isinstance(exc, UdfError) for exc in failures.values())
            assert len(calls) == 1
        finally:
            server.close()

    def test_sequential_repeats_hit_cache_not_singleflight(self):
        calls = []

        def model(xs):
            calls.append(len(xs))
            return np.asarray(xs, dtype=np.float64)

        server = _server_with_model(model)
        try:
            with server.session() as session:
                first = session.query(SQL)
                second = session.query(SQL)
            assert first == second
            assert len(calls) == 1  # second run is a pure cache hit
            stats = server.infer_cache.stats_dict()
            assert stats["singleflight_followers"] == 0
        finally:
            server.close()


class TestSingleFlightUnit:
    def test_leader_then_follower_then_finish(self):
        flight = SingleFlight()
        role, handle = flight.begin("k")
        assert role == "leader"
        done = []

        def follower():
            role2, handle2 = flight.begin("k")
            assert role2 == "follower"
            flight.wait(handle2, None)
            done.append(True)

        thread = threading.Thread(target=follower, daemon=True)
        thread.start()
        time.sleep(0.05)
        flight.finish("k", handle)
        thread.join(timeout=5.0)
        assert done == [True]
        assert flight.leaders == 1
        assert flight.followers == 1

    def test_reentrant_begin_bypasses(self):
        flight = SingleFlight()
        role, handle = flight.begin("k")
        assert role == "leader"
        # The same thread re-entering (nested UDF evaluation) must not
        # deadlock behind its own flight.
        role2, handle2 = flight.begin("k")
        assert role2 == "bypass"
        assert handle2 is None
        flight.finish("k", handle)

    def test_leader_exception_reraised_by_wait(self):
        flight = SingleFlight()
        _, handle = flight.begin("k")
        boom = ValueError("boom")
        caught = []

        def follower():
            role, handle2 = flight.begin("k")
            assert role == "follower"
            try:
                flight.wait(handle2, None)
            except ValueError as exc:
                caught.append(exc)

        thread = threading.Thread(target=follower, daemon=True)
        thread.start()
        time.sleep(0.05)
        flight.finish("k", handle, boom)
        thread.join(timeout=5.0)
        assert caught and caught[0] is boom

    def test_group_key_is_order_insensitive_and_distinct(self):
        a = group_key("ns", [b"k1", b"k2"])
        b = group_key("ns", [b"k2", b"k1"])
        assert a == b
        assert group_key("ns", [b"k1"]) != a
        assert group_key("other", [b"k1", b"k2"]) != a
