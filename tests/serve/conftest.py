"""Shared helpers for the serving-layer tests."""

import numpy as np
import pytest

from repro.engine.udf import BatchUdf
from repro.serve.server import Server, ServerConfig
from repro.storage.schema import DataType


def install_base(server: Server, rows: int = 64) -> None:
    """A small shared table every scenario can read (and write)."""
    server.root.create_table_from_dict(
        "base",
        {
            "id": list(range(rows)),
            "x": [float(i % 7) for i in range(rows)],
        },
    )


def register_bucket(server: Server) -> None:
    server.root.register_udf(
        BatchUdf(
            name="bucket",
            fn=lambda xs: np.floor(np.asarray(xs) / 2.0),
            return_dtype=DataType.FLOAT64,
        ),
        replace=True,
    )


@pytest.fixture()
def server():
    srv = Server(ServerConfig(max_concurrent=8, max_queue=16))
    install_base(srv)
    register_bucket(srv)
    yield srv
    srv.close()
