"""Session semantics: isolation, visibility, lifecycle."""

import pytest

from repro.errors import SemanticError, ServerOverloaded
from repro.serve.server import Server, ServerConfig


class TestSessionBasics:
    def test_auto_names_and_duplicates(self, server):
        a = server.session()
        b = server.session()
        assert a.name != b.name
        assert set(server.sessions()) == {a.name, b.name}
        with pytest.raises(ValueError):
            server.session(a.name)

    def test_committed_writes_visible_across_sessions(self, server):
        a = server.session()
        b = server.session()
        a.execute("CREATE TABLE t (x INT)")
        a.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert b.query("SELECT count(*) FROM t") == [(3,)]

    def test_temp_tables_are_session_private(self, server):
        a = server.session()
        b = server.session()
        a.execute("CREATE TEMP TABLE scratch (k INT)")
        a.execute("INSERT INTO scratch VALUES (7)")
        assert a.query("SELECT k FROM scratch") == [(7,)]
        with pytest.raises(SemanticError):
            b.query("SELECT k FROM scratch")

    def test_temp_name_shadows_then_unshadows_base(self, server):
        a = server.session()
        a.execute("CREATE TEMP TABLE base (k INT)")
        a.execute("INSERT INTO base VALUES (42)")
        assert a.query("SELECT count(*) FROM base") == [(1,)]
        a.drop_temp_objects()
        (count,) = a.query("SELECT count(*) FROM base")[0]
        assert count == 64  # the shared table is visible again

    def test_close_drops_temps_and_detaches(self, server):
        a = server.session("worker")
        a.execute("CREATE TEMP TABLE scratch (k INT)")
        a.close()
        assert "worker" not in server.sessions()
        with pytest.raises(ServerOverloaded) as excinfo:
            a.execute("SELECT 1")
        assert excinfo.value.reason == "session_closed"
        a.close()  # idempotent

    def test_context_manager(self, server):
        with server.session("cm") as session:
            assert session.query("SELECT count(*) FROM base") == [(64,)]
        assert "cm" not in server.sessions()

    def test_closed_server_refuses_sessions(self):
        srv = Server(ServerConfig())
        srv.close()
        with pytest.raises(ServerOverloaded) as excinfo:
            srv.session()
        assert excinfo.value.reason == "server_closed"

    def test_udf_visible_to_every_session(self, server):
        a = server.session()
        rows = a.query(
            "SELECT bucket(x), count(*) FROM base "
            "GROUP BY bucket(x) ORDER BY bucket(x)"
        )
        assert len(rows) == 4  # floor(x/2) over x in 0..6

    def test_per_session_settings_and_labels(self, server):
        a = server.session("tagged", label="tenant-1")
        a.settings["dialect"] = "strict"
        b = server.session()
        assert b.settings == {}
        assert a.label == "tenant-1"
        assert b.label == b.name

    def test_stats_counts_executions(self, server):
        a = server.session()
        for _ in range(3):
            a.query("SELECT count(*) FROM base")
        stats = server.stats()
        assert stats.executed == 3
        assert stats.sessions == 1
        assert stats.to_dict()["shed_total"] == 0


class TestDataVersioning:
    def test_catalog_version_bumps_on_write(self, server):
        a = server.session()
        before = server.catalog.version
        a.execute("CREATE TABLE v (x INT)")
        a.execute("INSERT INTO v VALUES (1)")
        assert server.catalog.version > before
        assert server.catalog.data_version("v") >= 1

    def test_stats_invalidate_across_sessions(self, server):
        a = server.session()
        b = server.session()
        a.execute("CREATE TABLE grow (x INT)")
        a.execute("INSERT INTO grow VALUES (1)")
        assert b.query("SELECT count(*) FROM grow") == [(1,)]
        a.execute("INSERT INTO grow VALUES (2), (3)")
        # b's second read must see the new cardinality, not a stale plan.
        assert b.query("SELECT count(*) FROM grow") == [(3,)]
