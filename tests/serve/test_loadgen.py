"""The seeded load generator and its BENCH_serve.json sidecar."""

import json

from repro.serve.loadgen import LoadgenConfig, run_loadgen, write_sidecar


class TestLoadgen:
    def test_quick_run_reports_latency_and_shedding(self):
        report = run_loadgen(
            LoadgenConfig(quick=True, sessions=4, requests_per_session=8)
        )
        scenarios = report["scenarios"]
        assert set(scenarios) == {"steady", "overload"}
        steady = scenarios["steady"]
        assert steady["requests"] == steady["ok"] + steady["shed"] + (
            steady["timeouts"] + steady["fallbacks"] + steady["untyped_errors"]
        )
        for key in ("p50_ms", "p99_ms", "qps", "shed_rate"):
            assert key in steady
        assert steady["ok"] > 0
        assert steady["untyped_errors"] == 0
        overload = scenarios["overload"]
        assert overload["untyped_errors"] == 0
        # Overload failures must be *typed*: everything is accounted for.
        assert overload["requests"] == (
            overload["ok"] + overload["shed"] + overload["timeouts"]
            + overload["fallbacks"]
        )
        assert "singleflight" in steady
        assert steady["server"]["executed"] >= steady["ok"]

    def test_quick_run_with_fault_plan_stays_typed(self):
        report = run_loadgen(
            LoadgenConfig(
                quick=True,
                sessions=4,
                requests_per_session=6,
                fault_plan="seed=11; udf.batch_call:transient@0.3#6",
            )
        )
        for scenario in report["scenarios"].values():
            assert scenario["untyped_errors"] == 0

    def test_config_echoed_and_quick_trims(self):
        config = LoadgenConfig(quick=True, sessions=32, requests_per_session=99)
        effective = config.effective()
        assert effective.sessions == 4
        assert effective.requests_per_session == 12

    def test_sidecar_round_trips(self, tmp_path):
        report = run_loadgen(
            LoadgenConfig(quick=True, sessions=2, requests_per_session=4)
        )
        path = write_sidecar(report, str(tmp_path / "BENCH_serve.json"))
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["scenarios"]["steady"]["requests"] == (
            report["scenarios"]["steady"]["requests"]
        )
        assert loaded["config"]["quick"] is True
