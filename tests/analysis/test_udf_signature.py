"""UdfSignature: the single source of truth for UDF call shapes."""

import numpy as np
import pytest

from repro.engine import BatchUdf, Database, UdfRegistry
from repro.engine.udf import UdfSignature, _infer_arity
from repro.errors import SemanticError
from repro.storage.schema import DataType


class TestArityInference:
    def test_single_argument_lambda(self):
        udf = BatchUdf(
            name="f", fn=lambda v: v, return_dtype=DataType.FLOAT64
        )
        assert udf.signature.min_args == 1
        assert udf.signature.max_args == 1

    def test_optional_arguments(self):
        def fn(a, b=None, c=None):
            return a

        udf = BatchUdf(name="f", fn=fn, return_dtype=DataType.FLOAT64)
        assert (udf.signature.min_args, udf.signature.max_args) == (1, 3)
        assert udf.signature.accepts_arity(1)
        assert udf.signature.accepts_arity(3)
        assert not udf.signature.accepts_arity(0)
        assert not udf.signature.accepts_arity(4)

    def test_variadic(self):
        def fn(first, *rest):
            return first

        udf = BatchUdf(name="f", fn=fn, return_dtype=DataType.FLOAT64)
        assert (udf.signature.min_args, udf.signature.max_args) == (1, None)
        assert udf.signature.accepts_arity(7)
        assert not udf.signature.accepts_arity(0)

    def test_non_introspectable_accepts_anything(self):
        assert _infer_arity(min) == (None, None)
        signature = UdfSignature(
            return_dtype=DataType.INT64,
            arg_dtypes=None,
            min_args=None,
            max_args=None,
        )
        assert signature.accepts_arity(0)
        assert signature.accepts_arity(99)

    def test_arity_text(self):
        def make(minimum, maximum):
            return UdfSignature(
                return_dtype=DataType.FLOAT64,
                arg_dtypes=None,
                min_args=minimum,
                max_args=maximum,
            )

        assert make(2, 2).arity_text() == "2"
        assert make(1, 3).arity_text() == "1..3"
        assert make(1, None).arity_text() == "at least 1"
        assert make(None, None).arity_text() == "any number of"


class TestDeclaredDtypes:
    def test_declared_dtypes_fix_arity(self):
        udf = BatchUdf(
            name="f",
            fn=lambda *args: args[0],
            return_dtype=DataType.FLOAT64,
            arg_dtypes=(DataType.FLOAT64, DataType.STRING),
        )
        assert (udf.signature.min_args, udf.signature.max_args) == (2, 2)
        assert udf.signature.arg_dtypes == (
            DataType.FLOAT64,
            DataType.STRING,
        )

    def test_signature_return_matches_udf(self):
        udf = BatchUdf(
            name="f", fn=lambda v: v, return_dtype=DataType.STRING
        )
        assert udf.signature.return_dtype is DataType.STRING

    def test_registry_conversion_uses_signature(self):
        registry = UdfRegistry()
        registry.register(
            BatchUdf(
                name="to_int",
                fn=lambda v: v * 2,
                return_dtype=DataType.INT64,
            )
        )
        out = registry.invoke("to_int", [np.array([1.0, 2.5])])
        assert out.dtype is DataType.INT64
        assert np.asarray(out.data).dtype == np.int64


class TestAnalyzerConsumesSignature:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.create_table_from_dict(
            "t", {"a": [1, 2], "g": ["x", "y"]}
        )
        return database

    def test_declared_none_entry_is_wildcard(self, db):
        db.register_udf(
            BatchUdf(
                name="mix",
                fn=lambda a, b: np.zeros(len(a)),
                return_dtype=DataType.FLOAT64,
                arg_dtypes=(None, DataType.STRING),
            )
        )
        db.execute("SELECT mix(a, g) FROM t")  # INT64 passes the wildcard
        db.execute("SELECT mix(g, g) FROM t")  # so does STRING
        with pytest.raises(SemanticError) as excinfo:
            db.execute("SELECT mix(a, a) FROM t")
        assert excinfo.value.code == "S011"

    def test_numeric_widening_allowed(self, db):
        db.register_udf(
            BatchUdf(
                name="numeric",
                fn=lambda v: np.asarray(v, dtype=np.float64),
                return_dtype=DataType.FLOAT64,
                arg_dtypes=(DataType.FLOAT64,),
            )
        )
        db.execute("SELECT numeric(a) FROM t")  # INT64 widens to FLOAT64
        with pytest.raises(SemanticError):
            db.execute("SELECT numeric(g) FROM t")

    def test_variadic_udf_through_sql(self, db):
        def fold(first, *rest):
            total = np.asarray(first, dtype=np.float64)
            for other in rest:
                total = total + np.asarray(other, dtype=np.float64)
            return total

        db.register_udf(
            BatchUdf(name="fold", fn=fold, return_dtype=DataType.FLOAT64)
        )
        assert db.query("SELECT fold(a) FROM t") == [(1.0,), (2.0,)]
        assert db.query("SELECT fold(a, a, a) FROM t") == [(3.0,), (6.0,)]
        with pytest.raises(SemanticError) as excinfo:
            db.execute("SELECT fold() FROM t")
        assert excinfo.value.code == "S006"
