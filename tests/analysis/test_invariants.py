"""Plan-invariant validator: clean rewrites pass, broken ones are caught.

The full test suite already runs with validation enabled (the Database
auto-enables it under pytest), so every query elsewhere in ``tests/`` is
implicitly a "clean" case; here the validator is also exercised directly
against hand-broken plan pairs, which the optimizer itself (correctly)
never produces.
"""

import pytest

from repro.analysis import validate_rewrite
from repro.engine import Database
from repro.engine.logical import Filter, Scan
from repro.engine.optimizer import Optimizer
from repro.errors import PlanValidationError
from repro.sql import parse_statement
from repro.sql.ast_nodes import BinaryOp, ColumnRef, Literal


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t", {"a": [1, 2, 3, 4], "b": [1.0, 2.0, 3.0, 4.0], "g": list("wxyz")}
    )
    database.create_table_from_dict("u", {"a": [1, 2], "c": ["p", "q"]})
    return database


def planned(db, sql):
    return db._planner.plan_select(parse_statement(sql))


def optimized(db, sql):
    plan = planned(db, sql)
    return Optimizer(
        db.catalog, db.statistics, db.udfs, db.optimizer_config
    ).optimize(plan)


class TestCleanRewrites:
    CASES = [
        "SELECT a FROM t WHERE a > 1 AND b < 4.0",
        "SELECT t.a, u.c FROM t JOIN u ON t.a = u.a WHERE t.b > 1.0",
        "SELECT t.a FROM t, u WHERE t.a = u.a AND u.c = 'p'",
        "SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 0",
        "SELECT DISTINCT g FROM t ORDER BY g LIMIT 2",
        "SELECT a FROM (SELECT a, b FROM t WHERE a > 1) AS s WHERE s.b < 4.0",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_real_rewrites_validate(self, db, sql):
        before = planned(db, sql)
        after = Optimizer(
            db.catalog, db.statistics, db.udfs, db.optimizer_config
        ).optimize(before)
        assert validate_rewrite(before, after, db.catalog) == []

    @pytest.mark.parametrize("sql", CASES)
    def test_execute_under_validation(self, db, sql):
        # under pytest validation is on by default: execution both runs
        # the check and returns correct results
        assert db._validate_plans
        db.execute(sql)


class TestBrokenRewrites:
    def test_dropped_conjunct(self, db):
        before = planned(db, "SELECT a FROM t WHERE a > 1 AND b < 4.0")
        after = optimized(db, "SELECT a FROM t WHERE a > 1")
        violations = validate_rewrite(before, after, db.catalog)
        assert any("dropped" in v and "b < 4.0" in v for v in violations)

    def test_invented_conjunct(self, db):
        before = planned(db, "SELECT a FROM t")
        after = optimized(db, "SELECT a FROM t WHERE a > 1")
        violations = validate_rewrite(before, after, db.catalog)
        assert any("invented" in v for v in violations)

    def test_join_keys_count_as_conjuncts(self, db):
        # a filter that became hash-join keys is NOT a violation...
        before = planned(db, "SELECT t.a FROM t, u WHERE t.a = u.a")
        after = optimized(db, "SELECT t.a FROM t, u WHERE t.a = u.a")
        assert validate_rewrite(before, after, db.catalog) == []
        # ...but losing the join condition entirely is
        bad = optimized(db, "SELECT t.a FROM t JOIN u ON t.a = u.a")
        lost = planned(db, "SELECT t.a FROM t, u WHERE t.a = u.a AND t.b > 1.0")
        violations = validate_rewrite(lost, bad, db.catalog)
        assert any("dropped" in v for v in violations)

    def test_changed_output_schema(self, db):
        before = planned(db, "SELECT a FROM t")
        after = optimized(db, "SELECT b FROM t")
        violations = validate_rewrite(before, after, db.catalog)
        assert any("output schema" in v for v in violations)

    def test_altered_limit(self, db):
        before = planned(db, "SELECT a FROM t LIMIT 3")
        after = optimized(db, "SELECT a FROM t LIMIT 2")
        violations = validate_rewrite(before, after, db.catalog)
        assert any("non-relational" in v for v in violations)

    def test_dropped_sort(self, db):
        before = planned(db, "SELECT a FROM t ORDER BY a")
        after = optimized(db, "SELECT a FROM t")
        violations = validate_rewrite(before, after, db.catalog)
        assert any("non-relational" in v for v in violations)

    def test_predicate_pushed_out_of_scope(self, db):
        # hand-build a filter over t referencing qualifier u: the three
        # diff checks pass (before is the same tree) but the scope check
        # must flag it
        predicate = BinaryOp(
            op="=",
            left=ColumnRef(name="c", table="u"),
            right=Literal(value="p"),
        )
        broken = Filter(child=Scan(table_name="t"), predicate=predicate)
        violations = validate_rewrite(broken, broken, db.catalog)
        assert any("not in scope" in v and "'u'" in v for v in violations)

    def test_bare_column_out_of_scope(self, db):
        predicate = BinaryOp(
            op=">", left=ColumnRef(name="zzz"), right=Literal(value=0)
        )
        broken = Filter(child=Scan(table_name="t"), predicate=predicate)
        violations = validate_rewrite(broken, broken, db.catalog)
        assert any("'zzz'" in v for v in violations)


class TestDatabaseWiring:
    def test_violations_raise_plan_validation_error(self, db, monkeypatch):
        import repro.engine.database as database_module

        monkeypatch.setattr(
            database_module,
            "validate_rewrite",
            lambda before, after, catalog: ["synthetic violation"],
        )
        with pytest.raises(PlanValidationError, match="synthetic violation"):
            db.execute("SELECT a FROM t WHERE a > 2")

    def test_validation_defaults_on_under_pytest(self):
        assert Database()._validate_plans is True

    def test_validation_explicit_off(self):
        assert Database(validate_plans=False)._validate_plans is False
