"""Unit tests for the abstract-interpretation dataflow pass.

Covers the three lattices (constant, interval, nullability) and the
Kleene truth transfer, the assume-true refinement that powers
contradiction detection, expression folding fidelity (rewrites must be
runtime-exact, so several cases assert *non*-folding), and the
statistics-seeded environment.
"""

import pytest

from repro.analysis import dataflow
from repro.analysis.dataflow import (
    TOP,
    Fact,
    Interval,
    Nullability,
    NoteKind,
    Truth,
    analyze_expression,
    fold_conjuncts,
    fold_expression,
    output_facts,
    refine,
)
from repro.engine import Database
from repro.sql import parse_statement
from repro.sql.ast_nodes import ColumnRef, Literal
from repro.storage.schema import DataType


def expr(sql_fragment: str):
    return parse_statement(f"SELECT {sql_fragment} FROM t").items[0].expression


def where(sql_condition: str):
    return parse_statement(f"SELECT 1 FROM t WHERE {sql_condition}").where


def fact_of(sql_fragment: str) -> Fact:
    return analyze_expression(expr(sql_fragment))


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (x INT64, y FLOAT64, s STRING)")
    database.execute(
        "INSERT INTO t VALUES (1, 1.5, 'a'), (5, 2.5, 'b'), (9, NULL, 'c')"
    )
    return database


class TestInterval:
    def test_intersect_and_disjoint(self):
        a = Interval(0, 10)
        b = Interval(5, 20)
        got = a.intersect(b)
        assert (got.lo, got.hi) == (5, 10)
        assert not a.disjoint(b)
        assert a.disjoint(Interval(11, 12))

    def test_open_bounds(self):
        a = Interval(0, 5, hi_open=True)  # [0, 5)
        b = Interval(5, 9)  # [5, 9]
        assert a.disjoint(b)
        assert a.all_lt(b)

    def test_arithmetic(self):
        a = Interval(1, 2)
        b = Interval(10, 20)
        assert (a.add(b).lo, a.add(b).hi) == (11, 22)
        assert (b.sub(a).lo, b.sub(a).hi) == (8, 19)
        m = Interval(-2, 3).mul(Interval(4, 5))
        assert (m.lo, m.hi) == (-10, 15)

    def test_unbounded_propagates(self):
        assert Interval(None, 5).add(Interval(1, 1)).lo is None
        assert dataflow.UNBOUNDED.unbounded


class TestTruthKleene:
    T = Truth(True, False, False)
    F = Truth(False, True, False)
    U = Truth(False, False, True)

    def test_and_truth_table(self):
        assert Truth.and_(self.T, self.U) == self.U
        assert Truth.and_(self.F, self.U) == self.F
        assert Truth.and_(self.U, self.U) == self.U
        assert Truth.and_(self.T, self.T) == self.T

    def test_or_truth_table(self):
        assert Truth.or_(self.T, self.U) == self.T
        assert Truth.or_(self.F, self.U) == self.U
        assert Truth.or_(self.U, self.U) == self.U

    def test_not_swaps_but_keeps_null(self):
        assert Truth.not_(self.U) == self.U
        assert Truth.not_(self.T) == self.F


class TestConstantLattice:
    def test_arithmetic_folds(self):
        fact = fact_of("1 + 2 * 3")
        assert fact.const == 7
        assert fact.nullability is Nullability.NEVER

    def test_rewrite_to_literal(self):
        folded, fact = fold_expression(expr("1 + 2 * 3"), dataflow.Env(), [])
        assert isinstance(folded, Literal)
        assert folded.value == 7
        assert fact.const == 7

    def test_string_concat_folds(self):
        folded, fact = fold_expression(
            expr("'ab' || 'cd'"), dataflow.Env(), []
        )
        assert fact.const == "abcd"
        assert isinstance(folded, Literal)
        assert folded.value == "abcd"

    def test_concat_with_null_is_null(self):
        fact = fact_of("'ab' || NULL")
        assert fact.nullability is Nullability.ALWAYS

    def test_null_propagates(self):
        fact = fact_of("NULL + 1")
        assert fact.const is None
        assert fact.nullability is Nullability.ALWAYS

    def test_modulo_by_zero_never_folds(self):
        # The engine raises on % 0; folding it away would hide the error.
        notes = []
        folded, fact = fold_expression(expr("7 % 0"), dataflow.Env(), notes)
        assert not isinstance(folded, Literal)
        assert any(n.kind is NoteKind.DIVISION_BY_ZERO for n in notes)

    def test_const_division_by_zero_is_null(self):
        # Scalar path: the interpreter yields NaN == NULL for 7 / 0.
        fact = fact_of("7 / 0")
        assert fact.nullability is Nullability.ALWAYS

    def test_column_division_by_zero_stays_opaque(self):
        # Vector path: x / 0 is +-inf for nonzero rows, NULL only for
        # zero or NULL rows — claiming always-NULL would let folding
        # prune WHERE x / 0 > 1, which the engine satisfies at +inf.
        notes = []
        fact = analyze_expression(expr("x / 0"), None, notes)
        assert fact.nullability is Nullability.MAYBE
        assert fact.const is TOP
        assert any(n.kind is NoteKind.DIVISION_BY_ZERO for n in notes)

    def test_int64_overflow_not_folded_to_int(self):
        notes = []
        fact = analyze_expression(
            expr("9223372036854775807 + 1"), None, notes
        )
        assert fact.const is TOP  # no int literal can spell the result
        assert any(n.kind is NoteKind.INT64_OVERFLOW for n in notes)

    def test_aggregates_are_opaque(self):
        fact = fact_of("sum(x) + 0")
        assert fact.const is TOP


class TestComparisons:
    def test_interval_proves_comparison(self):
        env = dataflow.Env()
        refined = refine(env, where("x > 5"))
        fact = analyze_expression(where("x > 3"), refined)
        assert fact.truth.can_true and not fact.truth.can_false

    def test_null_comparison_never_true(self):
        fact = analyze_expression(where("x = NULL"))
        assert not fact.truth.can_true

    def test_int_never_equals_fraction(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT64)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        statement = parse_statement("SELECT 1 FROM t WHERE x = 1.5")
        env, _ = dataflow.statement_env(statement, db.catalog, db.statistics)
        fact = analyze_expression(statement.where, env)
        assert not fact.truth.can_true


class TestFoldConjuncts:
    def test_relational_contradiction(self):
        fold = fold_conjuncts(where("x > 5 AND x < 3"))
        assert [o.status for o in fold.outcomes] == ["keep", "never_true"]
        assert fold.contradiction is not None

    def test_tautology_dropped(self):
        fold = fold_conjuncts(where("1 = 1"))
        assert [o.status for o in fold.outcomes] == ["always_true"]

    def test_refinement_justified_redundancy(self):
        fold = fold_conjuncts(where("x >= 1 AND x >= 0"))
        assert [o.status for o in fold.outcomes] == ["keep", "always_true"]

    def test_surviving_keeps_unknowns(self):
        fold = fold_conjuncts(where("x > 5 AND y < 2.0"))
        assert len(fold.surviving()) == 2

    def test_no_false_contradiction_on_overlap(self):
        fold = fold_conjuncts(where("x > 3 AND x < 5"))
        assert fold.contradiction is None


class TestRefine:
    def test_comparison_implies_non_null(self):
        env = dataflow.Env()
        refined = refine(env, where("x > 5"))
        fact = refined.lookup(ColumnRef("x"))
        assert fact.nullability is Nullability.NEVER

    def test_equality_propagates_constant(self):
        refined = refine(dataflow.Env(), where("x = 7"))
        fact = refined.lookup(ColumnRef("x"))
        assert fact.const == 7

    def test_infeasible_returns_none(self):
        env = dataflow.Env()
        refined = refine(env, where("x > 5"))
        assert refine(refined, where("x < 3")) is None


class TestStatisticsSeeding:
    def test_bounds_and_nullability_from_stats(self, db):
        statement = parse_statement("SELECT x, y FROM t")
        env, _ = dataflow.statement_env(statement, db.catalog, db.statistics)
        x = env.lookup(ColumnRef("x"))
        assert (x.interval.lo, x.interval.hi) == (1, 9)
        assert x.nullability is Nullability.NEVER
        y = env.lookup(ColumnRef("y"))
        assert y.nullability is Nullability.MAYBE

    def test_output_facts_apply_where_refinement(self, db):
        statement = parse_statement("SELECT x FROM t WHERE x > 4")
        facts = output_facts(statement, db.catalog, db.statistics)
        assert len(facts) == 1
        name, fact = facts[0]
        assert name == "x"
        assert fact.interval.lo == 4 and fact.interval.lo_open
        assert fact.nullability is Nullability.NEVER

    def test_star_expansion(self, db):
        statement = parse_statement("SELECT * FROM t")
        facts = output_facts(statement, db.catalog, db.statistics)
        assert [name for name, _ in facts] == ["x", "y", "s"]

    def test_to_dict_payload(self, db):
        statement = parse_statement("SELECT x, 1 + 1 AS c FROM t")
        facts = dict(output_facts(statement, db.catalog, db.statistics))
        payload = facts["c"].to_dict()
        assert payload["const"] == "2"
        assert payload["nullable"] == "no"
        assert facts["x"].to_dict()["range"] == [1, 9]


class TestFactContainment:
    def test_narrower_interval_is_contained(self):
        assumed = Fact(
            interval=Interval(0, 100), nullability=Nullability.NEVER
        )
        fresh = Fact(interval=Interval(5, 50), nullability=Nullability.NEVER)
        assert assumed.contains(fresh)

    def test_wider_interval_escapes(self):
        assumed = Fact(
            interval=Interval(0, 100), nullability=Nullability.NEVER
        )
        fresh = Fact(interval=Interval(5, 200), nullability=Nullability.NEVER)
        assert not assumed.contains(fresh)

    def test_first_null_escapes_never(self):
        assumed = Fact(
            interval=Interval(0, 100), nullability=Nullability.NEVER
        )
        fresh = Fact(interval=Interval(0, 100), nullability=Nullability.MAYBE)
        assert not assumed.contains(fresh)
