"""Query linter: each rule's trigger and non-trigger cases, plus the
report/JSON surface."""

import numpy as np
import pytest

from repro.analysis import LINT_RULES, analyze_query, lint_statement
from repro.engine import BatchUdf, Database, UdfRegistry
from repro.sql import parse_statement
from repro.storage.schema import DataType


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t", {"a": [1, 2, 3], "b": [1.5, 2.5, 3.5], "g": ["x", "y", "z"]}
    )
    database.create_table_from_dict("u", {"a": [1], "c": ["k"]})
    return database


def codes(report):
    return [finding.code for finding in report.warnings]


def lint(db, sql):
    return analyze_query(
        sql, catalog=db.catalog, functions=db.functions, udfs=db.udfs
    )


class TestL001LossyEquality:
    def test_trigger(self, db):
        report = lint(db, "SELECT * FROM t WHERE a = 1.5")
        assert codes(report) == ["L001"]
        assert "never match" in report.warnings[0].message

    def test_whole_number_float_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a = 2.0")) == []

    def test_float_column_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE b = 1.5")) == []

    def test_inequality_not_flagged(self, db):
        # range comparisons against fractional literals are meaningful
        assert codes(lint(db, "SELECT * FROM t WHERE a > 1.5")) == []

    def test_quiet_without_catalog(self):
        # no catalog -> column type unknown -> rule stays silent
        assert codes(analyze_query("SELECT * FROM t WHERE a = 1.5")) == []


class TestL002NudfBeforeLimit:
    def test_trigger(self):
        report = analyze_query("SELECT nudf_cls(img) FROM frames LIMIT 5")
        assert codes(report) == ["L002"]
        assert "LIMIT 5" in report.warnings[0].message

    def test_no_limit_ok(self):
        assert codes(analyze_query("SELECT nudf_cls(img) FROM frames")) == []

    def test_nudf_in_where_ok(self):
        # predicate nUDFs gate the limit; only SELECT-list ones are flagged
        report = analyze_query(
            "SELECT id FROM frames WHERE nudf_cls(img) = 'cat' LIMIT 5"
        )
        assert codes(report) == []

    def test_registered_neural_udf_detected(self, db):
        db.register_udf(
            BatchUdf(
                name="classify",
                fn=lambda values: values,
                return_dtype=DataType.FLOAT64,
                is_neural=True,
            )
        )
        report = lint(db, "SELECT classify(b) FROM t LIMIT 2")
        assert codes(report) == ["L002"]


class TestL003CrossJoin:
    def test_trigger(self, db):
        report = lint(db, "SELECT t.a FROM t, u")
        assert codes(report) == ["L003"]
        assert "cartesian" in report.warnings[0].message

    def test_connecting_predicate_ok(self, db):
        assert codes(lint(db, "SELECT t.a FROM t, u WHERE t.a = u.a")) == []

    def test_join_condition_ok(self, db):
        assert codes(lint(db, "SELECT t.a FROM t JOIN u ON t.a = u.a")) == []

    def test_single_relation_ok(self, db):
        assert codes(lint(db, "SELECT a FROM t")) == []


class TestL004NonSargable:
    def test_trigger(self, db):
        report = lint(db, "SELECT * FROM t WHERE lower(g) = 'x'")
        assert codes(report) == ["L004"]
        assert "lower" in report.warnings[0].message

    def test_bare_column_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE g = 'x'")) == []

    def test_function_in_select_list_ok(self, db):
        assert codes(lint(db, "SELECT lower(g) FROM t")) == []

    def test_literal_only_call_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a > abs(-1)")) == []


class TestL005NudfOrdering:
    @pytest.fixture()
    def udfs(self):
        registry = UdfRegistry()
        for name, selectivity in (("nudf_wide", 0.9), ("nudf_narrow", 0.1)):
            registry.register(
                BatchUdf(
                    name=name,
                    fn=lambda values: np.asarray(values, dtype=object),
                    return_dtype=DataType.STRING,
                    is_neural=True,
                    selectivity_of=(
                        lambda label, fraction=selectivity: fraction
                    ),
                )
            )
        return registry

    def test_trigger(self, udfs):
        statement = parse_statement(
            "SELECT id FROM frames "
            "WHERE nudf_wide(img) = 'a' AND nudf_narrow(img) = 'b'"
        )
        findings = lint_statement(statement, udfs=udfs)
        assert [f.code for f in findings] == ["L005"]
        assert "selective" in findings[0].message

    def test_selective_first_ok(self, udfs):
        statement = parse_statement(
            "SELECT id FROM frames "
            "WHERE nudf_narrow(img) = 'b' AND nudf_wide(img) = 'a'"
        )
        assert lint_statement(statement, udfs=udfs) == []

    def test_single_nudf_ok(self, udfs):
        statement = parse_statement(
            "SELECT id FROM frames WHERE nudf_wide(img) = 'a'"
        )
        assert lint_statement(statement, udfs=udfs) == []

    def test_negation_inverts_selectivity(self, udfs):
        # narrow != 'b' passes 0.9 of rows — writing it before the
        # positive narrow match (0.1) is the slow order
        statement = parse_statement(
            "SELECT id FROM frames "
            "WHERE nudf_narrow(img) != 'b' AND nudf_narrow(img) = 'c'"
        )
        assert [f.code for f in lint_statement(statement, udfs=udfs)] == [
            "L005"
        ]


class TestReportSurface:
    def test_rule_catalog_is_complete(self):
        assert sorted(LINT_RULES) == ["L001", "L002", "L003", "L004", "L005", "L006"]

    def test_error_and_warning_coexist(self, db):
        report = lint(
            db, "SELECT missing FROM t WHERE lower(g) = 'x'"
        )
        assert not report.ok
        assert [f.code for f in report.errors] == ["S001"]
        assert codes(report) == ["L004"]
        assert report.schema is None

    def test_findings_sorted_by_position(self, db):
        report = lint(
            db,
            "SELECT t.a FROM t, u "
            "WHERE lower(t.g) = 'x' AND t.a = 1.5 AND t.a = u.a",
        )
        found = codes(report)
        assert set(found) == {"L001", "L004"}
        assert found == sorted(
            found,
            key=lambda code: next(
                f.span.start for f in report.warnings if f.code == code
            ),
        )

    def test_to_dict_carries_location(self, db):
        sql = "SELECT * FROM t WHERE lower(g) = 'x'"
        report = lint(db, sql)
        payload = report.warnings[0].to_dict(sql)
        assert payload["code"] == "L004"
        assert payload["severity"] == "warning"
        assert payload["snippet"] == "lower(g) = 'x'"
        assert (payload["line"], payload["column"]) == (1, 23)
        assert sql[payload["span"]["start"] : payload["span"]["end"]] == (
            "lower(g) = 'x'"
        )

    def test_render_includes_location(self, db):
        sql = "SELECT * FROM t WHERE lower(g) = 'x'"
        report = lint(db, sql)
        assert report.warnings[0].render(sql).startswith("1:23: warning L004")

    def test_non_select_statements_have_no_findings(self):
        report = analyze_query("DROP TABLE t")
        assert report.ok and report.findings == []

    def test_examples_lint_clean(self):
        """CI runs `repro lint examples/*.py`; keep it green from the suite
        too so a regression is caught before the workflow."""
        import pathlib

        from repro.cli import _extract_sql_from_python
        from repro.errors import SqlError

        examples = sorted(
            pathlib.Path(__file__).resolve().parents[2].glob("examples/*.py")
        )
        assert examples, "examples/ directory went missing"
        checked = 0
        for path in examples:
            for sql in _extract_sql_from_python(path):
                try:
                    report = analyze_query(sql)
                except SqlError:
                    continue  # SQL-looking fragment, same skip as the CLI
                assert report.ok, (path, sql, report.errors)
                assert not report.warnings, (path, sql, report.warnings)
                checked += 1
        assert checked > 0


class TestL006NullComparison:
    def test_equals_null_trigger(self, db):
        report = lint(db, "SELECT * FROM t WHERE a = NULL")
        assert codes(report) == ["L006"]
        assert "a IS NULL" in report.warnings[0].message

    def test_not_equals_null_suggests_is_not_null(self, db):
        report = lint(db, "SELECT * FROM t WHERE a != NULL")
        assert codes(report) == ["L006"]
        assert "a IS NOT NULL" in report.warnings[0].message

    def test_angle_brackets_operator(self, db):
        report = lint(db, "SELECT * FROM t WHERE g <> NULL")
        assert codes(report) == ["L006"]
        assert "g IS NOT NULL" in report.warnings[0].message

    def test_null_on_left_side(self, db):
        report = lint(db, "SELECT * FROM t WHERE NULL = a")
        assert codes(report) == ["L006"]
        assert "a IS NULL" in report.warnings[0].message

    def test_select_item_flagged(self, db):
        assert codes(lint(db, "SELECT a = NULL FROM t")) == ["L006"]

    def test_is_null_not_flagged(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a IS NULL")) == []
        assert codes(lint(db, "SELECT * FROM t WHERE a IS NOT NULL")) == []

    def test_coalesce_with_null_not_flagged(self, db):
        # NULL as a plain argument (not compared) is legitimate
        assert codes(lint(db, "SELECT coalesce(g, NULL, 'd') FROM t")) == []

    def test_span_points_at_comparison(self, db):
        sql = "SELECT a FROM t WHERE a = NULL"
        report = lint(db, sql)
        finding = report.warnings[0]
        assert sql[finding.span.start : finding.span.end] == "a = NULL"

    def test_works_without_catalog(self):
        report = analyze_query("SELECT * FROM anywhere WHERE x = NULL")
        assert codes(report) == ["L006"]
