"""Query linter: each rule's trigger and non-trigger cases, plus the
report/JSON surface."""

import numpy as np
import pytest

from repro.analysis import LINT_RULES, analyze_query, lint_statement
from repro.engine import BatchUdf, Database, UdfRegistry
from repro.sql import parse_statement
from repro.storage.schema import DataType


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t", {"a": [1, 2, 3], "b": [1.5, 2.5, 3.5], "g": ["x", "y", "z"]}
    )
    database.create_table_from_dict("u", {"a": [1], "c": ["k"]})
    return database


def codes(report):
    return [finding.code for finding in report.warnings]


def lint(db, sql):
    return analyze_query(
        sql, catalog=db.catalog, functions=db.functions, udfs=db.udfs
    )


class TestL001LossyEquality:
    def test_trigger(self, db):
        report = lint(db, "SELECT * FROM t WHERE a = 1.5")
        assert codes(report) == ["L001"]
        assert "never match" in report.warnings[0].message

    def test_whole_number_float_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a = 2.0")) == []

    def test_float_column_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE b = 1.5")) == []

    def test_inequality_not_flagged(self, db):
        # range comparisons against fractional literals are meaningful
        assert codes(lint(db, "SELECT * FROM t WHERE a > 1.5")) == []

    def test_quiet_without_catalog(self):
        # no catalog -> column type unknown -> rule stays silent
        assert codes(analyze_query("SELECT * FROM t WHERE a = 1.5")) == []


class TestL002NudfBeforeLimit:
    def test_trigger(self):
        report = analyze_query("SELECT nudf_cls(img) FROM frames LIMIT 5")
        assert codes(report) == ["L002"]
        assert "LIMIT 5" in report.warnings[0].message

    def test_no_limit_ok(self):
        assert codes(analyze_query("SELECT nudf_cls(img) FROM frames")) == []

    def test_nudf_in_where_ok(self):
        # predicate nUDFs gate the limit; only SELECT-list ones are flagged
        report = analyze_query(
            "SELECT id FROM frames WHERE nudf_cls(img) = 'cat' LIMIT 5"
        )
        assert codes(report) == []

    def test_registered_neural_udf_detected(self, db):
        db.register_udf(
            BatchUdf(
                name="classify",
                fn=lambda values: values,
                return_dtype=DataType.FLOAT64,
                is_neural=True,
            )
        )
        report = lint(db, "SELECT classify(b) FROM t LIMIT 2")
        assert codes(report) == ["L002"]


class TestL003CrossJoin:
    def test_trigger(self, db):
        report = lint(db, "SELECT t.a FROM t, u")
        assert codes(report) == ["L003"]
        assert "cartesian" in report.warnings[0].message

    def test_connecting_predicate_ok(self, db):
        assert codes(lint(db, "SELECT t.a FROM t, u WHERE t.a = u.a")) == []

    def test_join_condition_ok(self, db):
        assert codes(lint(db, "SELECT t.a FROM t JOIN u ON t.a = u.a")) == []

    def test_single_relation_ok(self, db):
        assert codes(lint(db, "SELECT a FROM t")) == []


class TestL004NonSargable:
    def test_trigger(self, db):
        report = lint(db, "SELECT * FROM t WHERE lower(g) = 'x'")
        assert codes(report) == ["L004"]
        assert "lower" in report.warnings[0].message

    def test_bare_column_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE g = 'x'")) == []

    def test_function_in_select_list_ok(self, db):
        assert codes(lint(db, "SELECT lower(g) FROM t")) == []

    def test_literal_only_call_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a > abs(-1)")) == []


class TestL005NudfOrdering:
    @pytest.fixture()
    def udfs(self):
        registry = UdfRegistry()
        for name, selectivity in (("nudf_wide", 0.9), ("nudf_narrow", 0.1)):
            registry.register(
                BatchUdf(
                    name=name,
                    fn=lambda values: np.asarray(values, dtype=object),
                    return_dtype=DataType.STRING,
                    is_neural=True,
                    selectivity_of=(
                        lambda label, fraction=selectivity: fraction
                    ),
                )
            )
        return registry

    def test_trigger(self, udfs):
        statement = parse_statement(
            "SELECT id FROM frames "
            "WHERE nudf_wide(img) = 'a' AND nudf_narrow(img) = 'b'"
        )
        findings = lint_statement(statement, udfs=udfs)
        assert [f.code for f in findings] == ["L005"]
        assert "selective" in findings[0].message

    def test_selective_first_ok(self, udfs):
        statement = parse_statement(
            "SELECT id FROM frames "
            "WHERE nudf_narrow(img) = 'b' AND nudf_wide(img) = 'a'"
        )
        assert lint_statement(statement, udfs=udfs) == []

    def test_single_nudf_ok(self, udfs):
        statement = parse_statement(
            "SELECT id FROM frames WHERE nudf_wide(img) = 'a'"
        )
        assert lint_statement(statement, udfs=udfs) == []

    def test_negation_inverts_selectivity(self, udfs):
        # narrow != 'b' passes 0.9 of rows — writing it before the
        # positive narrow match (0.1) is the slow order
        statement = parse_statement(
            "SELECT id FROM frames "
            "WHERE nudf_narrow(img) != 'b' AND nudf_narrow(img) = 'c'"
        )
        assert [f.code for f in lint_statement(statement, udfs=udfs)] == [
            "L005"
        ]


class TestReportSurface:
    def test_rule_catalog_is_complete(self):
        assert sorted(LINT_RULES) == [
            "L001", "L002", "L003", "L004", "L005",
            "L006", "L007", "L008", "L009", "L010",
        ]

    def test_error_and_warning_coexist(self, db):
        report = lint(
            db, "SELECT missing FROM t WHERE lower(g) = 'x'"
        )
        assert not report.ok
        assert [f.code for f in report.errors] == ["S001"]
        assert codes(report) == ["L004"]
        assert report.schema is None

    def test_findings_sorted_by_position(self, db):
        report = lint(
            db,
            "SELECT t.a FROM t, u "
            "WHERE lower(t.g) = 'x' AND t.a = 1.5 AND t.a = u.a",
        )
        found = codes(report)
        assert set(found) == {"L001", "L004"}
        assert found == sorted(
            found,
            key=lambda code: next(
                f.span.start for f in report.warnings if f.code == code
            ),
        )

    def test_to_dict_carries_location(self, db):
        sql = "SELECT * FROM t WHERE lower(g) = 'x'"
        report = lint(db, sql)
        payload = report.warnings[0].to_dict(sql)
        assert payload["code"] == "L004"
        assert payload["severity"] == "warning"
        assert payload["snippet"] == "lower(g) = 'x'"
        assert (payload["line"], payload["column"]) == (1, 23)
        assert sql[payload["span"]["start"] : payload["span"]["end"]] == (
            "lower(g) = 'x'"
        )

    def test_render_includes_location(self, db):
        sql = "SELECT * FROM t WHERE lower(g) = 'x'"
        report = lint(db, sql)
        assert report.warnings[0].render(sql).startswith("1:23: warning L004")

    def test_non_select_statements_have_no_findings(self):
        report = analyze_query("DROP TABLE t")
        assert report.ok and report.findings == []

    def test_examples_lint_clean(self):
        """CI runs `repro lint examples/*.py`; keep it green from the suite
        too so a regression is caught before the workflow."""
        import pathlib

        from repro.cli import _extract_sql_from_python
        from repro.errors import SqlError

        examples = sorted(
            pathlib.Path(__file__).resolve().parents[2].glob("examples/*.py")
        )
        assert examples, "examples/ directory went missing"
        checked = 0
        for path in examples:
            for sql in _extract_sql_from_python(path):
                try:
                    report = analyze_query(sql)
                except SqlError:
                    continue  # SQL-looking fragment, same skip as the CLI
                assert report.ok, (path, sql, report.errors)
                assert not report.warnings, (path, sql, report.warnings)
                checked += 1
        assert checked > 0


class TestL006NullComparison:
    def test_equals_null_trigger(self, db):
        report = lint(db, "SELECT * FROM t WHERE a = NULL")
        assert codes(report) == ["L006"]
        assert "a IS NULL" in report.warnings[0].message

    def test_not_equals_null_suggests_is_not_null(self, db):
        report = lint(db, "SELECT * FROM t WHERE a != NULL")
        assert codes(report) == ["L006"]
        assert "a IS NOT NULL" in report.warnings[0].message

    def test_angle_brackets_operator(self, db):
        report = lint(db, "SELECT * FROM t WHERE g <> NULL")
        assert codes(report) == ["L006"]
        assert "g IS NOT NULL" in report.warnings[0].message

    def test_null_on_left_side(self, db):
        report = lint(db, "SELECT * FROM t WHERE NULL = a")
        assert codes(report) == ["L006"]
        assert "a IS NULL" in report.warnings[0].message

    def test_select_item_flagged(self, db):
        assert codes(lint(db, "SELECT a = NULL FROM t")) == ["L006"]

    def test_is_null_not_flagged(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a IS NULL")) == []
        assert codes(lint(db, "SELECT * FROM t WHERE a IS NOT NULL")) == []

    def test_coalesce_with_null_not_flagged(self, db):
        # NULL as a plain argument (not compared) is legitimate
        assert codes(lint(db, "SELECT coalesce(g, NULL, 'd') FROM t")) == []

    def test_span_points_at_comparison(self, db):
        sql = "SELECT a FROM t WHERE a = NULL"
        report = lint(db, sql)
        finding = report.warnings[0]
        assert sql[finding.span.start : finding.span.end] == "a = NULL"

    def test_works_without_catalog(self):
        report = analyze_query("SELECT * FROM anywhere WHERE x = NULL")
        assert codes(report) == ["L006"]


class TestL007ContradictoryPredicate:
    def test_relational_contradiction(self, db):
        # Unknown columns carry no statistics: this is the pure
        # refinement-driven case (v > 5 makes v < 3 infeasible).
        report = lint(db, "SELECT * FROM x WHERE v > 5 AND v < 3")
        finding = report.warnings[0]
        assert finding.code == "L007"
        assert "never be TRUE" in finding.message

    def test_statistics_driven_contradiction(self, db):
        # a holds 1..3, so a > 10 is contradicted by the stats alone.
        report = lint(db, "SELECT * FROM t WHERE a > 10")
        assert codes(report) == ["L007"]

    def test_span_points_at_conjunct(self, db):
        sql = "SELECT * FROM x WHERE v > 5 AND v < 3"
        report = lint(db, sql)
        finding = report.warnings[0]
        assert sql[finding.span.start : finding.span.end] == "v < 3"

    def test_only_first_contradiction_reported(self, db):
        # Conjuncts after an infeasible one are judged under an
        # impossible assumption; reporting them would be noise.
        sql = "SELECT * FROM x WHERE v > 5 AND v < 3 AND v = 4"
        report = lint(db, sql)
        assert [f.code for f in report.warnings] == ["L007"]

    def test_lossy_equality_wins_over_l007(self, db):
        # a = 1.5 is both lossy (L001) and contradictory; the more
        # specific diagnosis is the one reported.
        report = lint(db, "SELECT * FROM t WHERE a = 1.5")
        assert codes(report) == ["L001"]

    def test_is_null_idiom_never_flagged(self, db):
        # b has no NULLs today, but IS NULL is the correct idiom and
        # the emptiness is data-dependent: stay quiet.
        assert codes(lint(db, "SELECT * FROM t WHERE b IS NULL")) == []

    def test_satisfiable_range_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a > 1 AND a < 3")) == []


class TestL008TautologicalPredicate:
    def test_constant_tautology(self, db):
        report = lint(db, "SELECT * FROM t WHERE 1 = 1")
        assert codes(report) == ["L008"]
        assert "always TRUE" in report.warnings[0].message

    def test_statistics_driven_tautology(self, db):
        # a holds 1..3 with no NULLs, so a >= 0 always passes.
        report = lint(db, "SELECT * FROM t WHERE a >= 0")
        assert codes(report) == ["L008"]

    def test_span_points_at_conjunct(self, db):
        sql = "SELECT * FROM t WHERE a >= 0 AND b < 10.0"
        report = lint(db, sql)
        finding = report.warnings[0]
        assert finding.code == "L008"
        assert sql[finding.span.start : finding.span.end] == "a >= 0"

    def test_is_not_null_idiom_never_flagged(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE b IS NOT NULL")) == []

    def test_informative_predicate_ok(self, db):
        assert codes(lint(db, "SELECT * FROM t WHERE a >= 2")) == []


class TestL009DivisionByZero:
    def test_float_division(self, db):
        report = lint(db, "SELECT b / 0 FROM t")
        finding = report.warnings[0]
        assert finding.code == "L009"
        assert "always zero" in finding.message

    def test_modulo(self, db):
        report = lint(db, "SELECT b % 0 FROM t")
        assert codes(report) == ["L009"]

    def test_span_points_at_expression(self, db):
        sql = "SELECT a, b / 0 FROM t"
        report = lint(db, sql)
        finding = report.warnings[0]
        assert sql[finding.span.start : finding.span.end] == "b / 0"

    def test_reported_once_per_expression(self, db):
        report = lint(db, "SELECT b / 0 FROM t")
        assert codes(report) == ["L009"]

    def test_nonzero_divisor_ok(self, db):
        assert codes(lint(db, "SELECT b / 2 FROM t")) == []


class TestL010IntegerOverflow:
    def test_addition_near_max(self, db):
        report = lint(db, "SELECT a + 9223372036854775807 FROM t")
        finding = report.warnings[0]
        assert finding.code == "L010"
        assert "int64" in finding.message.lower()

    def test_span_covers_arithmetic(self, db):
        sql = "SELECT a + 9223372036854775807 FROM t"
        report = lint(db, sql)
        finding = report.warnings[0]
        assert (
            sql[finding.span.start : finding.span.end]
            == "a + 9223372036854775807"
        )

    def test_small_arithmetic_ok(self, db):
        assert codes(lint(db, "SELECT a + 1000 FROM t")) == []

    def test_float_arithmetic_ok(self, db):
        assert codes(lint(db, "SELECT b * 1e18 FROM t")) == []


class TestL006BeyondWhere:
    """Regression: the linter walks HAVING and ORDER BY too."""

    def test_having_null_comparison(self, db):
        report = lint(db, "SELECT g FROM t GROUP BY g HAVING g = NULL")
        assert "L006" in codes(report)

    def test_order_by_null_comparison(self, db):
        report = lint(db, "SELECT a FROM t ORDER BY a = NULL")
        assert "L006" in codes(report)
        sql = "SELECT a FROM t ORDER BY a = NULL"
        finding = next(f for f in report.warnings if f.code == "L006")
        assert sql[finding.span.start : finding.span.end] == "a = NULL"
