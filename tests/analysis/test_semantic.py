"""Adversarial semantic-error suite.

Every S0xx code the analyzer can emit is triggered here through the
public ``Database.execute()`` path, asserting both the stable error code
and the source span (the span's snippet must be the offending text, not
just "somewhere in the query").
"""

import pytest

from repro.analysis import SemanticAnalyzer, analyze_query
from repro.engine import BatchUdf, Database
from repro.errors import SemanticError, UdfError, UnknownFunctionError
from repro.sql import parse_statement
from repro.storage.schema import DataType


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t",
        {"a": [1, 2, 3], "b": [1.0, 2.0, 3.0], "g": ["x", "y", "z"]},
    )
    database.create_table_from_dict("u", {"a": [1], "c": ["k"]})
    database.register_udf(
        BatchUdf(
            name="nudf_one",
            fn=lambda values: values * 2.0,
            return_dtype=DataType.FLOAT64,
        )
    )
    database.register_udf(
        BatchUdf(
            name="nudf_str",
            fn=lambda values: values,
            return_dtype=DataType.FLOAT64,
            arg_dtypes=(DataType.STRING,),
        )
    )
    return database


def reject(db, sql):
    with pytest.raises(SemanticError) as excinfo:
        db.execute(sql)
    return excinfo.value


def snippet(sql, error):
    assert error.span is not None, "semantic error lost its source span"
    return sql[error.span.start : error.span.end]


class TestErrorCodes:
    def test_s001_unknown_column(self, db):
        sql = "SELECT missing FROM t"
        error = reject(db, sql)
        assert error.code == "S001"
        assert snippet(sql, error) == "missing"

    def test_s001_unknown_qualified_column(self, db):
        sql = "SELECT t.missing FROM t"
        error = reject(db, sql)
        assert error.code == "S001"
        assert snippet(sql, error) == "t.missing"
        # the message hints at the columns the relation does have
        assert "'a'" in str(error)

    def test_s002_ambiguous_column(self, db):
        sql = "SELECT a FROM t JOIN u ON t.a = u.a"
        error = reject(db, sql)
        assert error.code == "S002"
        assert snippet(sql, error) == "a"
        assert "t" in str(error) and "u" in str(error)

    def test_s003_int_vs_string_comparison(self, db):
        sql = "SELECT * FROM t WHERE a = 'x'"
        error = reject(db, sql)
        assert error.code == "S003"
        assert snippet(sql, error) == "a = 'x'"
        assert "CAST" in str(error)

    def test_s003_string_vs_float_comparison(self, db):
        error = reject(db, "SELECT * FROM t WHERE g < 3.5")
        assert error.code == "S003"

    def test_s004_arithmetic_on_string(self, db):
        sql = "SELECT g + 1 FROM t"
        error = reject(db, sql)
        assert error.code == "S004"
        assert snippet(sql, error) == "g + 1"

    def test_s004_unary_minus_on_string(self, db):
        error = reject(db, "SELECT -g FROM t")
        assert error.code == "S004"

    def test_s005_aggregate_in_where(self, db):
        sql = "SELECT a FROM t WHERE sum(a) > 1"
        error = reject(db, sql)
        assert error.code == "S005"
        assert snippet(sql, error) == "sum(a)"

    def test_s006_wrong_udf_arity(self, db):
        sql = "SELECT nudf_one(a, b) FROM t"
        error = reject(db, sql)
        assert error.code == "S006"
        assert snippet(sql, error) == "nudf_one(a, b)"
        assert "takes 1" in str(error)

    def test_s007_group_by_select_alias(self, db):
        sql = "SELECT a AS x FROM t GROUP BY x"
        error = reject(db, sql)
        assert error.code == "S007"
        assert snippet(sql, error) == "x"

    def test_s008_unknown_function(self, db):
        sql = "SELECT nosuchfn(a) FROM t"
        error = reject(db, sql)
        assert error.code == "S008"
        assert snippet(sql, error) == "nosuchfn(a)"
        # dual inheritance: both the analyzer-era and runtime-era handlers
        # catch it
        assert isinstance(error, UnknownFunctionError)
        assert isinstance(error, SemanticError)
        assert isinstance(error, UdfError)

    def test_s009_scalar_subquery_width(self, db):
        sql = "SELECT (SELECT a, b FROM t)"
        error = reject(db, sql)
        assert error.code == "S009"
        assert snippet(sql, error) == "(SELECT a, b FROM t)"

    def test_s010_unknown_table(self, db):
        sql = "SELECT * FROM missing_table"
        error = reject(db, sql)
        assert error.code == "S010"
        assert snippet(sql, error) == "missing_table"

    def test_s011_udf_argument_type(self, db):
        sql = "SELECT nudf_str(a) FROM t"
        error = reject(db, sql)
        assert error.code == "S011"
        assert snippet(sql, error) == "a"
        assert "expects String" in str(error)

    def test_s012_star_argument(self, db):
        sql = "SELECT sum(*) FROM t"
        error = reject(db, sql)
        assert error.code == "S012"
        assert snippet(sql, error) == "*"

    def test_errors_fire_before_execution(self, db):
        """The rejection happens at analysis time: EXPLAIN (which never
        executes) rejects the same statements."""
        with pytest.raises(SemanticError):
            db.execute("EXPLAIN SELECT missing FROM t")

    def test_create_table_as_select_is_analyzed(self, db):
        with pytest.raises(SemanticError):
            db.execute("CREATE TABLE t2 AS SELECT missing FROM t")

    def test_span_line_and_column(self, db):
        sql = "SELECT a,\n       missing\nFROM t"
        error = reject(db, sql)
        from repro.sql.spans import line_and_column

        line, column = line_and_column(sql, error.span.start)
        assert (line, column) == (2, 8)


class TestAcceptedQueries:
    """Queries that must keep passing the analyzer unchanged."""

    def test_date_string_comparison(self, db):
        db.create_table_from_dict(
            "d", {"day": ["2024-01-01", "2024-01-02"], "v": [1, 2]}
        )
        # strings compare with strings...
        db.execute("SELECT * FROM d WHERE day = '2024-01-01'")
        # ...and DATE (toDate's return type) stays comparable with STRING
        db.execute("SELECT * FROM d WHERE toDate(day) = '2024-01-01'")
        db.execute("SELECT * FROM d WHERE toDate(day) >= toDate('2024-01-01')")

    def test_explicit_cast_resolves_s003(self, db):
        reject(db, "SELECT * FROM t WHERE a = 'x'")
        db.execute("SELECT * FROM t WHERE CAST(a AS STRING) = 'x'")
        db.execute("SELECT * FROM t WHERE a = CAST('2' AS INT64)")

    def test_cast_output_types(self, db):
        report = analyze_query(
            "SELECT CAST(a AS STRING), CAST(g AS FLOAT64) FROM t",
            catalog=db.catalog,
            functions=db.functions,
            udfs=db.udfs,
        )
        assert report.ok
        assert [c.dtype for c in report.schema.columns] == [
            DataType.STRING,
            DataType.FLOAT64,
        ]

    def test_cast_round_trip_executes(self, db):
        rows = db.query("SELECT CAST(CAST(a AS STRING) AS INT64) FROM t")
        assert rows == [(1,), (2,), (3,)]

    def test_zero_row_table_types_are_not_trusted(self, db):
        # from_dict types empty columns as STRING; comparisons against
        # numbers must not be rejected on that default.
        db.create_table_from_dict("empty", {"x": []})
        db.execute("SELECT * FROM empty WHERE x > 0")

    def test_self_join_bare_column_not_ambiguous(self, db):
        # Both sides of the self-join expose the same physical column, so
        # a bare reference is not ambiguous (mirrors the runtime's
        # same-source rule).  Distinct columns with the same name stay
        # ambiguous (S002, above).
        statement = parse_statement(
            "SELECT a FROM t AS x JOIN t AS y ON x.a = y.a"
        )
        analyzer = SemanticAnalyzer(db.catalog, db.functions, db.udfs)
        schema = analyzer.analyze(statement)
        assert schema.names() == ["a"]

    def test_view_columns_resolve(self, db):
        db.execute("CREATE VIEW v AS SELECT a AS alpha, b FROM t")
        db.execute("SELECT alpha FROM v WHERE alpha > 1")
        error = reject(db, "SELECT a FROM v")
        assert error.code == "S001"


class TestTypeInference:
    def _schema(self, db, sql):
        report = analyze_query(
            sql, catalog=db.catalog, functions=db.functions, udfs=db.udfs
        )
        assert report.ok, report.findings
        return report.schema

    def test_column_types(self, db):
        schema = self._schema(db, "SELECT a, b, g FROM t")
        assert schema.render() == "a Int64, b Float64, g String"

    def test_arithmetic_types(self, db):
        schema = self._schema(db, "SELECT a + 1, a / 2, a * b FROM t")
        assert [c.dtype for c in schema.columns] == [
            DataType.INT64,
            DataType.FLOAT64,
            DataType.FLOAT64,
        ]

    def test_aggregate_types(self, db):
        schema = self._schema(
            db, "SELECT count(*), sum(a), avg(a), min(g) FROM t"
        )
        assert [c.dtype for c in schema.columns] == [
            DataType.INT64,
            DataType.INT64,
            DataType.FLOAT64,
            DataType.FLOAT64,
        ]

    def test_udf_return_type(self, db):
        schema = self._schema(db, "SELECT nudf_one(a) FROM t")
        assert schema.columns[0].dtype is DataType.FLOAT64

    def test_explain_shows_output_schema(self, db):
        text = str(db.explain("SELECT a, b, g FROM t"))
        assert "Output: a Int64, b Float64, g String" in text

    def test_unknown_types_render_as_question_mark(self):
        report = analyze_query("SELECT x FROM anywhere")
        assert report.ok
        assert report.schema.render() == "x ?"


class TestLenientMode:
    def test_unknown_table_is_open_without_catalog(self):
        assert analyze_query("SELECT whatever FROM nowhere").ok

    def test_structural_errors_still_raise(self):
        # a misplaced star is wrong no matter what the catalog holds
        report = analyze_query("SELECT sum(*) FROM nowhere")
        assert not report.ok
        assert report.errors[0].code == "S012"

    def test_strict_functions_split(self, db):
        # the independent strategy wants strict tables, lenient functions
        analyzer = SemanticAnalyzer(
            db.catalog, db.functions, db.udfs, strict_functions=False
        )
        analyzer.analyze(parse_statement("SELECT not_registered(a) FROM t"))
        with pytest.raises(SemanticError) as excinfo:
            analyzer.analyze(parse_statement("SELECT a FROM missing_table"))
        assert excinfo.value.code == "S010"

    def test_analysis_can_be_disabled(self):
        database = Database(semantic_analysis=False, validate_plans=False)
        database.create_table_from_dict("t", {"a": [1]})
        # falls through to the planner, which raises its own PlanError
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            database.execute("SELECT missing FROM t")


class TestNullabilityInference:
    """The analyzer's nullable verdict per output column.

    Base-table nullability is read off the stored data: columns of ``t``
    hold no NULLs, so references to them are NOT NULL; ``nt.x`` holds a
    NULL and stays nullable.
    """

    @pytest.fixture()
    def ndb(self, db):
        db.create_table_from_dict("nt", {"x": [1, None, 3], "s": ["a", "b", "c"]})
        return db

    def _schema(self, db, sql):
        report = analyze_query(
            sql, catalog=db.catalog, functions=db.functions, udfs=db.udfs
        )
        assert report.ok, report.findings
        return report.schema

    def test_null_free_column_is_not_nullable(self, ndb):
        schema = self._schema(ndb, "SELECT a, g FROM t")
        assert [c.nullable for c in schema.columns] == [False, False]

    def test_column_with_nulls_is_nullable(self, ndb):
        schema = self._schema(ndb, "SELECT x, s FROM nt")
        assert [c.nullable for c in schema.columns] == [True, False]

    def test_star_expansion_carries_nullability(self, ndb):
        schema = self._schema(ndb, "SELECT * FROM nt")
        assert [c.nullable for c in schema.columns] == [True, False]

    def test_null_literal_is_nullable(self, ndb):
        schema = self._schema(ndb, "SELECT NULL, 1, 'k' FROM t")
        assert [c.nullable for c in schema.columns] == [True, False, False]

    def test_count_never_nullable_sum_nullable(self, ndb):
        schema = self._schema(ndb, "SELECT count(*), count(x), sum(x) FROM nt")
        assert [c.nullable for c in schema.columns] == [False, False, True]

    def test_min_over_null_free_column_still_nullable(self, ndb):
        # The group can be empty (zero qualifying rows), which yields NULL
        # even when the column itself has no NULLs.
        schema = self._schema(ndb, "SELECT min(a) FROM t")
        assert schema.columns[0].nullable is True

    def test_is_null_is_definite(self, ndb):
        schema = self._schema(ndb, "SELECT x IS NULL FROM nt")
        assert schema.columns[0].nullable is False

    def test_coalesce_with_definite_fallback(self, ndb):
        schema = self._schema(ndb, "SELECT coalesce(x, 0) FROM nt")
        assert schema.columns[0].nullable is False

    def test_coalesce_all_nullable_stays_nullable(self, ndb):
        schema = self._schema(ndb, "SELECT coalesce(x, x) FROM nt")
        assert schema.columns[0].nullable is True

    def test_arithmetic_propagates_nullability(self, ndb):
        schema = self._schema(ndb, "SELECT x + 1, a + 1 FROM nt, t")
        assert [c.nullable for c in schema.columns] == [True, False]

    def test_division_always_nullable(self, ndb):
        # 1/0 produces NaN, which the engine reads back as NULL.
        schema = self._schema(ndb, "SELECT a / 1 FROM t")
        assert schema.columns[0].nullable is True

    def test_case_without_else_is_nullable(self, ndb):
        schema = self._schema(
            ndb, "SELECT CASE WHEN a > 1 THEN 1 END FROM t"
        )
        assert schema.columns[0].nullable is True

    def test_case_with_definite_else_is_not(self, ndb):
        schema = self._schema(
            ndb, "SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END FROM t"
        )
        assert schema.columns[0].nullable is False

    def test_derived_table_carries_nullability(self, ndb):
        schema = self._schema(
            ndb,
            "SELECT k, c FROM (SELECT x AS k, count(*) AS c FROM nt "
            "GROUP BY x) AS d",
        )
        assert [c.nullable for c in schema.columns] == [True, False]

    def test_render_nullable_marks_not_null(self, ndb):
        schema = self._schema(ndb, "SELECT a FROM t")
        assert schema.columns[0].render_nullable() == "a Int64 NOT NULL"
        # render() itself must stay stable for plan headers.
        assert schema.columns[0].render() == "a Int64"

    def test_empty_table_columns_stay_nullable(self, ndb):
        ndb.execute("CREATE TABLE z (q Int64)")
        schema = self._schema(ndb, "SELECT q FROM z")
        assert schema.columns[0].nullable is True


#: One query per analyzer raise path, labelled with the expected code.
#: The guarantee under test: every S001-S012 rejection carries a
#: non-empty source span, so editors and ``repro lint`` can always
#: point at the offending text.
SPAN_BATTERY = [
    ("S001", "SELECT missing FROM t"),
    ("S001", "SELECT t.missing FROM t"),
    ("S001", "SELECT z.a FROM t"),
    ("S001", "SELECT z.* FROM t"),
    ("S002", "SELECT a FROM t JOIN u ON t.a = u.a"),
    ("S003", "SELECT * FROM t WHERE a = 'x'"),
    ("S003", "SELECT * FROM t WHERE g < 3.5"),
    ("S004", "SELECT g + 1 FROM t"),
    ("S004", "SELECT -g FROM t"),
    ("S005", "SELECT a FROM t WHERE sum(a) > 1"),
    ("S005", "SELECT sum(sum(a)) FROM t"),
    ("S006", "SELECT nudf_one(a, b) FROM t"),
    ("S007", "SELECT a AS x FROM t GROUP BY x"),
    ("S008", "SELECT nosuchfn(a) FROM t"),
    ("S009", "SELECT (SELECT a, b FROM t)"),
    ("S010", "SELECT * FROM missing_table"),
    ("S011", "SELECT nudf_str(a) FROM t"),
    ("S012", "SELECT sum(*) FROM t"),
    ("S012", "SELECT a FROM t WHERE * > 1"),
    ("S012", "SELECT length(*) FROM t"),
]


class TestEveryErrorCarriesSpan:
    @pytest.mark.parametrize("code,sql", SPAN_BATTERY)
    def test_span_attached(self, db, code, sql):
        error = reject(db, sql)
        assert error.code == code
        assert error.span is not None, f"{code} lost its span: {sql!r}"
        assert error.span.end > error.span.start
        assert sql[error.span.start : error.span.end].strip()

    def test_battery_covers_all_codes(self):
        covered = {code for code, _ in SPAN_BATTERY}
        assert covered == {f"S{n:03d}" for n in range(1, 13)}
