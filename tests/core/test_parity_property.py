"""Property-based DL2SQL parity: random architectures, random geometry.

For any legal small CNN, the compiled SQL program must reproduce the
numpy forward pass exactly.  This is the strongest statement of Table II
support: not just the fixed test architectures, but the operator
compositions hypothesis explores.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dl2SqlModel, PreJoin, compile_model
from repro.engine import Database
from repro.tensor import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    Softmax,
)


@st.composite
def small_cnn(draw):
    """A random (but always shape-legal) CNN on 8x8 inputs."""
    rng_seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(rng_seed)
    in_channels = draw(st.integers(1, 2))
    size = 8
    layers = []
    channels = in_channels
    num_convs = draw(st.integers(1, 2))
    for index in range(num_convs):
        out_channels = draw(st.integers(1, 4))
        kernel = draw(st.sampled_from([1, 2, 3]))
        padding = draw(st.sampled_from([0, 1])) if kernel > 1 else 0
        stride = draw(st.sampled_from([1, 2]))
        if size + 2 * padding < kernel:
            continue
        layers.append(
            Conv2d(
                channels, out_channels, kernel, stride, padding,
                name=f"c{index}", rng=rng,
            )
        )
        channels = out_channels
        size = (size + 2 * padding - kernel) // stride + 1
        if draw(st.booleans()):
            layers.append(BatchNorm2d(channels, name=f"b{index}"))
        if draw(st.booleans()):
            layers.append(ReLU(name=f"r{index}"))
    if size >= 2 and draw(st.booleans()):
        pool = draw(st.sampled_from([MaxPool2d, AvgPool2d]))
        layers.append(pool(2, name="p"))
        size = (size - 2) // 2 + 1
    flat = channels * size * size
    layers.append(Flatten(name="fl"))
    classes = draw(st.integers(2, 4))
    layers.append(Linear(flat, classes, name="fc", rng=rng))
    if draw(st.booleans()):
        layers.append(Softmax(name="sm"))
    return Model(f"prop{rng_seed}", (in_channels, 8, 8), layers), rng_seed


@given(model_and_seed=small_cnn(), prejoin=st.sampled_from(list(PreJoin)))
@settings(max_examples=25, deadline=None)
def test_random_cnn_parity(model_and_seed, prejoin):
    model, seed = model_and_seed
    compiled = compile_model(model, prejoin=prejoin)
    db = Database()
    runner = Dl2SqlModel(compiled)
    runner.load(db)
    x = np.random.default_rng(seed + 1).normal(size=model.input_shape)
    runner.infer(db, x)
    got = runner.read_output(db)
    expected = model.forward(x)
    assert np.allclose(got, expected, atol=1e-8), (
        f"max err {np.abs(got - expected).max()} for {model}"
    )
