"""Compilation structure: tables, steps, stats, pre-join variants."""

import numpy as np
import pytest

from repro.core import PreJoin, compile_model
from repro.errors import CompileError
from repro.tensor import (
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    Softmax,
    build_student_cnn,
)


@pytest.fixture(scope="module")
def student():
    return build_student_cnn(
        input_shape=(1, 8, 8), num_classes=3, channels=(4, 4, 4), seed=1
    )


class TestStructure:
    def test_static_tables_include_kernels_and_mappings(self, student):
        compiled = compile_model(student)
        names = {t.name for t in compiled.static_tables}
        assert any(n.endswith("__kernel") for n in names)
        assert any(n.endswith("__mapping") for n in names)
        assert any(n.endswith("__poolmap") for n in names)
        assert any(n.endswith("__bnparams") for n in names)

    def test_kernel_prejoin_replaces_mappings(self, student):
        compiled = compile_model(student, prejoin=PreJoin.KERNEL)
        names = {t.name for t in compiled.static_tables}
        assert any(n.endswith("__kernelmap") for n in names)
        assert not any(n.endswith("__mapping") for n in names)

    def test_fold_removes_reshape_steps(self, student):
        plain = compile_model(student, prejoin=PreJoin.NONE)
        fold = compile_model(student, prejoin=PreJoin.FOLD)
        assert any(s.kind == "reshape" for s in plain.steps)
        assert not any(s.kind == "reshape" for s in fold.steps)
        assert len(fold.steps) < len(plain.steps)

    def test_indexes_on_paper_columns(self, student):
        compiled = compile_model(student)
        indexed_columns = {c for _, c in compiled.index_columns}
        assert {"OrderID", "KernelID", "TupleID"} <= indexed_columns

    def test_blocks_in_fig9_order(self, student):
        compiled = compile_model(student)
        blocks = compiled.blocks()
        assert blocks.index("Conv1") < blocks.index("Conv2") < blocks.index(
            "Conv3"
        )
        assert blocks[-1] == "Classification"
        assert "Pooling" in blocks and "FC" in blocks

    def test_sql_script_is_parseable(self, student):
        from repro.sql.parser import parse_statements

        compiled = compile_model(student)
        statements = parse_statements(compiled.sql_script())
        assert len(statements) == len(compiled.steps)

    def test_table_prefix_namespaces_everything(self, student):
        compiled = compile_model(student)
        for table in compiled.static_tables:
            assert table.name.startswith(compiled.table_prefix)
        for step in compiled.steps:
            if step.output_table:
                assert step.output_table.startswith(compiled.table_prefix)

    def test_distinct_models_do_not_collide(self, student):
        other = build_student_cnn(
            input_shape=(1, 8, 8), num_classes=3, channels=(4, 4, 4), seed=2
        )
        other.name = "other_model"
        a = compile_model(student)
        b = compile_model(other)
        a_names = {t.name for t in a.static_tables}
        b_names = {t.name for t in b.static_tables}
        assert not a_names & b_names


class TestTableStats:
    def test_flat_tables_have_exact_rows(self, student):
        compiled = compile_model(student)
        out_stats = compiled.table_stats[compiled.output_table]
        assert out_stats["rows"] == 3  # num_classes

    def test_feature_table_stats_match_mapping_size(self, student):
        compiled = compile_model(student)
        fm_tables = [
            s.output_table for s in compiled.steps if s.kind == "reshape"
        ]
        first = compiled.table_stats[fm_tables[0]]
        # 8x8 conv k3 s1 p1 -> 64 windows; 9 slots minus padding omissions.
        assert first["ndv"]["MatrixID"] == 64
        assert first["ndv"]["OrderID"] == 9
        assert first["rows"] < 64 * 9  # padding omissions

    def test_every_created_table_has_stats(self, student):
        compiled = compile_model(student)
        for step in compiled.steps:
            if step.output_table is not None:
                assert step.output_table in compiled.table_stats


class TestKernelTables:
    def test_kernel_table_matches_weights(self):
        layer = Conv2d(2, 3, 2, rng=np.random.default_rng(0))
        model = Model("kt", (2, 4, 4), [layer])
        compiled = compile_model(model)
        kernel = next(
            t for t in compiled.static_tables if t.name.endswith("__kernel")
        )
        assert kernel.num_rows == 3 * 2 * 2 * 2
        kernel_ids = kernel.column("KernelID").data
        order_ids = kernel.column("OrderID").data
        values = kernel.column("Value").data
        flat = layer.weight.reshape(3, -1)
        assert np.allclose(values, flat[kernel_ids, order_ids])

    def test_zero_bias_skips_bias_step(self):
        layer = Conv2d(1, 2, 2, rng=np.random.default_rng(0))
        layer.bias = np.zeros(2)
        compiled = compile_model(Model("nb", (1, 4, 4), [layer]))
        assert not any(s.kind == "bias" for s in compiled.steps)

    def test_nonzero_bias_adds_step(self):
        layer = Conv2d(1, 2, 2, rng=np.random.default_rng(0))
        layer.bias = np.array([1.0, 2.0])
        compiled = compile_model(Model("wb", (1, 4, 4), [layer]))
        assert any(s.kind == "bias" for s in compiled.steps)


class TestStorageAccounting:
    def test_parameter_bytes_excludes_mappings(self, student):
        compiled = compile_model(student)
        assert compiled.parameter_bytes() < compiled.static_bytes()

    def test_parameter_bytes_scale_with_parameters(self):
        small = build_student_cnn(
            input_shape=(1, 8, 8), channels=(2, 2, 2), seed=0
        )
        big = build_student_cnn(
            input_shape=(1, 8, 8), channels=(8, 8, 8), seed=0
        )
        assert (
            compile_model(big).parameter_bytes()
            > compile_model(small).parameter_bytes()
        )


class TestUnsupported:
    def test_unknown_layer_kind_rejected(self):
        class Mystery(Layer):
            kind = "mystery"

            def forward(self, x):
                return x

            def output_shape(self, shape):
                return shape

        model = Model("mx", (1, 4, 4), [Mystery()])
        with pytest.raises(CompileError, match="Table II"):
            compile_model(model)

    def test_norm_requires_spatial_input(self):
        from repro.tensor import BatchNorm2d

        # BatchNorm after flatten has no [C,H,W] shape.
        model = Model.__new__(Model)
        model.name = "bad"
        model.input_shape = (1, 4, 4)
        model.layers = [Flatten(), BatchNorm2d(16)]
        model.class_labels = None
        with pytest.raises(CompileError):
            compile_model(model)
