"""Dl2SqlModel lifecycle: load/unload/infer/cleanup."""

import numpy as np
import pytest

from repro.core import Dl2SqlModel, compile_model
from repro.engine import Database
from repro.errors import ExecutionError
from repro.tensor import build_student_cnn


@pytest.fixture(scope="module")
def compiled():
    model = build_student_cnn(
        input_shape=(1, 8, 8), num_classes=3, channels=(3, 3, 3),
        class_labels=["a", "b", "c"], seed=4,
    )
    return compile_model(model)


class TestLifecycle:
    def test_load_registers_tables_and_indexes(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        seconds = runner.load(db)
        assert seconds > 0
        assert runner.is_loaded(db)
        first_index = compiled.index_columns[0]
        assert db.catalog.get_index(*first_index) is not None

    def test_infer_requires_load(self, compiled):
        runner = Dl2SqlModel(compiled)
        with pytest.raises(ExecutionError, match="not loaded"):
            runner.infer(Database(), np.zeros((1, 8, 8)))

    def test_infer_shape_checked(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        with pytest.raises(ExecutionError, match="expects input"):
            runner.infer(db, np.zeros((1, 9, 9)))

    def test_unload_removes_all_model_tables(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        runner.infer(db, np.zeros((1, 8, 8)))
        dropped = runner.unload(db)
        assert dropped > 0
        leftovers = [
            n
            for n in db.catalog.table_names()
            if n.startswith(compiled.table_prefix)
        ]
        assert leftovers == []

    def test_repeated_inference_cleans_intermediates(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        runner.infer(db, np.zeros((1, 8, 8)))
        count_after_first = len(db.catalog.table_names())
        runner.infer(db, np.ones((1, 8, 8)))
        assert len(db.catalog.table_names()) == count_after_first

    def test_reload_replaces(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        runner.load(db)  # idempotent
        assert runner.is_loaded(db)


class TestResults:
    def test_result_fields(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        result = runner.infer(db, np.zeros((1, 8, 8)))
        assert result.probabilities.shape == (3,)
        assert result.probabilities.sum() == pytest.approx(1.0)
        assert result.label in ("a", "b", "c")
        assert result.exec_seconds > 0
        assert result.load_seconds > 0
        assert result.block_seconds
        assert len(result.step_seconds) == len(compiled.steps)

    def test_block_seconds_cover_all_blocks(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        result = runner.infer(db, np.zeros((1, 8, 8)))
        assert set(result.block_seconds) == set(compiled.blocks())

    def test_infer_batch(self, compiled):
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        rng = np.random.default_rng(0)
        results = runner.infer_batch(
            db, [rng.normal(size=(1, 8, 8)) for _ in range(3)]
        )
        assert len(results) == 3

    def test_two_models_coexist(self, compiled):
        db = Database()
        other_model = build_student_cnn(
            input_shape=(1, 8, 8), num_classes=2, channels=(2, 2, 2), seed=9
        )
        other_model.name = "second_model"
        other = compile_model(other_model)
        first = Dl2SqlModel(compiled)
        second = Dl2SqlModel(other)
        first.load(db)
        second.load(db)
        x = np.random.default_rng(1).normal(size=(1, 8, 8))
        first_result = first.infer(db, x)
        second_result = second.infer(db, x)
        assert first_result.probabilities.shape == (3,)
        assert second_result.probabilities.shape == (2,)
        # And the first model still works after the second ran.
        assert first.infer(db, x).probabilities.shape == (3,)
