"""Batched DL2SQL: parity with per-sample inference + amortization."""

import numpy as np
import pytest

from repro.core import Dl2SqlModel, PreJoin, compile_model
from repro.core.batch import (
    BatchedDl2SqlModel,
    compile_model_batched,
)
from repro.engine import Database
from repro.errors import CompileError, ExecutionError
from repro.tensor import (
    BasicAttention,
    Flatten,
    Model,
    build_resnet,
    build_student_cnn,
)


@pytest.fixture(scope="module")
def student():
    return build_student_cnn(
        input_shape=(1, 8, 8), num_classes=3, channels=(4, 4, 4),
        class_labels=["a", "b", "c"], seed=11,
    )


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(5)
    return [rng.normal(size=(1, 8, 8)) for _ in range(6)]


class TestBatchedParity:
    @pytest.mark.parametrize("prejoin", list(PreJoin))
    def test_matches_tensor_forward(self, student, batch, prejoin):
        compiled = compile_model_batched(student, prejoin=prejoin)
        db = Database()
        runner = BatchedDl2SqlModel(compiled)
        runner.load(db)
        result = runner.infer_batch(db, batch)
        expected = student.forward_batch(batch)
        assert np.allclose(result.probabilities, expected, atol=1e-8)

    def test_labels_match_per_sample_runner(self, student, batch):
        batched = compile_model_batched(student)
        per_sample = compile_model(student)
        db = Database()
        batch_runner = BatchedDl2SqlModel(batched)
        batch_runner.load(db)
        sample_db = Database()
        sample_runner = Dl2SqlModel(per_sample)
        sample_runner.load(sample_db)

        batch_result = batch_runner.infer_batch(db, batch)
        sample_labels = [
            sample_runner.infer(sample_db, image).label for image in batch
        ]
        assert batch_result.labels == sample_labels

    def test_resnet_batched(self, batch):
        model = build_resnet(5, input_shape=(1, 8, 8), num_classes=3, seed=2)
        compiled = compile_model_batched(model)
        db = Database()
        runner = BatchedDl2SqlModel(compiled)
        runner.load(db)
        result = runner.infer_batch(db, batch[:3])
        expected = model.forward_batch(batch[:3])
        assert np.allclose(result.probabilities, expected, atol=1e-8)

    def test_single_item_batch(self, student, batch):
        compiled = compile_model_batched(student)
        db = Database()
        runner = BatchedDl2SqlModel(compiled)
        runner.load(db)
        result = runner.infer_batch(db, batch[:1])
        assert result.batch_size == 1


class TestBatchedAmortization:
    def test_batched_is_faster_per_frame(self, student, batch):
        """The point of batch mode: per-frame cost drops vs per-sample."""
        import time

        per_sample = compile_model(student, prejoin=PreJoin.FOLD)
        batched = compile_model_batched(student, prejoin=PreJoin.FOLD)

        db1 = Database()
        sample_runner = Dl2SqlModel(per_sample)
        sample_runner.load(db1)
        sample_runner.infer(db1, batch[0])  # warm caches
        started = time.perf_counter()
        for image in batch:
            sample_runner.infer(db1, image)
        per_sample_seconds = time.perf_counter() - started

        db2 = Database()
        batch_runner = BatchedDl2SqlModel(batched)
        batch_runner.load(db2)
        batch_runner.infer_batch(db2, batch[:1])  # warm caches
        started = time.perf_counter()
        batch_runner.infer_batch(db2, batch)
        batched_seconds = time.perf_counter() - started

        # Wall-clock under CI noise: allow a small margin here; the strict
        # amortization claim is asserted in benchmarks/bench_batch.py.
        assert batched_seconds < per_sample_seconds * 1.25


class TestBatchedErrors:
    def test_empty_batch_rejected(self, student):
        compiled = compile_model_batched(student)
        db = Database()
        runner = BatchedDl2SqlModel(compiled)
        runner.load(db)
        with pytest.raises(ExecutionError, match="empty"):
            runner.infer_batch(db, [])

    def test_shape_mismatch_rejected(self, student, batch):
        compiled = compile_model_batched(student)
        db = Database()
        runner = BatchedDl2SqlModel(compiled)
        runner.load(db)
        with pytest.raises(ExecutionError, match="shape"):
            runner.infer_batch(db, [np.zeros((1, 9, 9))])

    def test_attention_unsupported(self):
        model = Model(
            "att", (1, 4, 4), [Flatten(), BasicAttention(16, 4)]
        )
        with pytest.raises(CompileError, match="batched compiler"):
            compile_model_batched(model)

    def test_repeated_batches_clean_up(self, student, batch):
        compiled = compile_model_batched(student)
        db = Database()
        runner = BatchedDl2SqlModel(compiled)
        runner.load(db)
        runner.infer_batch(db, batch[:2])
        tables_after_first = len(db.catalog.table_names())
        runner.infer_batch(db, batch[2:4])
        assert len(db.catalog.table_names()) == tables_after_first

    def test_unload(self, student, batch):
        compiled = compile_model_batched(student)
        db = Database()
        runner = BatchedDl2SqlModel(compiled)
        runner.load(db)
        runner.infer_batch(db, batch[:1])
        assert runner.unload(db) > 0
        leftovers = [
            n for n in db.catalog.table_names()
            if n.startswith(compiled.table_prefix)
        ]
        assert leftovers == []
