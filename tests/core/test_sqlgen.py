"""Statement templates: parseability and structural checks."""

from repro.core import sqlgen
from repro.sql.ast_nodes import CreateTable, UpdateStatement
from repro.sql.parser import parse_statement


def assert_create(sql, table):
    statement = parse_statement(sql)
    assert isinstance(statement, CreateTable)
    assert statement.name == table
    assert statement.temp
    assert statement.as_select is not None
    return statement


class TestTemplates:
    def test_reshape_is_q2(self):
        sql = sqlgen.reshape_sql("fm", "flat", "mapping")
        statement = assert_create(sql, "fm")
        names = [i.output_name(n) for n, i in enumerate(statement.as_select.items)]
        assert names == ["MatrixID", "OrderID", "Value"]

    def test_conv_is_q1(self):
        sql = sqlgen.conv_sql("out", "fm", "kern", 16)
        statement = assert_create(sql, "out")
        assert "INNER JOIN" in sql
        assert "GROUP BY" in sql
        assert "SUM((A.Value * B.Value))" in statement.as_select.to_sql() or (
            "SUM(A.Value * B.Value)" in sql
        )

    def test_conv_fold_composes_subquery(self):
        sql = sqlgen.conv_fold_sql("out", "flat", "map", "kern", 16)
        assert_create(sql, "out")
        assert sql.count("SELECT") == 2  # outer + inner mapping join

    def test_conv_prejoined_single_join(self):
        sql = sqlgen.conv_prejoined_sql("out", "flat", "kmap", 16)
        assert_create(sql, "out")
        assert "INNER JOIN" not in sql  # single comma join on TupleID
        assert sql.count("SELECT") == 1

    def test_pooling_two_step_is_q3(self):
        first, second = sqlgen.pooling_two_step_sql(
            "mid", "out", "flat", "pmap", "max"
        )
        assert_create(first, "mid")
        statement = assert_create(second, "out")
        assert "GROUP BY" in second
        assert "max(Value)" in second

    def test_pooling_fused(self):
        sql = sqlgen.pooling_fused_sql("out", "flat", "pmap", "avg")
        assert_create(sql, "out")
        assert "avg(A.Value)" in sql

    def test_bn_stats_groups_by_channel(self):
        sql = sqlgen.bn_stats_sql("stats", "flat", 64)
        assert_create(sql, "stats")
        assert "intDiv(TupleID, 64)" in sql
        assert "varPop" in sql

    def test_bn_apply_eq1(self):
        sql = sqlgen.bn_apply_sql("out", "flat", "stats", "params", 64)
        assert_create(sql, "out")
        assert "sqrt" in sql  # (x - mean)/sqrt(var + eps)

    def test_bn_running(self):
        sql = sqlgen.bn_running_sql("out", "flat", "params", 64, eps=1e-5)
        assert_create(sql, "out")
        assert "P.MeanV" in sql

    def test_relu_is_the_paper_update(self):
        sql = sqlgen.relu_sql("t")
        statement = parse_statement(sql)
        assert isinstance(statement, UpdateStatement)
        assert sql == "UPDATE t SET Value = 0 WHERE Value < 0"

    def test_residual_add_is_q5(self):
        sql = sqlgen.residual_add_sql("out", "main", "short")
        assert_create(sql, "out")
        assert "A.Value + B.Value" in sql

    def test_fc(self):
        sql = sqlgen.fc_sql("out", "flat", "w")
        assert_create(sql, "out")
        assert "A.TupleID = B.OrderID" in sql

    def test_softmax_pair(self):
        first, second = sqlgen.softmax_sql("e", "s", "flat")
        assert_create(first, "e")
        assert_create(second, "s")
        assert "exp(" in first
        assert "SELECT sum(Value)" in second

    def test_elementwise_product_scale(self):
        scaled = sqlgen.elementwise_product_sql("o", "a", "b", 0.5)
        plain = sqlgen.elementwise_product_sql("o", "a", "b")
        assert "0.5" in scaled
        assert "* 1.0" not in plain

    def test_concat_insert(self):
        sql = sqlgen.concat_insert_sql("concat", "stage", 128)
        statement = parse_statement(sql)
        assert statement.table_name == "concat"
        assert "TupleID + 128" in sql

    def test_bias_add(self):
        sql = sqlgen.bias_add_sql("out", "flat", "bias", 16)
        assert_create(sql, "out")
        assert "intDiv(A.TupleID, 16) = B.KernelID" in sql

    def test_copy(self):
        assert_create(sqlgen.copy_sql("out", "src"), "out")
