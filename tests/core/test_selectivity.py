"""Eq. 9/10: nUDF selectivity from class histograms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selectivity import NudfSelectivity
from repro.errors import WorkloadError


class TestProbabilities:
    def test_eq10(self):
        estimator = NudfSelectivity.from_histogram(
            "nUDF_classify", {"A": 60, "B": 30, "C": 10}
        )
        assert estimator.probability("A") == 0.6
        assert estimator.probability("B") == 0.3
        assert estimator.probability("C") == 0.1

    def test_eq9_distribution_sums_to_one(self):
        estimator = NudfSelectivity.from_histogram(
            "x", {"a": 3, "b": 5, "c": 2}
        )
        assert sum(estimator.distribution().values()) == pytest.approx(1.0)

    def test_unseen_label_zero(self):
        estimator = NudfSelectivity.from_histogram("x", {"a": 1})
        assert estimator.probability("never") == 0.0

    def test_class_index_relabelling(self):
        estimator = NudfSelectivity.from_histogram(
            "nUDF_detect", {0: 90, 1: 10}, class_labels=[False, True]
        )
        assert estimator.probability(True) == 0.1

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            NudfSelectivity.from_histogram("x", {"a": -1})


class TestSelectivities:
    def test_equals_vs_not_equals_complement(self):
        estimator = NudfSelectivity.from_histogram("x", {"a": 7, "b": 3})
        assert estimator.selectivity_equals("a") + (
            estimator.selectivity_not_equals("a")
        ) == pytest.approx(1.0)

    def test_boolean_literal_normalization(self):
        estimator = NudfSelectivity.from_histogram(
            "nUDF_detect", {True: 2, False: 8}
        )
        # SQL TRUE/FALSE literals arrive as python bools; strings too.
        assert estimator.selectivity_equals(True) == 0.2
        assert estimator.selectivity_equals("TRUE") == 0.2
        assert estimator.selectivity_equals("false") == 0.8

    def test_observe_online(self):
        estimator = NudfSelectivity(udf_name="x")
        estimator.observe("a", 3)
        estimator.observe("b")
        assert estimator.total == 4
        assert estimator.probability("a") == 0.75

    def test_empty_histogram_fallback(self):
        estimator = NudfSelectivity(udf_name="x")
        assert estimator.probability("anything") == 0.5


@given(
    counts=st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=0, max_value=1000),
        min_size=1,
    )
)
@settings(max_examples=100, deadline=None)
def test_probability_is_a_distribution(counts):
    estimator = NudfSelectivity.from_histogram("x", counts)
    probabilities = [estimator.probability(label) for label in counts]
    assert all(0.0 <= p <= 1.0 for p in probabilities)
    if sum(counts.values()) > 0:
        assert sum(probabilities) == pytest.approx(1.0)
