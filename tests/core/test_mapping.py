"""Algorithm 2 (mapping tables): re-indexing correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.featuremap import feature_map_rows, flat_rows
from repro.core.mapping import (
    deconv_mapping_rows,
    mapping_rows,
    pooling_mapping_rows,
)
from repro.tensor import functional as F


def apply_mapping(tensor, kernel, stride, padding):
    """Simulate the Q2 join: flat table ⋈ mapping -> feature-map rows."""
    tuple_ids, values = flat_rows(tensor)
    lookup = dict(zip(tuple_ids.tolist(), values.tolist()))
    matrix_ids, order_ids, map_tuples = mapping_rows(
        tensor.shape, kernel, stride, padding
    )
    picked = np.array([lookup[t] for t in map_tuples.tolist()])
    return matrix_ids, order_ids, picked


class TestMappingEquivalence:
    @pytest.mark.parametrize(
        "channels,size,kernel,stride,padding",
        [
            (1, 5, 3, 2, 0),
            (2, 6, 2, 2, 0),
            (3, 8, 3, 1, 1),
            (1, 7, 3, 2, 1),
        ],
    )
    def test_mapping_reproduces_algorithm1(
        self, channels, size, kernel, stride, padding
    ):
        """flat ⋈ mapping must equal the direct Algorithm-1 table."""
        rng = np.random.default_rng(0)
        tensor = rng.normal(size=(channels, size, size))
        direct = feature_map_rows(tensor, kernel, stride, padding)
        joined = apply_mapping(tensor, kernel, stride, padding)

        def as_set(rows):
            return {
                (int(m), int(o), round(float(v), 12))
                for m, o, v in zip(*rows)
            }

        assert as_set(direct) == as_set(joined)

    def test_padding_slots_absent(self):
        matrix_ids, order_ids, tuple_ids = mapping_rows((1, 4, 4), 3, 1, 1)
        # With padding 1, corner windows lose slots; total < full count.
        full = 4 * 4 * 9
        assert len(matrix_ids) < full
        assert tuple_ids.min() >= 0 and tuple_ids.max() < 16

    def test_shape_only_dependence(self):
        """The paper: the mapping table depends only on k, W and s."""
        a = mapping_rows((2, 6, 6), 3, 1, 0)
        b = mapping_rows((2, 6, 6), 3, 1, 0)
        for left, right in zip(a, b):
            assert np.array_equal(left, right)


class TestPoolingMapping:
    def test_max_pool_via_mapping(self):
        rng = np.random.default_rng(1)
        tensor = rng.normal(size=(2, 6, 6))
        matrix_ids, tuple_ids = pooling_mapping_rows((2, 6, 6), 2, 2)
        flat = tensor.reshape(-1)
        pooled = np.full(2 * 3 * 3, -np.inf)
        for matrix_id, tuple_id in zip(matrix_ids, tuple_ids):
            pooled[matrix_id] = max(pooled[matrix_id], flat[tuple_id])
        expected = F.max_pool2d(tensor, 2).reshape(-1)
        assert np.allclose(pooled, expected)

    def test_avg_pool_via_mapping(self):
        rng = np.random.default_rng(2)
        tensor = rng.normal(size=(1, 4, 4))
        matrix_ids, tuple_ids = pooling_mapping_rows((1, 4, 4), 2, 2)
        flat = tensor.reshape(-1)
        sums = np.zeros(4)
        counts = np.zeros(4)
        for matrix_id, tuple_id in zip(matrix_ids, tuple_ids):
            sums[matrix_id] += flat[tuple_id]
            counts[matrix_id] += 1
        expected = F.avg_pool2d(tensor, 2).reshape(-1)
        assert np.allclose(sums / counts, expected)


class TestDeconvMapping:
    def test_deconv_via_mapping(self):
        """Sum of input x kernel over the deconv mapping equals deconv2d."""
        rng = np.random.default_rng(3)
        tensor = rng.normal(size=(1, 3, 3))
        weight = rng.normal(size=(1, 1, 2, 2))
        matrix_ids, order_ids, tuple_ids = deconv_mapping_rows((1, 3, 3), 2, 2)
        flat = tensor.reshape(-1)
        kernel_flat = weight[0, 0].reshape(-1)
        out = np.zeros(6 * 6)
        for matrix_id, order_id, tuple_id in zip(
            matrix_ids, order_ids, tuple_ids
        ):
            out[matrix_id] += flat[tuple_id] * kernel_flat[order_id]
        expected = F.deconv2d(tensor, weight, stride=2).reshape(-1)
        assert np.allclose(out, expected)


@given(
    size=st.integers(4, 7),
    kernel=st.integers(2, 3),
    stride=st.integers(1, 2),
    channels=st.integers(1, 2),
)
@settings(max_examples=30, deadline=None)
def test_mapping_property(size, kernel, stride, channels):
    tensor = np.random.default_rng(0).normal(size=(channels, size, size))
    direct = feature_map_rows(tensor, kernel, stride, 0)
    joined = apply_mapping(tensor, kernel, stride, 0)
    assert len(direct[0]) == len(joined[0])
    direct_set = set(zip(direct[0].tolist(), direct[1].tolist()))
    joined_set = set(zip(joined[0].tolist(), joined[1].tolist()))
    assert direct_set == joined_set
