"""Algorithm 1 (feature-map tables) against the dense im2col reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.featuremap import feature_map_rows, flat_rows, tensor_from_flat
from repro.errors import CompileError
from repro.tensor.functional import conv_output_size, im2col


class TestPaperFigure3:
    def test_5x5_kernel3_stride2(self):
        """The exact configuration of Fig. 3: 5x5 input, 3x3 kernel,
        stride 2 -> 4 sub-matrices of 9 elements each."""
        tensor = np.arange(1, 26, dtype=float).reshape(1, 5, 5)
        matrix_ids, order_ids, values = feature_map_rows(tensor, 3, 2)
        assert len(values) == 4 * 9
        assert set(matrix_ids.tolist()) == {0, 1, 2, 3}
        assert set(order_ids.tolist()) == set(range(9))
        # First row of the table corresponds to the first element.
        assert values[(matrix_ids == 0) & (order_ids == 0)][0] == 1.0

    def test_redundant_storage(self):
        """Overlapping windows store shared elements redundantly, as the
        paper notes for {2,1,3} and {1,3,3}."""
        tensor = np.arange(1, 26, dtype=float).reshape(1, 5, 5)
        _, _, values = feature_map_rows(tensor, 3, 2)
        # Element at (0, 2) (value 3) belongs to both window 0 and 1.
        assert (values == 3.0).sum() == 2


class TestEquivalenceWithIm2col:
    @pytest.mark.parametrize(
        "channels,size,kernel,stride,padding",
        [
            (1, 5, 3, 2, 0),
            (1, 6, 2, 2, 0),
            (2, 5, 3, 1, 0),
            (3, 8, 3, 1, 1),
            (2, 7, 3, 2, 1),
        ],
    )
    def test_matches_dense_unfold(self, channels, size, kernel, stride, padding):
        rng = np.random.default_rng(1)
        tensor = rng.normal(size=(channels, size, size))
        matrix_ids, order_ids, values = feature_map_rows(
            tensor, kernel, stride, padding
        )
        columns, out_h, out_w = im2col(tensor, kernel, stride, padding)
        dense = np.zeros_like(columns)  # [k_in, windows]
        dense[order_ids, matrix_ids] = values
        # Padding slots are omitted from the table = zeros in dense form.
        assert np.allclose(dense, columns)

    def test_row_count_formula(self):
        """Without padding, |FeatureMap| = H_out*W_out*k^2*C (the paper's
        T_in = H_out x W_out x k_in)."""
        tensor = np.random.default_rng(0).normal(size=(2, 6, 6))
        matrix_ids, _, _ = feature_map_rows(tensor, 3, 1, 0)
        out = conv_output_size(6, 3, 1, 0)
        assert len(matrix_ids) == out * out * 9 * 2


class TestErrors:
    def test_requires_chw(self):
        with pytest.raises(CompileError):
            feature_map_rows(np.zeros((4, 4)), 2, 1)


class TestFlatRows:
    def test_roundtrip(self):
        tensor = np.random.default_rng(2).normal(size=(2, 3, 4))
        tuple_ids, values = flat_rows(tensor)
        rebuilt = tensor_from_flat(tuple_ids, values, (2, 3, 4))
        assert np.allclose(rebuilt, tensor)

    def test_chw_order(self):
        tensor = np.arange(8.0).reshape(2, 2, 2)
        tuple_ids, values = flat_rows(tensor)
        assert values[tuple_ids.tolist().index(4)] == 4.0  # channel 1 start

    def test_rebuild_with_shuffled_rows(self):
        tensor = np.arange(6.0).reshape(1, 2, 3)
        tuple_ids, values = flat_rows(tensor)
        order = np.random.default_rng(0).permutation(len(tuple_ids))
        rebuilt = tensor_from_flat(tuple_ids[order], values[order], (1, 2, 3))
        assert np.allclose(rebuilt, tensor)


@given(
    size=st.integers(4, 8),
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 1),
    channels=st.integers(1, 2),
)
@settings(max_examples=40, deadline=None)
def test_feature_map_property(size, kernel, stride, padding, channels):
    """Algorithm 1 always matches im2col, for any legal geometry."""
    if size + 2 * padding < kernel:
        return
    tensor = np.random.default_rng(0).normal(size=(channels, size, size))
    matrix_ids, order_ids, values = feature_map_rows(
        tensor, kernel, stride, padding
    )
    columns, _, _ = im2col(tensor, kernel, stride, padding)
    dense = np.zeros_like(columns)
    dense[order_ids, matrix_ids] = values
    assert np.allclose(dense, columns)
