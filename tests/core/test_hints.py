"""Hint machinery: comparison parsing, hint-aware costing, config."""

import numpy as np
import pytest

from repro.core.hints import (
    HintAwareCostModel,
    make_op_config,
    parse_udf_comparison,
)
from repro.core.selectivity import NudfSelectivity
from repro.engine.cost import UDF_SELECTIVITY_DEFAULT
from repro.engine.udf import BatchUdf, UdfRegistry
from repro.sql.parser import parse_statement
from repro.storage.schema import DataType


def where_of(sql):
    return parse_statement(f"SELECT 1 FROM t WHERE {sql}").where


class TestComparisonParsing:
    def test_equals_literal(self):
        assert parse_udf_comparison(where_of("nUDF_x(a) = 'lbl'")) == (
            "nUDF_x", "lbl", False,
        )

    def test_literal_on_left(self):
        assert parse_udf_comparison(where_of("TRUE = nUDF_x(a)")) == (
            "nUDF_x", True, False,
        )

    def test_not_equals(self):
        assert parse_udf_comparison(where_of("nUDF_x(a) != 'lbl'")) == (
            "nUDF_x", "lbl", True,
        )

    def test_not_wrapping_folds(self):
        assert parse_udf_comparison(where_of("NOT nUDF_x(a) = 'lbl'")) == (
            "nUDF_x", "lbl", True,
        )

    def test_double_negation(self):
        assert parse_udf_comparison(
            where_of("NOT (NOT nUDF_x(a) = 'lbl')")
        ) == ("nUDF_x", "lbl", False)

    def test_non_udf_shapes_rejected(self):
        assert parse_udf_comparison(where_of("a = 1")) is None
        assert parse_udf_comparison(where_of("nUDF_x(a) > 1")) is None
        assert parse_udf_comparison(where_of("nUDF_x(a) = b")) is None


class TestHintAwareCostModel:
    @pytest.fixture()
    def registry(self):
        registry = UdfRegistry()
        registry.register(
            BatchUdf(
                name="nUDF_detect",
                fn=lambda v: np.zeros(len(v), dtype=bool),
                return_dtype=DataType.BOOL,
                cost_per_row=0.01,
                is_neural=True,
            )
        )
        return registry

    def test_selectivity_from_histogram(self, registry):
        estimator = NudfSelectivity.from_histogram(
            "nUDF_detect", {True: 5, False: 95}
        )
        model = HintAwareCostModel(registry, {"nUDF_detect": estimator})
        assert model.udf_predicate_selectivity(
            where_of("nUDF_detect(a) = TRUE")
        ) == pytest.approx(0.05)
        assert model.udf_predicate_selectivity(
            where_of("nUDF_detect(a) != TRUE")
        ) == pytest.approx(0.95)

    def test_fallback_without_histogram(self, registry):
        model = HintAwareCostModel(registry)
        assert model.udf_predicate_selectivity(
            where_of("nUDF_detect(a) = TRUE")
        ) == UDF_SELECTIVITY_DEFAULT

    def test_call_cost_from_registration(self, registry):
        model = HintAwareCostModel(registry, seconds_per_cost_unit=1e-3)
        call = where_of("nUDF_detect(a) = TRUE").left
        assert model.udf_call_cost(call) == pytest.approx(10.0)

    def test_call_cost_fallback_for_unknown(self, registry):
        model = HintAwareCostModel(registry)
        call = where_of("other_udf(a) = TRUE").left
        assert model.udf_call_cost(call) == model.udf_cost_per_row

    def test_register_selectivity_later(self, registry):
        model = HintAwareCostModel(registry)
        model.register_selectivity(
            NudfSelectivity.from_histogram("nUDF_detect", {True: 1, False: 3})
        )
        assert model.selectivity_for("nudf_detect") is not None


class TestOpConfig:
    def test_make_op_config(self):
        registry = UdfRegistry()
        config = make_op_config(registry)
        assert config.use_hints
        assert isinstance(config.cost_model, HintAwareCostModel)
