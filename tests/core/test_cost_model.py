"""The customized cost model: Eqs. 3-8 and script estimation."""

import pytest

from repro.core import CustomCostModel, compile_model
from repro.core.compiler import LayerInfo, PreJoin
from repro.core.cost_model import (
    estimate_conv_layer,
    estimate_layers,
    estimate_script_cost,
    linear_operator_cost,
    normalization_ratio,
)
from repro.core.runner import Dl2SqlModel
from repro.engine import Database
from repro.engine.cost import DefaultCostModel
from repro.tensor import Conv2d, Model, build_student_cnn


def conv_info(n_in=1, n_out=2, size=5, k=3, s=1, p=0):
    from repro.tensor.functional import conv_output_size

    out = conv_output_size(size, k, s, p)
    return LayerInfo(
        kind="conv",
        name="c",
        input_shape=(n_in, size, size),
        output_shape=(n_out, out, out),
        kernel_size=k,
        stride=s,
        padding=p,
    )


class TestPaperEquations:
    def test_eq4_selectivity(self):
        estimate = estimate_conv_layer(conv_info(n_in=2, k=3))
        assert estimate.join_selectivity == pytest.approx(1.0 / 18.0)

    def test_eq5_t_out(self):
        estimate = estimate_conv_layer(conv_info(n_in=1, n_out=4, size=5, k=3))
        # T_out = T_in * S_J * k_out = (9*k_in) windows... closed form:
        # H_out*W_out * k^2 * N_out = 9 * 9 * 4
        assert estimate.t_out == 9 * 9 * 4

    def test_eq6_eq7_cost_composition(self):
        estimate = estimate_conv_layer(conv_info())
        assert estimate.c_join == estimate.t_in + estimate.t_out * estimate.k_in
        assert estimate.c_total == estimate.c_join + estimate.t_out

    def test_t_in_formula(self):
        estimate = estimate_conv_layer(conv_info(n_in=3, size=7, k=3, s=2))
        # H_out = (7-3)/2+1 = 3 -> T_in = 3*3*27
        assert estimate.t_in == 9 * 27

    def test_cost_grows_with_kernel(self):
        costs = [
            estimate_conv_layer(conv_info(size=10, k=k)).c_total
            for k in (1, 2, 3)
        ]
        assert costs == sorted(costs)

    def test_linear_operator_cost(self):
        info = LayerInfo(
            kind="bn", name="b", input_shape=(2, 4, 4), output_shape=(2, 4, 4)
        )
        assert linear_operator_cost(info) == 32.0

    def test_estimate_layers_only_convs(self):
        model = build_student_cnn(
            input_shape=(1, 8, 8), channels=(2, 2, 2), seed=0
        )
        compiled = compile_model(model)
        estimates = estimate_layers(compiled)
        assert len(estimates) == 3  # three conv blocks


class TestScriptEstimation:
    @pytest.fixture()
    def loaded(self):
        model = Model(
            "est",
            (1, 8, 8),
            [
                Conv2d(1, 4, 3, padding=1, name="c1"),
                Conv2d(4, 4, 3, padding=1, name="c2"),
            ],
        )
        compiled = compile_model(model, prejoin=PreJoin.NONE)
        db = Database()
        Dl2SqlModel(compiled).load(db)
        return compiled, db

    def test_default_over_estimates_custom(self, loaded):
        compiled, db = loaded
        default = estimate_script_cost(compiled, db, DefaultCostModel())
        custom = estimate_script_cost(compiled, db, CustomCostModel())
        assert default.total_cost > custom.total_cost

    def test_over_estimation_compounds_with_depth(self, loaded):
        """The paper: the error is 'exaggerated exponentially' layer over
        layer — the ratio grows from the shallow to the deep model."""
        compiled_shallow, db = loaded
        deep = Model(
            "estdeep",
            (1, 8, 8),
            [
                Conv2d(1, 4, 3, padding=1, name=f"c{i}")
                if i == 0
                else Conv2d(4, 4, 3, padding=1, name=f"c{i}")
                for i in range(4)
            ],
        )
        compiled_deep = compile_model(deep)
        Dl2SqlModel(compiled_deep).load(db)

        def ratio(compiled):
            default = estimate_script_cost(compiled, db, DefaultCostModel())
            custom = estimate_script_cost(compiled, db, CustomCostModel())
            return default.total_cost / custom.total_cost

        assert ratio(compiled_deep) > ratio(compiled_shallow)

    def test_custom_estimates_all_steps(self, loaded):
        compiled, db = loaded
        estimate = estimate_script_cost(compiled, db, CustomCostModel())
        assert len(estimate.steps) == len(compiled.steps)
        assert all(s.cost >= 0 for s in estimate.steps)

    def test_custom_rows_match_compiler_facts(self, loaded):
        compiled, db = loaded
        model = CustomCostModel()
        model.add_compiled(compiled)
        assert compiled.output_table in model.known_tables()

    def test_normalization_ratio(self):
        assert normalization_ratio(2.0, 4.0) == 0.5
        assert normalization_ratio(2.0, 0.0) == 0.0
