"""Table II: every supported neural operator's SQL implementation must
match the tensor framework bit-for-bit (within float tolerance).

Each test compiles a tiny model containing the operator under test, runs
SQL inference, and compares against the numpy forward pass.
"""

import numpy as np
import pytest

from repro.core import Dl2SqlModel, PreJoin, compile_model
from repro.engine import Database
from repro.tensor import (
    AvgPool2d,
    BasicAttention,
    BatchNorm2d,
    Conv2d,
    Deconv2d,
    DenseBlock,
    Flatten,
    IdentityBlock,
    InstanceNorm2d,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    ResidualBlock,
    Softmax,
    build_resnet,
    build_student_cnn,
)


def sql_forward(model, x, prejoin=PreJoin.NONE):
    compiled = compile_model(model, prejoin=prejoin)
    db = Database()
    runner = Dl2SqlModel(compiled)
    runner.load(db)
    runner.infer(db, x)
    return runner.read_output(db)


def check(model, seed=0, prejoin=PreJoin.NONE, atol=1e-9):
    x = np.random.default_rng(seed).normal(size=model.input_shape)
    expected = model.forward(x)
    got = sql_forward(model, x, prejoin)
    assert got.shape == tuple(expected.shape)
    assert np.allclose(got, expected, atol=atol), (
        f"max err {np.abs(got - expected).max()}"
    )


RNG = np.random.default_rng(42)


class TestSingleOperators:
    def test_conv(self):
        check(Model("conv", (1, 6, 6), [Conv2d(1, 3, 3, rng=RNG)]))

    def test_conv_stride_padding(self):
        check(
            Model(
                "convsp",
                (2, 7, 7),
                [Conv2d(2, 3, 3, stride=2, padding=1, rng=RNG)],
            )
        )

    def test_conv_with_bias(self):
        layer = Conv2d(1, 2, 3, rng=RNG)
        layer.bias = np.array([0.5, -0.5])
        check(Model("convb", (1, 5, 5), [layer]))

    def test_conv_1x1_is_pointwise(self):
        check(Model("conv1", (3, 4, 4), [Conv2d(3, 2, 1, rng=RNG)]))

    def test_deconv(self):
        check(Model("deconv", (2, 4, 4), [Deconv2d(2, 3, 2, stride=2, rng=RNG)]))

    def test_max_pooling(self):
        check(Model("maxpool", (2, 6, 6), [MaxPool2d(2)]))

    def test_avg_pooling(self):
        check(Model("avgpool", (2, 6, 6), [AvgPool2d(2)]))

    def test_overlapping_pooling(self):
        check(Model("ovpool", (1, 5, 5), [MaxPool2d(3, stride=1)]))

    def test_relu(self):
        check(Model("relu", (2, 4, 4), [ReLU()]))

    def test_batch_norm_input_stats(self):
        check(Model("bn", (3, 5, 5), [BatchNorm2d(3)]))

    def test_batch_norm_running_stats(self):
        bn = BatchNorm2d(2)
        bn.running_mean = np.array([0.5, -0.5])
        bn.running_var = np.array([2.0, 0.5])
        check(Model("bnrun", (2, 4, 4), [bn]))

    def test_batch_norm_gamma_beta(self):
        bn = BatchNorm2d(2)
        bn.gamma = np.array([2.0, 0.5])
        bn.beta = np.array([1.0, -1.0])
        check(Model("bngb", (2, 4, 4), [bn]))

    def test_instance_norm(self):
        check(Model("inorm", (2, 5, 5), [InstanceNorm2d(2)]))

    def test_full_connection(self):
        check(Model("fc", (1, 4, 4), [Flatten(), Linear(16, 5, rng=RNG)]))

    def test_fc_with_bias(self):
        layer = Linear(9, 3, rng=RNG)
        layer.bias = np.array([1.0, -1.0, 0.5])
        check(Model("fcb", (1, 3, 3), [Flatten(), layer]))

    def test_softmax(self):
        check(Model("soft", (1, 2, 2), [Flatten(), Softmax()]))

    def test_basic_attention(self):
        check(
            Model(
                "attn", (1, 4, 4), [Flatten(), BasicAttention(16, 6, rng=RNG)]
            )
        )


class TestBlocks:
    def test_identity_block(self):
        main = [
            Conv2d(2, 2, 3, padding=1, rng=RNG),
            BatchNorm2d(2),
            ReLU(),
            Conv2d(2, 2, 3, padding=1, rng=RNG),
            BatchNorm2d(2),
        ]
        check(Model("ident", (2, 5, 5), [IdentityBlock(main)]))

    def test_residual_block_with_shortcut(self):
        main = [
            Conv2d(2, 4, 3, padding=1, rng=RNG),
            BatchNorm2d(4),
            ReLU(),
            Conv2d(4, 4, 3, padding=1, rng=RNG),
            BatchNorm2d(4),
        ]
        shortcut = [Conv2d(2, 4, 1, rng=RNG), BatchNorm2d(4)]
        check(Model("resid", (2, 5, 5), [ResidualBlock(main, shortcut)]))

    def test_dense_block(self):
        stages = [
            [Conv2d(2, 2, 3, padding=1, rng=RNG), ReLU()],
            [Conv2d(4, 2, 3, padding=1, rng=RNG), ReLU()],
        ]
        check(Model("dense", (2, 4, 4), [DenseBlock(stages)]))

    def test_relu_on_model_input_is_copy_safe(self):
        """A leading ReLU must not mutate the input table in place."""
        model = Model("leadrelu", (1, 3, 3), [ReLU(), ReLU()])
        compiled = compile_model(model)
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        x = np.random.default_rng(0).normal(size=(1, 3, 3))
        runner.infer(db, x)
        # The registered input table still holds the original values.
        input_values = db.table(compiled.input_table).column("Value").data
        assert input_values.min() < 0


class TestWholeModels:
    def test_student_cnn_all_prejoins(self):
        model = build_student_cnn(
            input_shape=(1, 8, 8), num_classes=3, channels=(4, 4, 4), seed=5
        )
        for prejoin in PreJoin:
            check(model, seed=1, prejoin=prejoin, atol=1e-8)

    def test_resnet(self):
        model = build_resnet(5, input_shape=(1, 8, 8), num_classes=3, seed=6)
        check(model, seed=2, atol=1e-8)

    def test_multi_channel_input(self):
        model = build_student_cnn(
            input_shape=(3, 8, 8), num_classes=4, channels=(4, 6, 6), seed=7
        )
        check(model, seed=3, atol=1e-8)

    def test_predicted_labels_agree(self):
        model = build_student_cnn(
            input_shape=(1, 8, 8),
            num_classes=3,
            channels=(4, 4, 4),
            class_labels=["a", "b", "c"],
            seed=8,
        )
        compiled = compile_model(model)
        db = Database()
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        rng = np.random.default_rng(4)
        for _ in range(5):
            x = rng.normal(size=(1, 8, 8))
            assert runner.infer(db, x).label == model.predict_label(x)
