"""Catalog behaviour: names, views, temp objects, indexes."""

import pytest

from repro.errors import CatalogError
from repro.sql.parser import parse_statement
from repro.storage.catalog import Catalog, View
from repro.storage.table import Table


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.create_table(Table.from_dict("t", {"a": [1, 2]}))
    return cat


class TestTables:
    def test_get_case_insensitive(self, catalog):
        assert catalog.get_table("T").num_rows == 2

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_table(Table.from_dict("t", {"a": [1]}))

    def test_replace(self, catalog):
        catalog.create_table(Table.from_dict("t", {"a": [9]}), replace=True)
        assert catalog.get_table("t").num_rows == 1

    def test_drop(self, catalog):
        catalog.drop("t")
        assert not catalog.has("t")

    def test_drop_unknown(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop("missing")
        catalog.drop("missing", if_exists=True)  # no raise

    def test_unknown_lookup_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get_table("missing")


class TestTempObjects:
    def test_drop_temp_objects(self, catalog):
        catalog.create_table(Table.from_dict("tmp1", {"a": [1]}), temp=True)
        catalog.create_table(Table.from_dict("tmp2", {"a": [1]}), temp=True)
        assert catalog.is_temp("tmp1")
        assert catalog.drop_temp_objects() == 2
        assert catalog.has("t")
        assert not catalog.has("tmp1")


class TestViews:
    def test_view_roundtrip(self, catalog):
        statement = parse_statement("SELECT a FROM t")
        catalog.create_view(View("v", statement))
        assert catalog.is_view("v")
        assert catalog.get_view("v").statement is statement

    def test_view_vs_table_confusion(self, catalog):
        statement = parse_statement("SELECT a FROM t")
        catalog.create_view(View("v", statement))
        with pytest.raises(CatalogError):
            catalog.get_table("v")
        with pytest.raises(CatalogError):
            catalog.get_view("t")

    def test_view_names(self, catalog):
        catalog.create_view(View("v", parse_statement("SELECT a FROM t")))
        assert catalog.view_names() == ["v"]
        assert catalog.table_names() == ["t"]


class TestIndexes:
    def test_create_and_get(self, catalog):
        index = catalog.create_index("t", "a")
        assert index.num_keys == 2
        assert catalog.get_index("t", "a") is index
        assert catalog.get_index("t", "missing") is None

    def test_invalidation(self, catalog):
        catalog.create_index("t", "a")
        catalog.invalidate_indexes("t")
        assert catalog.get_index("t", "a") is None


class TestFootprint:
    def test_total_nbytes(self, catalog):
        before = catalog.total_nbytes()
        catalog.create_table(Table.from_dict("big", {"a": list(range(1000))}))
        assert catalog.total_nbytes() > before
