"""Partitioned tables: chunking, zone maps, lazy persistence round-trips.

The larger-than-memory contract has three legs, each pinned here:

1. a :class:`PartitionedTable` behaves exactly like a :class:`Table` to
   every full-table code path (mutation re-chunks, reads concatenate);
2. persistence writes one ``.npz`` per partition and reloads them
   *lazily* — zone maps come from the manifest, data is memory-mapped on
   first materialization, and corruption surfaces as a typed
   :class:`StorageError` naming the partition;
3. pre-partition manifests (single-archive tables) keep loading.
"""

import glob
import json
import os

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.statistics import compute_table_stats
from repro.errors import StorageError
from repro.storage.column import Column
from repro.storage.partition import Partition, PartitionedTable
from repro.storage.persist import load_database, save_database
from repro.storage.schema import DataType
from repro.storage.table import Table


def make_partitioned(rows: int = 25, step: int = 10) -> PartitionedTable:
    return PartitionedTable(
        "t",
        [
            Column("a", DataType.INT64, np.arange(rows, dtype=np.int64)),
            Column(
                "s",
                DataType.STRING,
                np.array([f"s{i}" for i in range(rows)], dtype=object),
                np.array([i % 3 != 0 for i in range(rows)]),
            ),
        ],
        partition_rows=step,
    )


class TestPartitionedTable:
    def test_chunking_and_metadata(self):
        table = make_partitioned(25, 10)
        assert table.num_partitions == 3
        assert [p.rows for p in table.partitions] == [10, 10, 5]
        assert table.num_rows == 25
        assert table.num_columns == 2

    def test_zone_maps_match_table_stats(self):
        table = make_partitioned(25, 10)
        zone = table.partitions[1].zone
        assert zone["a"].min_value == 10
        assert zone["a"].max_value == 19
        merged = compute_table_stats(table)
        assert merged.row_count == 25
        assert merged.columns["a"].min_value == 0
        assert merged.columns["a"].max_value == 24
        assert merged.columns["s"].null_count == 9

    def test_reads_concatenate(self):
        table = make_partitioned(25, 10)
        assert list(table.column("a").data) == list(range(25))
        assert table.column("s")[0] is None
        assert table.head(12).num_rows == 12

    def test_mutation_rechunks(self):
        table = make_partitioned(25, 10)
        table.append_rows([(100, "tail")])
        assert table.num_rows == 26
        assert table.num_partitions == 3
        assert table.partitions[2].rows == 6
        assert table.partitions[2].zone["a"].max_value == 100

    def test_snapshot_shares_partitions(self):
        table = make_partitioned(25, 10)
        snap = table.snapshot()
        table.append_rows([(-5, None)])
        assert snap.num_rows == 25
        assert table.num_rows == 26

    def test_partition_requires_columns_or_loader(self):
        with pytest.raises(StorageError):
            Partition(rows=1, nbytes=8, zone={})

    def test_partition_rows_must_be_positive(self):
        with pytest.raises(StorageError):
            PartitionedTable("t", [], partition_rows=0)


@pytest.fixture()
def partitioned_db():
    db = Database()
    db.register_table(make_partitioned(25, 10))
    return db


class TestPartitionedPersistence:
    def test_round_trip_values(self, partitioned_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        save_database(partitioned_db, directory)
        fresh = Database()
        load_database(fresh, directory)
        table = fresh.table("t")
        assert isinstance(table, PartitionedTable)
        assert table.num_partitions == 3
        assert fresh.query("SELECT a, s FROM t ORDER BY a") == (
            partitioned_db.query("SELECT a, s FROM t ORDER BY a")
        )

    def test_one_archive_per_partition(self, partitioned_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        save_database(partitioned_db, directory)
        archives = sorted(glob.glob(os.path.join(directory, "t.p*.npz")))
        assert [os.path.basename(p) for p in archives] == [
            "t.p0000.npz", "t.p0001.npz", "t.p0002.npz",
        ]

    def test_load_is_lazy_until_materialized(self, partitioned_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        save_database(partitioned_db, directory)
        fresh = Database()
        load_database(fresh, directory)
        table = fresh.table("t")
        assert not any(p.resident for p in table.partitions)
        # Metadata-only paths touch no archive.
        assert table.num_rows == 25
        assert table.nbytes() > 0
        assert not any(p.resident for p in table.partitions)

    def test_zone_maps_loaded_equal_rebuilt(self, partitioned_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        save_database(partitioned_db, directory)
        fresh = Database()
        load_database(fresh, directory)
        original = partitioned_db.table("t")
        loaded = fresh.table("t")
        for before, after in zip(original.partitions, loaded.partitions):
            for name, stats in before.zone.items():
                assert after.zone[name].min_value == stats.min_value
                assert after.zone[name].max_value == stats.max_value
                assert after.zone[name].null_count == stats.null_count

    def test_per_partition_checksums_in_manifest(
        self, partitioned_db, tmp_path
    ):
        directory = str(tmp_path / "dbdir")
        save_database(partitioned_db, directory)
        with open(os.path.join(directory, "manifest.json")) as handle:
            manifest = json.load(handle)
        (entry,) = manifest["tables"]
        partitions = entry["partitioned"]["partitions"]
        assert len(partitions) == 3
        checksums = {meta["checksum"] for meta in partitions}
        assert len(checksums) == 3  # distinct data, distinct digests
        assert all(meta["rows"] for meta in partitions)

    def test_corrupt_partition_is_typed_and_named(
        self, partitioned_db, tmp_path
    ):
        directory = str(tmp_path / "dbdir")
        save_database(partitioned_db, directory)
        path = os.path.join(directory, "t.p0001.npz")
        # Flip a byte inside the int64 array payload (headers intact), so
        # only the content checksum can notice.
        from repro.storage.persist import _npz_member_specs

        offset, _, _ = _npz_member_specs(path)["col__a"]
        data = bytearray(open(path, "rb").read())
        data[offset + 8] ^= 0xFF
        open(path, "wb").write(bytes(data))
        fresh = Database()
        load_database(fresh, directory)  # staging checks existence only
        with pytest.raises(StorageError, match="partition 1"):
            fresh.query("SELECT sum(a) FROM t")

    def test_missing_partition_archive_fails_at_load(
        self, partitioned_db, tmp_path
    ):
        directory = str(tmp_path / "dbdir")
        save_database(partitioned_db, directory)
        os.remove(os.path.join(directory, "t.p0002.npz"))
        fresh = Database()
        with pytest.raises(StorageError, match="t.p0002.npz"):
            load_database(fresh, directory)

    def test_pre_partition_manifest_still_loads(self, tmp_path):
        """A plain table saved by the old path loads as a plain table."""
        db = Database()
        db.register_table(
            Table("plain", [
                Column("a", DataType.INT64, np.arange(4, dtype=np.int64)),
            ])
        )
        directory = str(tmp_path / "dbdir")
        save_database(db, directory)
        with open(os.path.join(directory, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert "partitioned" not in manifest["tables"][0]
        fresh = Database()
        load_database(fresh, directory)
        table = fresh.table("plain")
        assert not isinstance(table, PartitionedTable)
        assert fresh.query("SELECT sum(a) FROM plain") == [(6,)]

    def test_mutated_reload_round_trips_again(self, partitioned_db, tmp_path):
        first = str(tmp_path / "one")
        second = str(tmp_path / "two")
        save_database(partitioned_db, first)
        fresh = Database()
        load_database(fresh, first)
        fresh.execute("UPDATE t SET a = a + 1000 WHERE a >= 20")
        save_database(fresh, second)
        final = Database()
        load_database(final, second)
        assert final.query("SELECT count(*) FROM t WHERE a >= 1000") == [(5,)]


class TestStatsPrecision:
    def test_int_bounds_exact_beyond_float53(self):
        """INT64 stats bounds stay exact past 2**53 (the float cliff)."""
        lo, hi = -(2**53 + 1), 2**53 + 1
        table = Table("big", [
            Column("x", DataType.INT64, np.array([lo, 0, hi], dtype=np.int64)),
        ])
        stats = compute_table_stats(table)
        assert stats.columns["x"].min_value == lo
        assert stats.columns["x"].max_value == hi
        assert isinstance(stats.columns["x"].min_value, int)
        assert isinstance(stats.columns["x"].max_value, int)

    def test_folding_sees_exact_bounds(self):
        """float(2**53 + 1) == float(2**53): a rounded bound would let
        the optimizer prove ``x > 2**53`` empty when it is not."""
        db = Database()
        hi = 2**53 + 1
        db.create_table_from_dict("big", {"x": [0, hi]})
        assert db.query(f"SELECT count(*) FROM big WHERE x > {2**53}") == [
            (1,)
        ]
