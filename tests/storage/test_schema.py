"""Schema and type-system behaviour."""

import pytest

from repro.errors import StorageError
from repro.storage.schema import (
    ColumnSpec,
    DataType,
    Schema,
    format_date,
    parse_date,
)


class TestDataType:
    def test_numeric_flags(self):
        assert DataType.INT64.is_numeric
        assert DataType.FLOAT64.is_numeric
        assert DataType.DATE.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BLOB.is_numeric

    def test_numpy_dtypes(self):
        import numpy as np

        assert DataType.INT64.numpy_dtype == np.dtype(np.int64)
        assert DataType.BOOL.numpy_dtype == np.dtype(np.bool_)
        assert DataType.BLOB.numpy_dtype == np.dtype(object)


class TestDates:
    def test_parse_iso(self):
        assert parse_date("2021-01-01") == parse_date("2021-1-1")

    def test_parse_loose_form_from_paper(self):
        # The paper writes '2021-1-31'.
        assert parse_date("2021-1-31") == parse_date("2021-01-31")

    def test_roundtrip(self):
        ordinal = parse_date("2021-06-15")
        assert format_date(ordinal) == "2021-06-15"

    def test_ordering(self):
        assert parse_date("2021-01-01") < parse_date("2021-01-31")

    def test_datetime_suffix_ignored(self):
        assert parse_date("2021-01-01 12:00:00") == parse_date("2021-01-01")

    def test_invalid_raises(self):
        with pytest.raises(StorageError):
            parse_date("not-a-date")
        with pytest.raises(StorageError):
            parse_date("2021-13-45")


class TestSchema:
    def test_positions_case_insensitive(self):
        schema = Schema.of(("TransID", DataType.INT64), ("meter", DataType.FLOAT64))
        assert schema.position_of("transid") == 0
        assert schema.position_of("METER") == 1

    def test_contains(self):
        schema = Schema.of(("a", DataType.INT64))
        assert "A" in schema
        assert "b" not in schema

    def test_duplicate_name_rejected(self):
        with pytest.raises(StorageError):
            Schema.of(("a", DataType.INT64), ("A", DataType.FLOAT64))

    def test_unknown_column_raises(self):
        schema = Schema.of(("a", DataType.INT64))
        with pytest.raises(StorageError):
            schema.position_of("missing")

    def test_invalid_column_name_rejected(self):
        with pytest.raises(StorageError):
            ColumnSpec("bad name", DataType.INT64)
        with pytest.raises(StorageError):
            ColumnSpec("", DataType.INT64)

    def test_iteration_preserves_order(self):
        schema = Schema.of(
            ("x", DataType.INT64),
            ("y", DataType.FLOAT64),
            ("z", DataType.STRING),
        )
        assert schema.column_names == ["x", "y", "z"]
        assert len(schema) == 3

    def test_equality(self):
        a = Schema.of(("x", DataType.INT64))
        b = Schema.of(("x", DataType.INT64))
        c = Schema.of(("x", DataType.FLOAT64))
        assert a == b
        assert a != c
