"""Hash index construction and probing."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import Column
from repro.storage.index import HashIndex
from repro.storage.schema import DataType


class TestNumericIndex:
    def test_lookup(self):
        column = Column.from_values("k", DataType.INT64, [5, 3, 5, 1, 5])
        index = HashIndex("t", column)
        assert sorted(index.lookup(5).tolist()) == [0, 2, 4]
        assert index.lookup(3).tolist() == [1]
        assert index.lookup(99).tolist() == []

    def test_num_keys(self):
        column = Column.from_values("k", DataType.INT64, [1, 1, 2])
        assert HashIndex("t", column).num_keys == 2

    def test_contains(self):
        column = Column.from_values("k", DataType.INT64, [1])
        index = HashIndex("t", column)
        assert 1 in index
        assert 2 not in index

    def test_numpy_scalar_keys_normalized(self):
        column = Column.from_values("k", DataType.INT64, [1, 2])
        index = HashIndex("t", column)
        assert index.lookup(np.int64(2)).tolist() == [1]

    def test_probe_many(self):
        column = Column.from_values("k", DataType.INT64, [10, 20, 10])
        index = HashIndex("t", column)
        probes, matches = index.probe_many(np.array([10, 30, 20]))
        pairs = sorted(zip(probes.tolist(), matches.tolist()))
        assert pairs == [(0, 0), (0, 2), (2, 1)]

    def test_empty_column(self):
        column = Column.empty("k", DataType.INT64)
        index = HashIndex("t", column)
        assert index.num_keys == 0
        assert index.lookup(1).tolist() == []


class TestStringIndex:
    def test_lookup(self):
        column = Column.from_values("k", DataType.STRING, ["a", "b", "a"])
        index = HashIndex("t", column)
        assert index.lookup("a").tolist() == [0, 2]


class TestRestrictions:
    def test_blob_rejected(self):
        column = Column.from_values("k", DataType.BLOB, [np.zeros(1)])
        with pytest.raises(StorageError):
            HashIndex("t", column)
