"""Durable storage round-trips."""

import numpy as np
import pytest

from repro.engine import Database
from repro.errors import StorageError
from repro.storage.persist import load_database, save_database


@pytest.fixture()
def populated_db():
    db = Database()
    db.create_table_from_dict(
        "t",
        {
            "a": [1, 2, 3],
            "v": [1.5, 2.5, 3.5],
            "s": ["x", "y", "z"],
            "flag": [True, False, True],
        },
    )
    db.catalog.create_index("t", "a")
    frames = [np.full((2, 2), float(i)) for i in range(3)]
    db.create_table_from_dict("media", {"id": [0, 1, 2], "kf": frames})
    return db


class TestRoundTrip:
    def test_tables_and_data(self, populated_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        assert save_database(populated_db, directory) == 2

        fresh = Database()
        assert load_database(fresh, directory) == 2
        assert fresh.query("SELECT a, v, s, flag FROM t ORDER BY a") == (
            populated_db.query("SELECT a, v, s, flag FROM t ORDER BY a")
        )

    def test_blob_columns(self, populated_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        fresh = Database()
        load_database(fresh, directory)
        keyframe = fresh.table("media").column("kf")[2]
        assert np.allclose(keyframe, 2.0)

    def test_indexes_rebuilt(self, populated_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        fresh = Database()
        load_database(fresh, directory)
        assert fresh.catalog.get_index("t", "a") is not None

    def test_date_columns(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE d (id Int64, stamp Date)")
        db.execute(
            "INSERT INTO d VALUES (1, '2021-01-05'), (2, '2021-06-09')"
        )
        directory = str(tmp_path / "dates")
        save_database(db, directory)
        fresh = Database()
        load_database(fresh, directory)
        rows = fresh.query("SELECT id FROM d WHERE stamp < '2021-02-01'")
        assert rows == [(1,)]

    def test_temp_tables_skipped(self, populated_db, tmp_path):
        populated_db.execute("CREATE TEMP TABLE scratch AS SELECT a FROM t")
        directory = str(tmp_path / "dbdir")
        assert save_database(populated_db, directory) == 2

    def test_queries_after_reload(self, populated_db, tmp_path):
        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        fresh = Database()
        load_database(fresh, directory)
        assert fresh.execute(
            "SELECT sum(a) FROM t WHERE flag = TRUE"
        ).scalar() == 4


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        fresh = Database()
        with pytest.raises(StorageError, match="manifest"):
            load_database(fresh, str(tmp_path / "nothing"))

    def test_bad_version(self, populated_db, tmp_path):
        import json
        import os

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StorageError, match="version"):
            load_database(Database(), directory)

    def test_duplicate_without_replace(self, populated_db, tmp_path):
        from repro.errors import CatalogError

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        with pytest.raises(CatalogError):
            load_database(populated_db, directory)
        load_database(populated_db, directory, replace=True)


class TestCrashSafety:
    def test_save_leaves_no_temp_residue(self, populated_db, tmp_path):
        import os

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        assert not [f for f in os.listdir(directory) if f.endswith(".tmp")]

    def test_interrupted_resave_keeps_old_snapshot(
        self, populated_db, tmp_path, monkeypatch
    ):
        """A crash before any atomic replace leaves the previous
        snapshot fully loadable."""
        import numpy as np

        from repro.storage import persist

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        populated_db.execute("INSERT INTO t VALUES (4, 9.5, 'w', FALSE)")

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(persist.np, "savez_compressed", explode)
        with pytest.raises(OSError):
            save_database(populated_db, directory)
        monkeypatch.setattr(persist.np, "savez_compressed", np.savez_compressed)
        fresh = Database()
        assert load_database(fresh, directory) == 2
        assert fresh.query("SELECT count(*) FROM t") == [(3,)]  # v1 data

    def test_checksum_detects_modified_archive(self, populated_db, tmp_path):
        import os

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        path = os.path.join(directory, "t.npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["col__a"] = arrays["col__a"] + 1  # silent bit-flip stand-in
        np.savez_compressed(path, **arrays)
        with pytest.raises(StorageError, match="'t'.*checksum"):
            load_database(Database(), directory)

    def test_truncated_archive_is_typed(self, populated_db, tmp_path):
        import os

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        path = os.path.join(directory, "media.npz")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])  # torn write
        with pytest.raises(StorageError, match="'media'"):
            load_database(Database(), directory)

    def test_missing_archive_is_typed(self, populated_db, tmp_path):
        import os

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        os.remove(os.path.join(directory, "media.npz"))
        with pytest.raises(StorageError, match="'media'.*missing"):
            load_database(Database(), directory)

    def test_partial_load_registers_nothing(self, populated_db, tmp_path):
        """All-or-nothing: one bad table must not leave the good ones
        half-registered in the catalog."""
        import os

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        os.remove(os.path.join(directory, "media.npz"))
        fresh = Database()
        with pytest.raises(StorageError):
            load_database(fresh, directory)
        assert fresh.catalog.table_names() == []

    def test_manifest_without_checksums_still_loads(
        self, populated_db, tmp_path
    ):
        """Backward compatibility: pre-checksum manifests load fine."""
        import json
        import os

        directory = str(tmp_path / "dbdir")
        save_database(populated_db, directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        for entry in manifest["tables"]:
            entry.pop("checksum", None)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        fresh = Database()
        assert load_database(fresh, directory) == 2


class TestWorkloadPersistence:
    def test_iot_dataset_roundtrip(self, tiny_dataset, tmp_path):
        db = Database()
        tiny_dataset.install(db)
        directory = str(tmp_path / "iot")
        save_database(db, directory)
        fresh = Database()
        load_database(fresh, directory)
        assert (
            fresh.table("video").num_rows
            == tiny_dataset.tables["video"].num_rows
        )
        count = fresh.execute(
            "SELECT count(*) FROM fabric F, video V "
            "WHERE F.transID = V.transID"
        ).scalar()
        assert count == tiny_dataset.tables["video"].num_rows
