"""Column construction, coercion and transformations."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import Column, column_from_numpy, infer_dtype
from repro.storage.schema import DataType


class TestConstruction:
    def test_from_values_int(self):
        column = Column.from_values("a", DataType.INT64, [1, 2, 3])
        assert column.data.dtype == np.int64
        assert column.to_list() == [1, 2, 3]

    def test_from_values_dates_accept_strings(self):
        column = Column.from_values(
            "d", DataType.DATE, ["2021-01-01", "2021-01-02"]
        )
        assert column.data[1] - column.data[0] == 1

    def test_from_values_bool_coerces(self):
        column = Column.from_values("b", DataType.BOOL, [1, 0, True])
        assert column.to_list() == [True, False, True]

    def test_blob_holds_arrays(self):
        frames = [np.zeros((2, 2)), np.ones((2, 2))]
        column = Column.from_values("kf", DataType.BLOB, frames)
        assert column[1].sum() == 4.0

    def test_bad_coercion_raises(self):
        with pytest.raises(StorageError):
            Column.from_values("a", DataType.INT64, ["x"])

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(StorageError):
            Column("a", DataType.INT64, np.zeros(3, dtype=np.float64))

    def test_two_dimensional_rejected(self):
        with pytest.raises(StorageError):
            Column("a", DataType.INT64, np.zeros((2, 2), dtype=np.int64))

    def test_empty(self):
        column = Column.empty("a", DataType.FLOAT64)
        assert len(column) == 0


class TestTransforms:
    def test_filter(self):
        column = Column.from_values("a", DataType.INT64, [1, 2, 3, 4])
        mask = np.array([True, False, True, False])
        assert column.filter(mask).to_list() == [1, 3]

    def test_filter_requires_bool_mask(self):
        column = Column.from_values("a", DataType.INT64, [1])
        with pytest.raises(StorageError):
            column.filter(np.array([1]))

    def test_filter_length_mismatch(self):
        column = Column.from_values("a", DataType.INT64, [1, 2])
        with pytest.raises(StorageError):
            column.filter(np.array([True]))

    def test_take(self):
        column = Column.from_values("a", DataType.INT64, [10, 20, 30])
        assert column.take(np.array([2, 0])).to_list() == [30, 10]

    def test_concat(self):
        a = Column.from_values("a", DataType.INT64, [1])
        b = Column.from_values("a", DataType.INT64, [2])
        assert a.concat(b).to_list() == [1, 2]

    def test_concat_type_mismatch(self):
        a = Column.from_values("a", DataType.INT64, [1])
        b = Column.from_values("a", DataType.FLOAT64, [2.0])
        with pytest.raises(StorageError):
            a.concat(b)

    def test_rename(self):
        column = Column.from_values("a", DataType.INT64, [1])
        assert column.rename("b").name == "b"


class TestStats:
    def test_distinct_count_numeric(self):
        column = Column.from_values("a", DataType.INT64, [1, 1, 2, 3, 3])
        assert column.distinct_count() == 3

    def test_distinct_count_string(self):
        column = Column.from_values("s", DataType.STRING, ["x", "y", "x"])
        assert column.distinct_count() == 2

    def test_distinct_count_empty(self):
        assert Column.empty("a", DataType.INT64).distinct_count() == 0

    def test_nbytes_counts_blob_payload(self):
        small = Column.from_values("kf", DataType.BLOB, [np.zeros(1)])
        large = Column.from_values("kf", DataType.BLOB, [np.zeros(1000)])
        assert large.nbytes() > small.nbytes()


class TestInference:
    def test_infer_dtype(self):
        assert infer_dtype([1, 2]) is DataType.INT64
        assert infer_dtype([1.5]) is DataType.FLOAT64
        assert infer_dtype([True]) is DataType.BOOL
        assert infer_dtype(["x"]) is DataType.STRING
        assert infer_dtype([np.zeros(2)]) is DataType.BLOB
        assert infer_dtype([1, 2.5]) is DataType.FLOAT64

    def test_column_from_numpy(self):
        assert column_from_numpy("a", np.arange(3)).dtype is DataType.INT64
        assert (
            column_from_numpy("a", np.zeros(3)).dtype is DataType.FLOAT64
        )
        assert (
            column_from_numpy("a", np.zeros(3, dtype=bool)).dtype
            is DataType.BOOL
        )
