"""Table behaviour: construction, relational primitives, mutation."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.schema import DataType, Schema
from repro.storage.table import Table


@pytest.fixture()
def table():
    return Table.from_dict(
        "t", {"a": [1, 2, 3], "b": [1.0, 2.0, 3.0], "s": ["x", "y", "z"]}
    )


class TestConstruction:
    def test_from_rows(self):
        schema = Schema.of(("a", DataType.INT64), ("s", DataType.STRING))
        table = Table.from_rows("t", schema, [(1, "x"), (2, "y")])
        assert table.num_rows == 2
        assert table.column("s").to_list() == ["x", "y"]

    def test_from_dict_infers_types(self, table):
        assert table.schema.dtype_of("a") is DataType.INT64
        assert table.schema.dtype_of("b") is DataType.FLOAT64
        assert table.schema.dtype_of("s") is DataType.STRING

    def test_from_dict_numpy_arrays(self):
        table = Table.from_dict("t", {"a": np.arange(4)})
        assert table.schema.dtype_of("a") is DataType.INT64

    def test_ragged_columns_rejected(self):
        from repro.storage.column import Column

        a = Column.from_values("a", DataType.INT64, [1, 2])
        b = Column.from_values("b", DataType.INT64, [1])
        with pytest.raises(StorageError):
            Table("t", [a, b])

    def test_empty(self):
        schema = Schema.of(("a", DataType.INT64))
        assert Table.empty("t", schema).num_rows == 0


class TestAccess:
    def test_row_access(self, table):
        assert table.row(1) == (2, 2.0, "y")

    def test_iter_rows(self, table):
        assert len(list(table.iter_rows())) == 3

    def test_has_column_case_insensitive(self, table):
        assert table.has_column("A")
        assert not table.has_column("missing")

    def test_len(self, table):
        assert len(table) == 3


class TestRelationalPrimitives:
    def test_filter(self, table):
        filtered = table.filter(np.array([True, False, True]))
        assert filtered.column("a").to_list() == [1, 3]

    def test_take(self, table):
        taken = table.take(np.array([2, 2, 0]))
        assert taken.column("a").to_list() == [3, 3, 1]

    def test_select_columns(self, table):
        projected = table.select_columns(["s", "a"])
        assert projected.schema.column_names == ["s", "a"]

    def test_head(self, table):
        assert table.head(2).num_rows == 2

    def test_rename(self, table):
        assert table.rename("u").name == "u"


class TestMutation:
    def test_append_rows(self, table):
        table.append_rows([(4, 4.0, "w")])
        assert table.num_rows == 4
        assert table.row(3) == (4, 4.0, "w")

    def test_append_rows_width_mismatch(self, table):
        with pytest.raises(StorageError):
            table.append_rows([(1, 2.0)])

    def test_append_table(self, table):
        other = Table.from_dict("t2", {"a": [9], "b": [9.0], "s": ["q"]})
        table.append_table(other)
        assert table.num_rows == 4

    def test_append_table_schema_mismatch(self, table):
        other = Table.from_dict("t2", {"a": [9]})
        with pytest.raises(StorageError):
            table.append_table(other)

    def test_replace_column(self, table):
        table.replace_column("a", np.array([7, 8, 9], dtype=np.int64))
        assert table.column("a").to_list() == [7, 8, 9]

    def test_replace_column_casts(self, table):
        table.replace_column("a", np.array([7.0, 8.0, 9.0]))
        assert table.column("a").data.dtype == np.int64

    def test_snapshot_isolation_of_slices(self, table):
        head = table.head(3)
        table.append_rows([(4, 4.0, "w")])
        assert head.num_rows == 3  # earlier slice unaffected
