"""Self attention, LSTM and GRU — Table II's 'Unsupported' operators.

They run in the tensor framework (serving sequence models through the
DB-UDF / DB-PyTorch strategies) but DL2SQL refuses to compile them.
"""

import numpy as np
import pytest

from repro.core import compile_model
from repro.errors import CompileError, TensorError
from repro.tensor import GRU, LSTM, Model, SelfAttention
from repro.tensor import functional as F


@pytest.fixture()
def sequence():
    return np.random.default_rng(0).normal(size=(6, 4))  # [T=6, D=4]


class TestSelfAttention:
    def test_shapes(self, sequence):
        layer = SelfAttention(4, 3)
        out = layer.forward(sequence)
        assert out.shape == (6, 3)
        assert layer.output_shape((6, 4)) == (6, 3)

    def test_rows_are_convex_combinations(self, sequence):
        """Attention weights form a distribution per token: with identity
        value projection, each output row lies in the convex hull of the
        inputs."""
        layer = SelfAttention(4, 4)
        layer.w_value = np.eye(4)
        out = layer.forward(sequence)
        assert out.min() >= sequence.min() - 1e-9
        assert out.max() <= sequence.max() + 1e-9

    def test_wrong_rank_rejected(self):
        with pytest.raises(TensorError):
            SelfAttention(4).forward(np.zeros((2, 3, 4)))

    def test_wrong_width_rejected(self):
        with pytest.raises(TensorError):
            SelfAttention(4).output_shape((6, 5))

    def test_parameters(self):
        assert SelfAttention(4, 3).num_parameters() == 3 * 12


class TestLstm:
    def test_final_hidden_shape(self, sequence):
        layer = LSTM(4, 5)
        out = layer.forward(sequence)
        assert out.shape == (5,)
        assert layer.output_shape((6, 4)) == (5,)

    def test_hidden_state_bounded(self, sequence):
        """h = o * tanh(c) keeps every unit in (-1, 1)."""
        out = LSTM(4, 8).forward(sequence * 10)
        assert np.all(np.abs(out) < 1.0)

    def test_order_matters(self, sequence):
        layer = LSTM(4, 5)
        forward = layer.forward(sequence)
        backward = layer.forward(sequence[::-1])
        assert not np.allclose(forward, backward)

    def test_parameter_count(self):
        layer = LSTM(4, 5)
        assert layer.num_parameters() == 4 * 5 * 4 + 4 * 5 * 5 + 2 * 4 * 5

    def test_zero_forget_bias_default(self, sequence):
        layer = LSTM(4, 5)
        assert np.all(layer.b_ih == 0)


class TestGru:
    def test_final_hidden_shape(self, sequence):
        layer = GRU(4, 5)
        assert layer.forward(sequence).shape == (5,)

    def test_hidden_bounded(self, sequence):
        out = GRU(4, 8).forward(sequence * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_differs_from_lstm(self, sequence):
        rng = np.random.default_rng(1)
        assert not np.allclose(
            GRU(4, 5, rng=rng).forward(sequence),
            LSTM(4, 5, rng=np.random.default_rng(1)).forward(sequence),
        )

    def test_functional_matches_layer(self, sequence):
        layer = GRU(4, 5)
        direct = F.gru_forward(
            sequence, layer.w_ih, layer.w_hh, layer.b_ih, layer.b_hh
        )
        assert np.allclose(layer.forward(sequence), direct)


class TestDl2SqlRejection:
    def test_self_attention_rejected_with_table2_message(self):
        model = Model("sa", (6, 4), [SelfAttention(4)])
        with pytest.raises(CompileError, match="Table II"):
            compile_model(model)

    def test_lstm_rejected(self):
        model = Model("lstm", (6, 4), [LSTM(4, 5)])
        with pytest.raises(CompileError, match="Unsupported"):
            compile_model(model)

    def test_gru_rejected(self):
        model = Model("gru", (6, 4), [GRU(4, 5)])
        with pytest.raises(CompileError, match="DB-UDF or DB-PyTorch"):
            compile_model(model)

    def test_sequence_model_runs_in_tensor_framework(self, sequence):
        """The strategies that treat models as black boxes still serve
        sequence models — exactly Table II's point."""
        from repro.tensor.layers import Linear, Softmax

        model = Model(
            "seq",
            (6, 4),
            [LSTM(4, 5), Linear(5, 3), Softmax()],
            class_labels=["a", "b", "c"],
        )
        out = model.forward(sequence)
        assert out.shape == (3,)
        assert out.sum() == pytest.approx(1.0)

    def test_sequence_model_serializes(self, sequence):
        """DB-UDF's pathway: blob round-trip of a sequence model."""
        from repro.tensor.layers import Linear
        from repro.tensor.serialize import deserialize_model, serialize_model

        model = Model("seq2", (6, 4), [GRU(4, 5), Linear(5, 2)])
        clone = deserialize_model(serialize_model(model))
        assert np.allclose(clone.forward(sequence), model.forward(sequence))
