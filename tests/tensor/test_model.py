"""Model composition and prediction API."""

import numpy as np
import pytest

from repro.errors import TensorError
from repro.tensor import Conv2d, Flatten, Linear, Model, ReLU, Softmax


@pytest.fixture()
def model():
    rng = np.random.default_rng(0)
    return Model(
        "m",
        (1, 4, 4),
        [
            Conv2d(1, 2, 3, padding=1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(32, 3, rng=rng),
            Softmax(),
        ],
        class_labels=["a", "b", "c"],
    )


class TestModel:
    def test_shapes_validated_on_construction(self):
        with pytest.raises(TensorError):
            Model("bad", (1, 4, 4), [Linear(5, 2)])

    def test_output_shape(self, model):
        assert model.output_shape == (3,)

    def test_forward_checks_input(self, model):
        with pytest.raises(TensorError):
            model.forward(np.zeros((1, 5, 5)))

    def test_forward_probabilities(self, model):
        out = model.forward(np.zeros((1, 4, 4)))
        assert out.shape == (3,)
        assert out.sum() == pytest.approx(1.0)

    def test_predict_label(self, model):
        x = np.random.default_rng(1).normal(size=(1, 4, 4))
        label = model.predict_label(x)
        assert label in ("a", "b", "c")
        assert label == model.class_labels[model.predict_class(x)]

    def test_predict_label_without_labels(self):
        bare = Model("m2", (4,), [Linear(4, 2)])
        assert bare.predict_label(np.zeros(4)) in ("0", "1")

    def test_forward_batch(self, model):
        batch = [np.zeros((1, 4, 4)) for _ in range(3)]
        out = model.forward_batch(batch)
        assert out.shape == (3, 3)

    def test_predict_labels(self, model):
        batch = [np.zeros((1, 4, 4)) for _ in range(2)]
        assert len(model.predict_labels(batch)) == 2

    def test_num_parameters(self, model):
        expected = (2 * 1 * 3 * 3 + 2) + (3 * 32 + 3)
        assert model.num_parameters() == expected

    def test_layer_shapes(self, model):
        triples = model.layer_shapes()
        assert triples[0][1] == (1, 4, 4)
        assert triples[-1][2] == (3,)
        assert len(triples) == 5

    def test_determinism(self, model):
        x = np.random.default_rng(2).normal(size=(1, 4, 4))
        assert np.array_equal(model.forward(x), model.forward(x))
