"""Calibration histograms and distillation."""

import numpy as np
import pytest

from repro.errors import TensorError
from repro.tensor import Conv2d, Flatten, Model, build_resnet, build_student_cnn
from repro.tensor.train import (
    calibrate_class_histogram,
    class_probabilities,
    distill_linear_head,
)


@pytest.fixture()
def samples():
    rng = np.random.default_rng(0)
    return [rng.normal(size=(1, 16, 16)) for _ in range(48)]


class TestHistogram:
    def test_counts_sum_to_samples(self, samples):
        model = build_student_cnn(num_classes=4)
        histogram = calibrate_class_histogram(model, samples)
        assert sum(histogram.values()) == len(samples)

    def test_all_classes_present_as_keys(self, samples):
        model = build_student_cnn(num_classes=4)
        histogram = calibrate_class_histogram(model, samples)
        assert set(histogram) == {0, 1, 2, 3}

    def test_probabilities_eq10(self):
        probabilities = class_probabilities({0: 3, 1: 1})
        assert probabilities[0] == 0.75
        assert probabilities[1] == 0.25
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_probabilities_empty_histogram_uniform(self):
        probabilities = class_probabilities({0: 0, 1: 0})
        assert probabilities[0] == probabilities[1] == 0.5


class TestDistillation:
    def test_student_matches_teacher_predictions(self, samples):
        teacher = build_resnet(8, num_classes=4, seed=11)
        student = build_student_cnn(num_classes=4, seed=12)
        report = distill_linear_head(student, teacher, samples)
        assert report.num_samples == len(samples)
        # Logit matching on the training samples should transfer most of
        # the teacher's decision surface.
        assert report.agreement >= 0.8

    def test_distillation_changes_student(self, samples):
        teacher = build_resnet(8, num_classes=4, seed=11)
        student = build_student_cnn(num_classes=4, seed=12)
        before = student.forward(samples[0]).copy()
        distill_linear_head(student, teacher, samples)
        after = student.forward(samples[0])
        assert not np.allclose(before, after)

    def test_class_count_mismatch_rejected(self, samples):
        teacher = build_resnet(8, num_classes=3, seed=11)
        student = build_student_cnn(num_classes=4, seed=12)
        with pytest.raises(TensorError):
            distill_linear_head(student, teacher, samples)

    def test_model_without_linear_head_rejected(self, samples):
        headless = Model(
            "h", (1, 16, 16), [Conv2d(1, 2, 3, padding=1), Flatten()]
        )
        teacher = build_resnet(8, num_classes=4)
        with pytest.raises(TensorError):
            distill_linear_head(headless, teacher, samples)
