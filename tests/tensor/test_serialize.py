"""Serialization: round-trips, corruption handling, compression levels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.tensor import (
    BasicAttention,
    BatchNorm2d,
    Conv2d,
    Deconv2d,
    DenseBlock,
    Flatten,
    IdentityBlock,
    InstanceNorm2d,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    ResidualBlock,
    Softmax,
    build_resnet,
    build_student_cnn,
)
from repro.tensor.serialize import (
    deserialize_model,
    load_model,
    save_model,
    serialize_model,
    serialized_size,
)


def assert_same_outputs(a, b, shape, seed=0):
    x = np.random.default_rng(seed).normal(size=shape)
    assert np.allclose(a.forward(x), b.forward(x))


class TestRoundTrips:
    def test_student(self):
        model = build_student_cnn()
        clone = deserialize_model(serialize_model(model))
        assert_same_outputs(model, clone, model.input_shape)
        assert clone.class_labels == model.class_labels
        assert clone.name == model.name

    def test_resnet_with_blocks(self):
        model = build_resnet(7, input_shape=(1, 8, 8))
        clone = deserialize_model(serialize_model(model))
        assert_same_outputs(model, clone, (1, 8, 8))

    def test_every_layer_kind(self):
        rng = np.random.default_rng(0)
        model = Model(
            "zoo",
            (2, 8, 8),
            [
                Conv2d(2, 4, 3, padding=1, rng=rng),
                BatchNorm2d(4),
                InstanceNorm2d(4),
                ReLU(),
                IdentityBlock(
                    [Conv2d(4, 4, 3, padding=1, rng=rng), BatchNorm2d(4)]
                ),
                ResidualBlock(
                    [Conv2d(4, 8, 3, padding=1, rng=rng), BatchNorm2d(8)],
                    [Conv2d(4, 8, 1, rng=rng)],
                ),
                DenseBlock([[Conv2d(8, 2, 3, padding=1, rng=rng)]]),
                MaxPool2d(2),
                Deconv2d(10, 4, 2, stride=2, rng=rng),
                Flatten(),
                BasicAttention(4 * 8 * 8, 16, rng=rng),
                Linear(16, 4, rng=rng),
                Softmax(),
            ],
        )
        clone = deserialize_model(serialize_model(model))
        assert_same_outputs(model, clone, (2, 8, 8))

    def test_running_stats_preserved(self):
        bn = BatchNorm2d(2)
        bn.running_mean = np.array([1.0, 2.0])
        bn.running_var = np.array([0.5, 0.25])
        model = Model("bn", (2, 3, 3), [bn])
        clone = deserialize_model(serialize_model(model))
        assert_same_outputs(model, clone, (2, 3, 3))

    def test_file_roundtrip(self, tmp_path):
        model = build_student_cnn()
        path = str(tmp_path / "model.bin")
        size = save_model(model, path)
        assert size > 0
        clone = load_model(path)
        assert_same_outputs(model, clone, model.input_shape)


class TestFormat:
    def test_bad_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            deserialize_model(b"NOPE" + b"\x00" * 10)

    def test_bad_version(self):
        blob = serialize_model(build_student_cnn())
        tampered = blob[:4] + (99).to_bytes(2, "little") + blob[6:]
        with pytest.raises(SerializationError, match="version"):
            deserialize_model(tampered)

    def test_corrupt_payload(self):
        blob = serialize_model(build_student_cnn())
        tampered = blob[:10] + bytes([blob[10] ^ 0xFF]) + blob[11:]
        with pytest.raises(SerializationError):
            deserialize_model(tampered)

    def test_compression_levels_ordered(self):
        model = build_resnet(8, input_shape=(1, 12, 12))
        light = serialized_size(model, compression_level=1)
        heavy = serialized_size(model, compression_level=9)
        assert heavy <= light


@given(
    channels=st.tuples(
        st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)
    ),
    classes=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_roundtrip_property(channels, classes, seed):
    model = build_student_cnn(
        input_shape=(1, 8, 8),
        num_classes=classes,
        channels=channels,
        seed=seed,
    )
    clone = deserialize_model(serialize_model(model))
    x = np.random.default_rng(seed).normal(size=(1, 8, 8))
    assert np.allclose(model.forward(x), clone.forward(x))
