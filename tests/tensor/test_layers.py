"""Layer objects: shape propagation, parameters, block composition."""

import numpy as np
import pytest

from repro.errors import TensorError
from repro.tensor import (
    AvgPool2d,
    BasicAttention,
    BatchNorm2d,
    Conv2d,
    Deconv2d,
    DenseBlock,
    Flatten,
    IdentityBlock,
    InstanceNorm2d,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    Softmax,
)


class TestShapePropagation:
    def test_conv(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer.output_shape((3, 16, 16)) == (8, 8, 8)

    def test_conv_channel_mismatch(self):
        with pytest.raises(TensorError):
            Conv2d(3, 8, 3).output_shape((1, 16, 16))

    def test_deconv(self):
        layer = Deconv2d(4, 2, 2, stride=2)
        assert layer.output_shape((4, 3, 3)) == (2, 6, 6)

    def test_pool(self):
        assert MaxPool2d(2).output_shape((8, 6, 6)) == (8, 3, 3)
        assert AvgPool2d(3, stride=1).output_shape((8, 6, 6)) == (8, 4, 4)

    def test_identity_shapes(self):
        for layer in (BatchNorm2d(4), InstanceNorm2d(4), ReLU()):
            assert layer.output_shape((4, 5, 5)) == (4, 5, 5)

    def test_flatten_linear_softmax(self):
        assert Flatten().output_shape((2, 3, 3)) == (18,)
        assert Linear(18, 5).output_shape((18,)) == (5,)
        assert Softmax().output_shape((5,)) == (5,)

    def test_attention(self):
        assert BasicAttention(18, 6).output_shape((2, 3, 3)) == (6,)


class TestParameters:
    def test_conv_parameter_count(self):
        layer = Conv2d(3, 8, 3)
        assert layer.num_parameters() == 8 * 3 * 3 * 3 + 8

    def test_linear_parameter_count(self):
        assert Linear(10, 4).num_parameters() == 44

    def test_stateless_layers(self):
        assert ReLU().num_parameters() == 0
        assert MaxPool2d(2).num_parameters() == 0
        assert Flatten().num_parameters() == 0

    def test_bn_parameters(self):
        layer = BatchNorm2d(4)
        assert layer.num_parameters() == 8
        layer.running_mean = np.zeros(4)
        layer.running_var = np.ones(4)
        assert layer.num_parameters() == 16


class TestForward:
    def test_linear_input_size_checked(self):
        with pytest.raises(TensorError):
            Linear(4, 2).forward(np.zeros(5))

    def test_conv_forward_matches_functional(self):
        from repro.tensor import functional as F

        layer = Conv2d(1, 2, 3, padding=1, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 5, 5))
        assert np.allclose(
            layer.forward(x),
            F.conv2d(x, layer.weight, layer.bias, 1, 1),
        )

    def test_callable(self):
        x = np.array([-1.0, 1.0])
        assert ReLU()(x).tolist() == [0.0, 1.0]


class TestBlocks:
    def _main_path(self, channels):
        return [
            Conv2d(channels, channels, 3, padding=1,
                   rng=np.random.default_rng(0)),
            BatchNorm2d(channels),
        ]

    def test_identity_block(self):
        block = IdentityBlock(self._main_path(2))
        x = np.random.default_rng(2).normal(size=(2, 4, 4))
        out = block.forward(x)
        assert out.shape == x.shape
        assert (out >= 0).all()  # final ReLU

    def test_identity_block_shape_change_rejected(self):
        block = IdentityBlock([Conv2d(2, 3, 3, padding=1)])
        with pytest.raises(TensorError):
            block.output_shape((2, 4, 4))

    def test_residual_block_with_projection(self):
        main = [
            Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(0)),
            BatchNorm2d(4),
        ]
        shortcut = [Conv2d(2, 4, 1, rng=np.random.default_rng(1))]
        block = ResidualBlock(main, shortcut)
        assert block.output_shape((2, 4, 4)) == (4, 4, 4)
        x = np.random.default_rng(3).normal(size=(2, 4, 4))
        assert block.forward(x).shape == (4, 4, 4)

    def test_residual_mismatched_paths_rejected(self):
        block = ResidualBlock(
            [Conv2d(2, 4, 3, padding=1)], [Conv2d(2, 3, 1)]
        )
        with pytest.raises(TensorError):
            block.output_shape((2, 4, 4))

    def test_residual_matches_manual_computation(self):
        main = [Conv2d(1, 1, 1, rng=np.random.default_rng(5))]
        shortcut = [Conv2d(1, 1, 1, rng=np.random.default_rng(6))]
        block = ResidualBlock(main, shortcut)
        x = np.random.default_rng(7).normal(size=(1, 3, 3))
        expected = np.maximum(
            main[0].forward(x) + shortcut[0].forward(x), 0.0
        )
        assert np.allclose(block.forward(x), expected)

    def test_dense_block_concatenates_channels(self):
        stages = [
            [Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0))],
            [Conv2d(5, 2, 3, padding=1, rng=np.random.default_rng(1))],
        ]
        block = DenseBlock(stages)
        assert block.output_shape((2, 4, 4)) == (7, 4, 4)
        x = np.random.default_rng(2).normal(size=(2, 4, 4))
        out = block.forward(x)
        assert out.shape == (7, 4, 4)
        assert np.allclose(out[:2], x)  # original features preserved

    def test_dense_block_spatial_change_rejected(self):
        block = DenseBlock([[Conv2d(2, 2, 3)]])  # no padding shrinks
        with pytest.raises(TensorError):
            block.output_shape((2, 4, 4))

    def test_block_parameters_flattened(self):
        block = ResidualBlock(
            [Conv2d(1, 1, 1)], [Conv2d(1, 1, 1)]
        )
        assert block.num_parameters() == 4  # 2 weights + 2 biases
