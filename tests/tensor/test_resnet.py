"""ResNet/student builders: depth semantics, parameter growth."""

import numpy as np
import pytest

from repro.errors import TensorError
from repro.tensor import Conv2d, build_resnet, build_student_cnn
from repro.tensor.layers import IdentityBlock, ResidualBlock


def count_convs(model):
    total = 0
    for layer in model.layers:
        if isinstance(layer, Conv2d):
            total += 1
        elif isinstance(layer, ResidualBlock):
            total += sum(
                isinstance(sub, Conv2d)
                for sub in (*layer.main_path, *layer.shortcut)
            )
    return total


class TestStudent:
    def test_three_blocks(self):
        model = build_student_cnn()
        convs = [l for l in model.layers if isinstance(l, Conv2d)]
        assert len(convs) == 3

    def test_forward_runs(self):
        model = build_student_cnn(num_classes=5)
        out = model.forward(np.zeros(model.input_shape))
        assert out.shape == (5,)
        assert out.sum() == pytest.approx(1.0)

    def test_channel_count_enforced(self):
        with pytest.raises(TensorError):
            build_student_cnn(channels=(4, 4))

    def test_seed_determinism(self):
        a = build_student_cnn(seed=5)
        b = build_student_cnn(seed=5)
        x = np.random.default_rng(0).normal(size=a.input_shape)
        assert np.array_equal(a.forward(x), b.forward(x))

    def test_different_seeds_differ(self):
        a = build_student_cnn(seed=1)
        b = build_student_cnn(seed=2)
        x = np.random.default_rng(0).normal(size=a.input_shape)
        assert not np.array_equal(a.forward(x), b.forward(x))


class TestResnet:
    @pytest.mark.parametrize("depth", [3, 5, 8, 11, 14])
    def test_depth_counts_convs(self, depth):
        model = build_resnet(depth, input_shape=(1, 8, 8))
        # Depth counts main-pathway convolutions: the stem plus two per
        # block plus the odd tail; projection shortcuts are extra.
        main_convs = 0
        for layer in model.layers:
            if isinstance(layer, Conv2d):
                main_convs += 1
            elif isinstance(layer, (ResidualBlock, IdentityBlock)):
                main_convs += sum(
                    isinstance(sub, Conv2d) for sub in layer.main_path
                )
        assert main_convs == depth

    def test_parameters_grow_monotonically(self):
        params = [
            build_resnet(d, input_shape=(1, 8, 8)).num_parameters()
            for d in (5, 10, 15, 20, 25)
        ]
        assert params == sorted(params)

    def test_near_linear_growth_after_cap(self):
        """Table VI's near-linear parameter growth once channels cap."""
        params = {
            d: build_resnet(d, input_shape=(1, 16, 16)).num_parameters()
            for d in (25, 30, 35, 40)
        }
        step1 = params[30] - params[25]
        step2 = params[35] - params[30]
        step3 = params[40] - params[35]
        assert step1 == step2 == step3

    def test_forward_runs(self):
        model = build_resnet(7, input_shape=(1, 8, 8), num_classes=3)
        out = model.forward(np.zeros((1, 8, 8)))
        assert out.shape == (3,)
        assert out.sum() == pytest.approx(1.0)

    def test_too_shallow_rejected(self):
        with pytest.raises(TensorError):
            build_resnet(2)

    def test_name_defaults(self):
        assert build_resnet(5).name == "resnet5"
        assert build_resnet(5, name="custom").name == "custom"

    def test_class_labels_attached(self):
        model = build_resnet(5, class_labels=["x", "y", "z", "w"])
        assert model.class_labels == ["x", "y", "z", "w"]
