"""Numerical correctness of the forward-pass kernels."""

import numpy as np
import pytest

from repro.errors import TensorError
from repro.tensor import functional as F


class TestConvOutputSize:
    def test_paper_equation3(self):
        # H_out = (H_in + 2p - k)/s + 1
        assert F.conv_output_size(5, 3, 2, 0) == 2
        assert F.conv_output_size(16, 3, 1, 1) == 16
        assert F.conv_output_size(8, 2, 2, 0) == 4

    def test_collapse_rejected(self):
        with pytest.raises(TensorError):
            F.conv_output_size(2, 5, 1, 0)


class TestConv2d:
    def test_identity_kernel(self):
        x = np.arange(9.0).reshape(1, 3, 3)
        w = np.zeros((1, 1, 1, 1))
        w[0, 0, 0, 0] = 1.0
        assert np.allclose(F.conv2d(x, w), x)

    def test_known_values(self):
        x = np.ones((1, 3, 3))
        w = np.ones((1, 1, 2, 2))
        out = F.conv2d(x, w)
        assert out.shape == (1, 2, 2)
        assert np.allclose(out, 4.0)

    def test_against_direct_computation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(x, w, stride=2, padding=1)
        padded = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        for oc in range(3):
            for oy in range(out.shape[1]):
                for ox in range(out.shape[2]):
                    window = padded[:, oy * 2 : oy * 2 + 3, ox * 2 : ox * 2 + 3]
                    expected = (window * w[oc]).sum()
                    assert out[oc, oy, ox] == pytest.approx(expected)

    def test_bias(self):
        x = np.zeros((1, 2, 2))
        w = np.zeros((2, 1, 1, 1))
        out = F.conv2d(x, w, bias=np.array([1.0, -1.0]))
        assert np.allclose(out[0], 1.0) and np.allclose(out[1], -1.0)

    def test_channel_mismatch(self):
        with pytest.raises(TensorError):
            F.conv2d(np.zeros((2, 3, 3)), np.zeros((1, 1, 2, 2)))

    def test_rectangular_kernel_rejected(self):
        with pytest.raises(TensorError):
            F.conv2d(np.zeros((1, 4, 4)), np.zeros((1, 1, 2, 3)))


class TestIm2col:
    def test_matches_paper_figure3_layout(self):
        """5x5 input, 3x3 kernel, stride 2 -> 4 sub-matrices of 9 slots."""
        x = np.arange(25.0).reshape(1, 5, 5)
        columns, out_h, out_w = F.im2col(x, 3, 2, 0)
        assert (out_h, out_w) == (2, 2)
        assert columns.shape == (9, 4)
        # First placement = top-left 3x3 window, row-major.
        assert columns[:, 0].tolist() == [0, 1, 2, 5, 6, 7, 10, 11, 12]


class TestDeconv:
    def test_inverse_of_stride1_shapes(self):
        x = np.ones((1, 3, 3))
        w = np.ones((1, 2, 2, 2))
        out = F.deconv2d(x, w)
        assert out.shape == (2, 4, 4)
        # Center cells receive 4 overlapping contributions.
        assert out[0, 1, 1] == pytest.approx(4.0)
        assert out[0, 0, 0] == pytest.approx(1.0)

    def test_stride_spreads(self):
        x = np.ones((1, 2, 2))
        w = np.ones((1, 1, 2, 2))
        out = F.deconv2d(x, w, stride=2)
        assert out.shape == (1, 4, 4)
        assert np.allclose(out, 1.0)


class TestPooling:
    def test_max(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        assert F.max_pool2d(x, 2)[0, 0, 0] == 4.0

    def test_avg(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        assert F.avg_pool2d(x, 2)[0, 0, 0] == 2.5

    def test_stride_defaults_to_kernel(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        assert F.max_pool2d(x, 2).shape == (1, 2, 2)

    def test_overlapping_stride(self):
        x = np.arange(16.0).reshape(1, 4, 4)
        assert F.max_pool2d(x, 2, stride=1).shape == (1, 3, 3)


class TestNormalization:
    def test_batch_norm_standardizes(self):
        rng = np.random.default_rng(1)
        x = rng.normal(5.0, 3.0, size=(2, 8, 8))
        out = F.batch_norm(x)
        assert np.allclose(out.mean(axis=(1, 2)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(1, 2)), 1.0, atol=1e-2)

    def test_batch_norm_running_stats(self):
        x = np.full((1, 2, 2), 10.0)
        out = F.batch_norm(
            x, mean=np.array([10.0]), var=np.array([4.0]), eps=0.0
        )
        assert np.allclose(out, 0.0)

    def test_gamma_beta(self):
        x = np.zeros((1, 2, 2))
        out = F.batch_norm(
            x,
            mean=np.array([0.0]),
            var=np.array([1.0]),
            gamma=np.array([2.0]),
            beta=np.array([3.0]),
            eps=0.0,
        )
        assert np.allclose(out, 3.0)

    def test_instance_norm_is_input_stat_bn(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 4, 4))
        assert np.allclose(F.instance_norm(x), F.batch_norm(x))


class TestActivationsAndHeads:
    def test_relu(self):
        assert F.relu(np.array([-1.0, 0.0, 2.0])).tolist() == [0.0, 0.0, 2.0]

    def test_linear(self):
        w = np.array([[1.0, 2.0], [0.0, 1.0]])
        out = F.linear(np.array([3.0, 4.0]), w, bias=np.array([1.0, 0.0]))
        assert out.tolist() == [12.0, 4.0]

    def test_softmax_sums_to_one(self):
        out = F.softmax(np.array([1.0, 2.0, 3.0]))
        assert out.sum() == pytest.approx(1.0)
        assert np.argmax(out) == 2

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(np.array([1000.0, 1001.0]))
        assert np.isfinite(out).all()

    def test_basic_attention_shape(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8,))
        w = rng.normal(size=(4, 8))
        out = F.basic_attention(x, w, w, w)
        assert out.shape == (4,)
