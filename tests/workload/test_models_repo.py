"""Model repository: task construction, roles, distillation wiring."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.models_repo import (
    ROLE_LABELS,
    ROLES,
    ModelRepository,
    build_repository,
    build_task,
)


class TestBuildTask:
    def test_detect_task_properties(self, detect_task):
        assert detect_task.role == "detect"
        assert detect_task.class_labels == list(ROLE_LABELS["detect"])
        assert detect_task.blob[:4] == b"RPRO"
        assert detect_task.compiled.model_name == detect_task.student.name

    def test_histogram_covers_samples(self, detect_task):
        assert sum(detect_task.histogram.values()) == 24  # calibration size

    def test_student_distilled_from_teacher(self, tiny_dataset):
        task = build_task(tiny_dataset, "classify", task_index=9,
                          calibration_samples=24)
        samples = tiny_dataset.sample_keyframes(24, seed=9)
        agreement = sum(
            task.student.predict_class(s) == task.teacher.predict_class(s)
            for s in samples
        ) / len(samples)
        assert agreement >= 0.7

    def test_unknown_role_rejected(self, tiny_dataset):
        with pytest.raises(WorkloadError):
            build_task(tiny_dataset, "nonsense")

    def test_blob_roundtrips_to_equivalent_model(self, detect_task):
        from repro.tensor.serialize import deserialize_model

        clone = deserialize_model(detect_task.blob)
        x = np.zeros(detect_task.student.input_shape)
        assert np.allclose(
            clone.forward(x), detect_task.student.forward(x)
        )


class TestRepository:
    def test_build_repository_cycles_roles(self, tiny_dataset):
        repo = build_repository(tiny_dataset, num_tasks=5,
                                calibration_samples=8)
        assert len(repo) == 5
        assert [t.role for t in repo.tasks] == [
            ROLES[i % len(ROLES)] for i in range(5)
        ]

    def test_by_role(self, tiny_repository):
        assert len(tiny_repository.by_role("detect")) == 1
        assert tiny_repository.by_role("nothing") == []

    def test_pick_deterministic_single(self, tiny_repository):
        assert tiny_repository.pick("detect").role == "detect"

    def test_pick_missing_role_raises(self, tiny_repository):
        with pytest.raises(WorkloadError):
            tiny_repository.pick("type")

    def test_pick_random_among_candidates(self, tiny_dataset):
        repo = build_repository(tiny_dataset, num_tasks=8,
                                calibration_samples=8)
        rng = np.random.default_rng(0)
        picked = {repo.pick("detect", rng).name for _ in range(10)}
        assert len(picked) == 2  # tasks 0 and 4 are both detect
