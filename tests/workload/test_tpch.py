"""TPC-H workload: generator invariants and query-suite correctness."""

import numpy as np
import pytest

from repro.engine import Database
from repro.errors import WorkloadError
from repro.obs.metrics import MetricsRegistry
from repro.storage.partition import PartitionedTable
from repro.workload.tpch import (
    TPCH_QUERIES,
    TpchConfig,
    generate_tpch,
)

CONFIG = TpchConfig(scale_factor=0.005, partition_rows=1024)


@pytest.fixture(scope="module")
def data():
    return generate_tpch(CONFIG)


@pytest.fixture(scope="module")
def db(data):
    database = Database()
    data.install(database)
    return database


class TestGenerator:
    def test_tables_are_partitioned(self, data):
        assert set(data.tables) == {
            "region", "nation", "supplier", "part", "customer", "orders",
            "lineitem",
        }
        for table in data.tables.values():
            assert isinstance(table, PartitionedTable)
        assert data.tables["lineitem"].num_partitions > 1

    def test_sizes_scale(self, data):
        assert data.tables["orders"].num_rows == 7_500
        assert data.tables["customer"].num_rows == 750
        assert data.tables["nation"].num_rows == 25
        assert data.tables["region"].num_rows == 5
        # ~4 lineitems per order
        assert data.tables["lineitem"].num_rows > 2 * 7_500

    def test_deterministic(self):
        a = generate_tpch(CONFIG)
        b = generate_tpch(CONFIG)
        left = a.tables["lineitem"].column("l_extendedprice").data
        right = b.tables["lineitem"].column("l_extendedprice").data
        assert np.array_equal(left, right)

    def test_orderdates_are_clustered(self, data):
        dates = data.tables["orders"].column("o_orderdate").data
        assert np.all(np.diff(dates) >= 0)

    def test_referential_integrity(self, data):
        orders = data.tables["orders"]
        lineitem = data.tables["lineitem"]
        n_orders = orders.num_rows
        assert int(lineitem.column("l_orderkey").data.max()) < n_orders
        assert int(
            data.tables["customer"].column("c_nationkey").data.max()
        ) < 25

    def test_scale_factor_validated(self):
        with pytest.raises(WorkloadError):
            TpchConfig(scale_factor=0.0).table_sizes()
        with pytest.raises(WorkloadError):
            TpchConfig(scale_factor=1.5).table_sizes()

    def test_install_isolates_mutations(self, data):
        one = Database()
        two = Database()
        data.install(one)
        data.install(two)
        one.execute("UPDATE region SET r_name = 'X' WHERE r_regionkey = 0")
        assert two.query(
            "SELECT r_name FROM region WHERE r_regionkey = 0"
        ) == [("AFRICA",)]


class TestQuerySuite:
    @pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
    def test_query_runs_and_returns_rows(self, db, name):
        result = db.query(TPCH_QUERIES[name])
        if name in ("q6", "q14"):
            assert result[0][0] is not None  # single aggregate row
        elif name == "paging":
            assert len(result) == 20
        else:
            assert len(result) > 0

    def test_q6_prunes_partitions(self, data):
        metrics = MetricsRegistry()
        database = Database(metrics=metrics)
        data.install(database)
        database.query(TPCH_QUERIES["q1"])  # near-full scan baseline
        full = metrics._metrics["partitions_scanned_total"].to_dict()["value"]
        database.query(TPCH_QUERIES["q6"])
        selective = (
            metrics._metrics["partitions_scanned_total"].to_dict()["value"]
            - full
        )
        total = data.tables["lineitem"].num_partitions
        assert selective < total  # zone maps skipped partitions
        assert metrics._metrics["partitions_pruned_total"].to_dict()[
            "value"
        ] > 0

    def test_suite_completes_under_budget_with_spill(self, data):
        metrics = MetricsRegistry()
        # Smaller than lineitem's resident footprint (so a monolithic
        # materialization could not fit) but above the largest single
        # join output at this scale — admission is per-materialization.
        lineitem_bytes = data.tables["lineitem"].nbytes()
        database = Database(
            metrics=metrics,
            query_memory_bytes=int(lineitem_bytes * 0.9),
        )
        data.install(database)
        for sql in TPCH_QUERIES.values():
            database.query(sql)
        assert metrics._metrics["join_spill_partitions_total"].to_dict()[
            "value"
        ] > 0
