"""Synthetic IoT dataset: structure, ratios, determinism, selectivity."""

import datetime

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.dataset import (
    SIZE_RATIO,
    DatasetConfig,
    generate_dataset,
)


class TestStructure:
    def test_five_tables(self, tiny_dataset):
        assert set(tiny_dataset.tables) == {
            "video", "fabric", "client", "orders", "device",
        }

    def test_paper_size_ratio(self, tiny_dataset):
        sizes = [
            tiny_dataset.tables[name].num_rows
            for name in ("video", "fabric", "client", "orders", "device")
        ]
        scale = tiny_dataset.config.scale
        assert sizes == [r * scale for r in SIZE_RATIO]

    def test_video_schema(self, tiny_dataset):
        video = tiny_dataset.tables["video"]
        for column in ("videoID", "transID", "date", "keyframe", "duration"):
            assert video.has_column(column)

    def test_fabric_schema(self, tiny_dataset):
        fabric = tiny_dataset.tables["fabric"]
        for column in (
            "transID", "patternID", "pattern", "meter", "humidity",
            "temperature", "printdate",
        ):
            assert fabric.has_column(column)

    def test_referential_integrity(self, tiny_dataset):
        fabric_ids = set(
            tiny_dataset.tables["fabric"].column("transID").to_list()
        )
        for table in ("video", "orders", "device"):
            trans = tiny_dataset.tables[table].column("transID").to_list()
            assert set(trans) <= fabric_ids

    def test_keyframes_match_config_shape(self, tiny_dataset):
        keyframe = tiny_dataset.tables["video"].column("keyframe")[0]
        assert keyframe.shape == tiny_dataset.config.keyframe_shape


class TestDeterminism:
    def test_same_seed_same_data(self):
        config = DatasetConfig(scale=1, seed=5)
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert np.array_equal(
            a.tables["fabric"].column("meter").data,
            b.tables["fabric"].column("meter").data,
        )
        assert np.array_equal(a.video_classes, b.video_classes)

    def test_different_seed_differs(self):
        a = generate_dataset(DatasetConfig(scale=1, seed=1))
        b = generate_dataset(DatasetConfig(scale=1, seed=2))
        assert not np.array_equal(
            a.tables["fabric"].column("meter").data,
            b.tables["fabric"].column("meter").data,
        )


class TestClassSignal:
    def test_class_distribution_skewed(self, tiny_dataset):
        counts = np.bincount(
            tiny_dataset.video_classes,
            minlength=tiny_dataset.config.num_classes,
        )
        assert counts[0] > counts[-1]  # weights are decreasing

    def test_keyframes_carry_class_signal(self, tiny_dataset):
        """Nearest-base-pattern classification beats chance by far —
        models have something real to learn."""
        patterns = tiny_dataset.class_patterns
        keyframes = tiny_dataset.keyframes()
        correct = 0
        for keyframe, true_class in zip(keyframes, tiny_dataset.video_classes):
            distances = [
                np.linalg.norm(keyframe - pattern) for pattern in patterns
            ]
            correct += int(np.argmin(distances) == true_class)
        assert correct / len(keyframes) > 0.8

    def test_sample_keyframes_fresh_but_same_distribution(self, tiny_dataset):
        samples = tiny_dataset.sample_keyframes(16)
        assert len(samples) == 16
        assert samples[0].shape == tiny_dataset.config.keyframe_shape


class TestSelectivityControl:
    def test_date_bounds_fraction(self, tiny_dataset):
        lo, hi = tiny_dataset.date_bounds_for_selectivity(0.5)
        lo_date = datetime.date.fromisoformat(lo)
        hi_date = datetime.date.fromisoformat(hi)
        days = (hi_date - lo_date).days
        assert days == round(tiny_dataset.span_days * 0.5)

    def test_observed_selectivity_close_to_target(self):
        dataset = generate_dataset(DatasetConfig(scale=10, seed=3))
        lo, hi = dataset.date_bounds_for_selectivity(0.25)
        lo_ord = datetime.date.fromisoformat(lo).toordinal()
        hi_ord = datetime.date.fromisoformat(hi).toordinal()
        dates = dataset.tables["video"].column("date").data
        fraction = ((dates >= lo_ord) & (dates < hi_ord)).mean()
        assert fraction == pytest.approx(0.25, abs=0.07)

    def test_invalid_fraction_rejected(self, tiny_dataset):
        with pytest.raises(WorkloadError):
            tiny_dataset.date_bounds_for_selectivity(0.0)
        with pytest.raises(WorkloadError):
            tiny_dataset.date_bounds_for_selectivity(1.5)


class TestInstall:
    def test_install_registers_and_indexes(self, workload_db):
        assert workload_db.table("video").num_rows > 0
        assert workload_db.catalog.get_index("video", "transID") is not None

    def test_queries_run_after_install(self, workload_db):
        count = workload_db.execute(
            "SELECT count(*) FROM fabric F, video V WHERE F.transID = V.transID"
        ).scalar()
        assert count == workload_db.table("video").num_rows
