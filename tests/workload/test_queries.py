"""Table I query templates: parseability, structure, selectivity wiring."""

import pytest

from repro.sql.ast_nodes import SelectStatement
from repro.sql.parser import parse_statement
from repro.strategies import QueryType
from repro.workload.dataset import PATTERN_LABELS
from repro.workload.queries import QueryGenerator


@pytest.fixture()
def generator(tiny_dataset):
    return QueryGenerator(tiny_dataset)


class TestTemplates:
    @pytest.mark.parametrize("query_type", list(QueryType))
    def test_all_types_parse(self, generator, query_type):
        query = generator.make_query(query_type, 0.5)
        statement = parse_statement(query.sql)
        assert isinstance(statement, SelectStatement)
        assert query.query_type is query_type

    def test_type1_uses_classify(self, generator):
        query = generator.make_query(QueryType.INDEPENDENT, 0.5)
        assert query.udf_roles == ("classify",)
        assert "sum(F.meter)" in query.sql
        assert PATTERN_LABELS[0] in query.sql

    def test_type1_custom_label(self, generator):
        query = generator.make_query(
            QueryType.INDEPENDENT, 0.5, classify_label="Striped Pattern"
        )
        assert "Striped Pattern" in query.sql

    def test_type2_aggregates_on_udf(self, generator):
        query = generator.make_query(QueryType.DB_DEPENDS_ON_LEARNING, 0.5)
        assert "count(nUDF_detect" in query.sql
        assert "GROUP BY" in query.sql
        assert query.udf_roles == ("detect",)

    def test_type3_has_sensor_predicates(self, generator):
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5)
        assert "humidity" in query.sql
        assert "temperature" in query.sql
        assert "nUDF_detect(V.keyframe) = FALSE" in query.sql

    def test_type4_compares_udf_to_column(self, generator):
        query = generator.make_query(QueryType.INTERDEPENDENT, 0.5)
        assert "F.pattern != nUDF_recog(V.keyframe)" in query.sql
        assert query.udf_roles == ("recog",)

    def test_all_templates_join_on_transid(self, generator):
        for query_type in QueryType:
            query = generator.make_query(query_type, 0.5)
            assert "F.transID = V.transID" in query.sql


class TestSelectivityWiring:
    def test_narrower_selectivity_narrower_dates(self, generator):
        import re

        def window(query):
            dates = re.findall(r"'(\d{4}-\d{2}-\d{2})'", query.sql)
            import datetime

            parsed = [datetime.date.fromisoformat(d) for d in dates[:2]]
            return (parsed[1] - parsed[0]).days

        narrow = generator.make_query(QueryType.INDEPENDENT, 0.05)
        wide = generator.make_query(QueryType.INDEPENDENT, 0.5)
        assert window(narrow) < window(wide)


class TestMixedBenchmark:
    def test_mix_contains_all_types(self, generator):
        queries = generator.mixed_benchmark(0.5, queries_per_type=2)
        assert len(queries) == 8
        types = [q.query_type for q in queries]
        for query_type in QueryType:
            assert types.count(query_type) == 2

    def test_mix_deterministic_by_seed(self, generator):
        a = [q.sql for q in generator.mixed_benchmark(0.5, seed=3)]
        b = [q.sql for q in generator.mixed_benchmark(0.5, seed=3)]
        assert a == b
