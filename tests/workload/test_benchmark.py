"""Benchmark runner: summaries, rebinding semantics."""

import pytest

from repro.strategies import LooseStrategy, QueryType, TightStrategy
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


@pytest.fixture()
def bench(tiny_dataset, tiny_repository):
    return QueryBenchmark(tiny_dataset, tiny_repository)


class TestRunStrategy:
    def test_summary_averages(self, bench, tiny_dataset):
        generator = QueryGenerator(tiny_dataset)
        queries = [
            generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5),
            generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5),
        ]
        summary = bench.run_strategy(LooseStrategy(), queries)
        assert summary.queries == 2
        average = summary.average()
        assert average.total == pytest.approx(summary.breakdown.total / 2)

    def test_rebind_per_query_pays_loading_each_time(self, bench, tiny_dataset):
        generator = QueryGenerator(tiny_dataset)
        queries = [
            generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5)
            for _ in range(2)
        ]

        def counting(strategy):
            calls = []
            original = strategy.bind_task

            def wrapped(db, task):
                calls.append(task.name)
                return original(db, task)

            strategy.bind_task = wrapped
            return strategy, calls

        rebind_strategy, rebind_calls = counting(TightStrategy())
        bench.run_strategy(rebind_strategy, queries, rebind_per_query=True)
        persistent_strategy, persistent_calls = counting(TightStrategy())
        bench.run_strategy(
            persistent_strategy, queries, rebind_per_query=False
        )
        # Rebinding loads the model once per query; a persistent binding
        # loads it once for the whole mix (its loading amortizes to zero
        # for subsequent queries).
        assert len(rebind_calls) == 2
        assert len(persistent_calls) == 1

    def test_empty_summary(self, bench):
        summary = bench.run_strategy(LooseStrategy(), [])
        assert summary.queries == 0
        assert summary.average().total == 0.0


class TestRunMix:
    def test_mix_runs_all_strategies(self, bench):
        summaries = bench.run_mix(
            [LooseStrategy(), TightStrategy(optimized=True)],
            selectivity=0.4,
        )
        assert [s.strategy_name for s in summaries] == ["DB-UDF", "DL2SQL-OP"]
        assert all(s.queries == 4 for s in summaries)

    def test_fresh_database_isolated(self, bench):
        db1 = bench.fresh_database()
        db2 = bench.fresh_database()
        db1.execute("UPDATE fabric SET meter = 0")
        assert db2.execute("SELECT max(meter) FROM fabric").scalar() > 0
