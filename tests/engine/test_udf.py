"""UDF registry and UDF execution inside queries."""

import numpy as np
import pytest

from repro.engine import BatchUdf, Database, UdfRegistry
from repro.errors import UdfError
from repro.storage.schema import DataType


def double_udf():
    return BatchUdf(
        name="double_it",
        fn=lambda values: values * 2,
        return_dtype=DataType.FLOAT64,
    )


class TestRegistry:
    def test_register_and_contains(self):
        registry = UdfRegistry()
        registry.register(double_udf())
        assert "double_it" in registry
        assert "DOUBLE_IT" in registry  # case-insensitive

    def test_duplicate_rejected(self):
        registry = UdfRegistry()
        registry.register(double_udf())
        with pytest.raises(UdfError):
            registry.register(double_udf())
        registry.register(double_udf(), replace=True)

    def test_unknown(self):
        with pytest.raises(UdfError):
            UdfRegistry().get("missing")

    def test_invoke_records_stats(self):
        registry = UdfRegistry()
        registry.register(double_udf())
        registry.invoke("double_it", [np.arange(5, dtype=np.float64)])
        stats = registry.get("double_it").stats
        assert stats.calls == 1 and stats.rows == 5
        registry.reset_stats()
        assert registry.get("double_it").stats.calls == 0

    def test_invoke_shape_check(self):
        registry = UdfRegistry()
        registry.register(
            BatchUdf(
                name="bad",
                fn=lambda values: np.zeros(1),
                return_dtype=DataType.FLOAT64,
            )
        )
        with pytest.raises(UdfError):
            registry.invoke("bad", [np.zeros(3)])

    def test_exception_wrapped(self):
        registry = UdfRegistry()

        def boom(values):
            raise ValueError("nope")

        registry.register(
            BatchUdf(name="boom", fn=boom, return_dtype=DataType.FLOAT64)
        )
        with pytest.raises(UdfError, match="nope"):
            registry.invoke("boom", [np.zeros(1)])

    def test_neural_seconds_only_counts_neural(self):
        registry = UdfRegistry()
        registry.register(double_udf())
        neural = BatchUdf(
            name="nUDF_x",
            fn=lambda values: values,
            return_dtype=DataType.FLOAT64,
            is_neural=True,
        )
        registry.register(neural)
        registry.invoke("double_it", [np.zeros(10)])
        registry.invoke("nUDF_x", [np.zeros(10)])
        assert registry.neural_seconds() == neural.stats.seconds


class TestUdfInQueries:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.create_table_from_dict("t", {"a": [1.0, 2.0, 3.0]})
        database.register_udf(double_udf())
        return database

    def test_udf_in_select(self, db):
        rows = db.query("SELECT double_it(a) FROM t")
        assert [r[0] for r in rows] == [2.0, 4.0, 6.0]

    def test_udf_in_where(self, db):
        rows = db.query("SELECT a FROM t WHERE double_it(a) > 3")
        assert [r[0] for r in rows] == [2.0, 3.0]

    def test_string_udf(self, db):
        def labeler(values):
            out = np.empty(len(values), dtype=object)
            for i, v in enumerate(values):
                out[i] = "big" if v > 1 else "small"
            return out

        db.register_udf(
            BatchUdf(name="labeler", fn=labeler, return_dtype=DataType.STRING)
        )
        rows = db.query("SELECT a FROM t WHERE labeler(a) = 'big' ORDER BY a")
        assert [r[0] for r in rows] == [2.0, 3.0]

    def test_blob_argument_udf(self, db):
        frames = [np.full((2, 2), v) for v in (1.0, 2.0, 3.0)]
        db.create_table_from_dict("v", {"id": [1, 2, 3], "kf": frames})

        def frame_sum(keyframes):
            return np.array([kf.sum() for kf in keyframes])

        db.register_udf(
            BatchUdf(name="frame_sum", fn=frame_sum,
                     return_dtype=DataType.FLOAT64)
        )
        rows = db.query("SELECT id FROM v WHERE frame_sum(kf) >= 8")
        assert rows == [(2,), (3,)]

    def test_short_circuit_ordering_limits_udf_rows(self, db):
        """Cheap predicates run before UDF predicates (Fig. 8's eager
        placement costs candidates, not the whole table)."""
        db.udfs.reset_stats()
        db.query("SELECT a FROM t WHERE a >= 3 AND double_it(a) > 0")
        assert db.udfs.get("double_it").stats.rows == 1
