"""Optimizer behaviour: pushdown, join extraction/ordering, hint rules."""

import numpy as np
import pytest

from repro.engine import BatchUdf, Database
from repro.engine.logical import Filter, HashJoin, Scan, walk_plan
from repro.engine.optimizer import OptimizerConfig
from repro.storage.schema import DataType


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "big", {"k": list(range(100)), "bv": [float(i) for i in range(100)]}
    )
    database.create_table_from_dict(
        "small", {"k": [1, 2, 3], "sv": ["a", "b", "c"]}
    )
    return database


def plan_of(db, sql):
    return db.explain(sql).plan


class TestPushdownAndJoins:
    def test_equi_join_extracted(self, db):
        plan = plan_of(db, "SELECT bv FROM big, small WHERE big.k = small.k")
        joins = [n for n in walk_plan(plan) if isinstance(n, HashJoin)]
        assert len(joins) == 1

    def test_filter_pushed_below_join(self, db):
        plan = plan_of(
            db,
            "SELECT bv FROM big, small "
            "WHERE big.k = small.k AND big.bv > 50",
        )
        join = next(n for n in walk_plan(plan) if isinstance(n, HashJoin))
        # The bv filter must sit below the join, directly over the scan.
        below = [
            n
            for side in (join.left, join.right)
            for n in walk_plan(side)
            if isinstance(n, Filter)
        ]
        assert any("bv" in f.predicate.to_sql() for f in below)

    def test_smaller_relation_becomes_build_side(self, db):
        plan = plan_of(db, "SELECT bv FROM big, small WHERE big.k = small.k")
        join = next(n for n in walk_plan(plan) if isinstance(n, HashJoin))
        left_scans = [n for n in walk_plan(join.left) if isinstance(n, Scan)]
        assert left_scans[0].table_name == "small"

    def test_cross_join_residual_filter_kept(self, db):
        plan = plan_of(
            db, "SELECT bv FROM big, small WHERE big.bv > small.k + 10"
        )
        # Non-equi condition stays as a filter above a cross join.
        filters = [n for n in walk_plan(plan) if isinstance(n, Filter)]
        assert any(">" in f.predicate.to_sql() for f in filters)

    def test_three_way_ordering_runs(self, db):
        db.create_table_from_dict("mid", {"k": [1, 2], "mv": [0.5, 0.6]})
        rows = db.query(
            "SELECT sv FROM big, small, mid "
            "WHERE big.k = small.k AND small.k = mid.k ORDER BY sv"
        )
        assert rows == [("a",), ("b",)]

    def test_execution_matches_unoptimized_semantics(self, db):
        sql = (
            "SELECT big.k, sv FROM big, small "
            "WHERE big.k = small.k AND bv < 3 ORDER BY big.k"
        )
        assert db.query(sql) == [(1, "a"), (2, "b")]


def _register_neural(db, selectivity_true=0.05, cost=0.05):
    """A fake detect UDF with metadata the hints consume."""
    calls = {"rows": 0}

    def fn(values):
        calls["rows"] += len(values)
        return np.asarray([v > 90 for v in values], dtype=bool)

    db.register_udf(
        BatchUdf(
            name="nUDF_fake",
            fn=fn,
            return_dtype=DataType.BOOL,
            cost_per_row=cost,
            is_neural=True,
            selectivity_of=lambda label: selectivity_true,
        )
    )
    return calls


class TestHintRules:
    def test_lazy_placement_defers_expensive_udf(self, db):
        from repro.core.hints import make_op_config

        calls = _register_neural(db)
        db.optimizer_config = make_op_config(db.udfs)
        db.query(
            "SELECT bv FROM big, small "
            "WHERE big.k = small.k AND nUDF_fake(big.bv) = TRUE"
        )
        # Lazy: the UDF only sees the 3 join survivors, not 100 rows.
        assert calls["rows"] == 3

    def test_without_hints_udf_runs_eagerly(self, db):
        calls = _register_neural(db)
        db.optimizer_config = OptimizerConfig(use_hints=False)
        db.query(
            "SELECT bv FROM big, small "
            "WHERE big.k = small.k AND nUDF_fake(big.bv) = TRUE"
        )
        assert calls["rows"] == 100

    def test_udf_join_condition_uses_symmetric_join(self, db):
        from repro.core.hints import make_op_config

        _register_neural(db)
        db.optimizer_config = make_op_config(db.udfs)
        plan = plan_of(
            db,
            "SELECT sv FROM big, small WHERE nUDF_fake(big.bv) = small.k",
        )
        joins = [n for n in walk_plan(plan) if isinstance(n, HashJoin)]
        assert joins and joins[0].symmetric

    def test_udf_join_without_hints_not_symmetric(self, db):
        _register_neural(db)
        db.optimizer_config = OptimizerConfig(use_hints=False)
        plan = plan_of(
            db,
            "SELECT sv FROM big, small WHERE nUDF_fake(big.bv) = small.k",
        )
        joins = [n for n in walk_plan(plan) if isinstance(n, HashJoin)]
        assert not any(j.symmetric for j in joins)

    def test_hints_preserve_results(self, db):
        from repro.core.hints import make_op_config

        _register_neural(db)
        sql = (
            "SELECT bv FROM big, small "
            "WHERE big.k = small.k AND nUDF_fake(big.bv) = FALSE ORDER BY bv"
        )
        db.optimizer_config = OptimizerConfig(use_hints=False)
        plain = db.query(sql)
        db.optimizer_config = make_op_config(db.udfs)
        hinted = db.query(sql)
        assert plain == hinted


class TestHavingUntouched:
    def test_having_filter_not_rewritten_into_joins(self, db):
        rows = db.query(
            "SELECT k % 3, count(*) FROM big GROUP BY k % 3 "
            "HAVING count(*) > 33 ORDER BY k % 3"
        )
        assert rows == [(0, 34)]
