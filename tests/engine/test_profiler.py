"""Profiler accounting (the machinery behind Fig. 10)."""

import time

from repro.engine import Database
from repro.engine.profiler import Profiler


class TestProfiler:
    def test_measure_accumulates(self):
        profiler = Profiler()
        with profiler.measure("join") as token:
            token.record_rows(10)
            time.sleep(0.001)
        with profiler.measure("join") as token:
            token.record_rows(5)
        stats = profiler.stats["join"]
        assert stats.calls == 2
        assert stats.rows == 15
        assert stats.seconds > 0

    def test_disabled_profiler_records_nothing(self):
        profiler = Profiler(enabled=False)
        with profiler.measure("join") as token:
            token.record_rows(10)
        assert profiler.stats == {}

    def test_breakdown_sums_to_one(self):
        profiler = Profiler()
        profiler.add("scan", 0.3)
        profiler.add("join", 0.7)
        breakdown = profiler.breakdown()
        assert sum(breakdown.values()) == 1.0
        assert breakdown["join"] == 0.7

    def test_breakdown_empty(self):
        assert Profiler().breakdown() == {}

    def test_breakdown_order_is_deterministic(self):
        profiler = Profiler()
        # Insert in deliberately scrambled order.
        profiler.add("project", 0.1)
        profiler.add("zeta_custom", 0.1)
        profiler.add("scan", 0.1)
        profiler.add("alpha_custom", 0.1)
        profiler.add("join", 0.1)
        keys = list(profiler.breakdown())
        # Canonical categories first (CATEGORIES order), extras appended
        # alphabetically.
        assert keys == ["scan", "join", "project", "alpha_custom", "zeta_custom"]

    def test_registered_category_appears_at_zero(self):
        profiler = Profiler()
        profiler.register("udf")
        profiler.add("scan", 0.5)
        breakdown = profiler.breakdown()
        assert breakdown["udf"] == 0.0
        assert breakdown["scan"] == 1.0
        assert list(breakdown) == ["scan", "udf"]

    def test_breakdown_all_zero_time(self):
        profiler = Profiler()
        profiler.register("scan")
        profiler.register("join")
        assert profiler.breakdown() == {"scan": 0.0, "join": 0.0}

    def test_measure_emits_operator_span_when_traced(self):
        from repro.obs.trace import Tracer

        tracer = Tracer(enabled=True)
        profiler = Profiler(enabled=False, tracer=tracer)
        with profiler.measure("scan") as token:
            token.record_rows(4)
        span = tracer.last_trace()
        assert span.name == "operator:scan"
        assert span.attributes["rows"] == 4
        # Profiling stayed off: spans only, no stats.
        assert profiler.stats == {}

    def test_snapshot_is_a_copy(self):
        profiler = Profiler()
        profiler.add("scan", 1.0, rows=5)
        snapshot = profiler.snapshot()
        profiler.reset()
        assert snapshot["scan"].rows == 5
        assert profiler.stats == {}


class TestQueryProfiling:
    def test_query_populates_categories(self):
        db = Database()
        db.create_table_from_dict(
            "t", {"k": list(range(50)), "g": [i % 5 for i in range(50)]}
        )
        db.create_table_from_dict("s", {"k": list(range(10))})
        db.profiler.reset()
        db.query(
            "SELECT t.g, count(*) FROM t, s WHERE t.k = s.k "
            "GROUP BY t.g ORDER BY t.g"
        )
        categories = set(db.profiler.stats)
        assert {"scan", "join", "groupby", "sort", "project"} <= categories

    def test_profiler_can_be_disabled(self):
        db = Database(profile=False)
        db.create_table_from_dict("t", {"a": [1]})
        db.query("SELECT a FROM t")
        assert db.profiler.stats == {}
