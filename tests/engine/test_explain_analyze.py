"""EXPLAIN / EXPLAIN ANALYZE: SQL surface and the analyzer's output shape."""

import pytest

from repro.engine import Database
from repro.engine.analyze import (
    ExplainAnalyzeOutput,
    OperatorActuals,
    format_analysis,
)
from repro.errors import SqlError


@pytest.fixture
def db():
    database = Database()
    database.create_table_from_dict(
        "t", {"g": [1, 1, 2, 2, 3], "v": [10.0, 20.0, 30.0, 40.0, 50.0]}
    )
    return database


SQL = "SELECT g, sum(v) AS total FROM t WHERE v > 15 GROUP BY g ORDER BY g"


class TestExplainAnalyzeApi:
    def test_operators_pair_estimates_with_actuals(self, db):
        output = db.explain_analyze(SQL)
        assert isinstance(output, ExplainAnalyzeOutput)
        assert output.result_rows == 3
        assert output.total_seconds > 0
        kinds = [op.operator.split(None, 1)[0] for op in output.operators]
        assert "Scan" in kinds
        assert "Filter" in kinds
        assert "Aggregate" in kinds
        for op in output.operators:
            assert op.actual_seconds >= 0
            assert op.actual_rows >= 0
            assert op.calls >= 1
            assert op.row_qerror >= 1.0

    def test_scan_actual_rows(self, db):
        output = db.explain_analyze(SQL)
        scan = next(
            op for op in output.operators if op.operator.startswith("Scan")
        )
        assert scan.actual_rows == 5

    def test_accepts_explain_analyze_text(self, db):
        output = db.explain_analyze(f"EXPLAIN ANALYZE {SQL}")
        assert output.result_rows == 3

    def test_rejects_non_select(self, db):
        with pytest.raises(SqlError):
            db.explain_analyze("INSERT INTO t (g, v) VALUES (4, 60.0)")

    def test_max_qerror_and_to_dict(self, db):
        output = db.explain_analyze(SQL)
        assert output.max_qerror() >= 1.0
        data = output.to_dict()
        assert data["result_rows"] == 3
        assert len(data["operators"]) == len(output.operators)
        first = data["operators"][0]
        assert set(first) >= {
            "operator", "depth", "estimated_rows", "actual_rows",
            "actual_seconds", "row_qerror",
        }


class TestQError:
    def _actuals(self, estimated_rows, actual_rows):
        return OperatorActuals(
            operator="Scan t",
            depth=0,
            estimated_rows=estimated_rows,
            estimated_cost=1.0,
            actual_rows=actual_rows,
            actual_seconds=0.001,
            actual_self_seconds=0.001,
            calls=1,
        )

    def test_perfect_estimate(self):
        assert self._actuals(10, 10).row_qerror == 1.0

    def test_symmetric(self):
        assert self._actuals(100, 10).row_qerror == 10.0
        assert self._actuals(10, 100).row_qerror == 10.0

    def test_floored_at_one_row(self):
        assert self._actuals(0.0, 0).row_qerror == 1.0
        assert self._actuals(0.5, 2).row_qerror == 2.0


class TestTextFormat:
    def test_format_analysis_lines(self, db):
        output = db.explain_analyze(SQL)
        lines = output.text.splitlines()
        assert output.text == format_analysis(output)
        # Every operator line carries estimates, actuals, and a q-error.
        for line in lines[:-1]:
            assert "(est rows=" in line
            assert "(actual time=" in line
            assert "q-err=" in line
        assert lines[-1].startswith("Execution time:")
        assert "(3 rows)" in lines[-1]

    def test_depth_indentation(self, db):
        output = db.explain_analyze(SQL)
        root, child = output.operators[0], output.operators[1]
        lines = output.text.splitlines()
        assert child.depth == root.depth + 1
        assert lines[1].startswith("  " * child.depth)


class TestSqlSurface:
    def test_explain_analyze_statement_returns_plan_column(self, db):
        result = db.execute(f"EXPLAIN ANALYZE {SQL}")
        assert result.column_names == ["plan"]
        text = "\n".join(result.frame.columns[0].data)
        assert "(actual time=" in text
        assert "q-err=" in text
        assert "Execution time:" in text

    def test_plain_explain_has_no_actuals(self, db):
        result = db.execute(f"EXPLAIN {SQL}")
        text = "\n".join(result.frame.columns[0].data)
        assert "Scan" in text
        assert "actual" not in text

    def test_explain_runs_the_query_exactly_when_analyzing(self, db):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        database = Database(metrics=registry)
        database.create_table_from_dict("t", {"a": [1, 2, 3]})
        database.execute("EXPLAIN SELECT a FROM t")
        assert registry.get("rows_scanned_total") is None
        database.execute("EXPLAIN ANALYZE SELECT a FROM t")
        assert registry.get("rows_scanned_total").value == 3
