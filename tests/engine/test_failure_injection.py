"""Failure injection: errors mid-query must not corrupt database state."""

import numpy as np
import pytest

from repro.engine import BatchUdf, Database
from repro.errors import UdfError
from repro.storage.schema import DataType


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict("t", {"a": [1.0, 2.0, 3.0]})
    return database


def flaky_udf(fail_on_call: int):
    state = {"calls": 0}

    def fn(values):
        state["calls"] += 1
        if state["calls"] == fail_on_call:
            raise RuntimeError("injected failure")
        return values * 2

    return BatchUdf(name="flaky", fn=fn, return_dtype=DataType.FLOAT64)


class TestUdfFailures:
    def test_failure_propagates_as_udf_error(self, db):
        db.register_udf(flaky_udf(fail_on_call=1))
        with pytest.raises(UdfError, match="injected failure"):
            db.query("SELECT flaky(a) FROM t")

    def test_catalog_intact_after_failed_query(self, db):
        db.register_udf(flaky_udf(fail_on_call=1))
        with pytest.raises(UdfError):
            db.query("SELECT flaky(a) FROM t")
        # The base table is untouched and usable.
        assert db.query("SELECT sum(a) FROM t") == [(6.0,)]

    def test_failed_create_table_as_leaves_no_table(self, db):
        db.register_udf(flaky_udf(fail_on_call=1))
        with pytest.raises(UdfError):
            db.execute("CREATE TABLE bad AS SELECT flaky(a) FROM t")
        assert not db.catalog.has("bad")

    def test_retry_after_transient_failure_succeeds(self, db):
        db.register_udf(flaky_udf(fail_on_call=1))
        with pytest.raises(UdfError):
            db.query("SELECT flaky(a) FROM t")
        rows = db.query("SELECT flaky(a) FROM t")  # second call succeeds
        assert [r[0] for r in rows] == [2.0, 4.0, 6.0]

    def test_udf_returning_wrong_shape_rejected(self, db):
        db.register_udf(
            BatchUdf(
                name="short",
                fn=lambda values: np.zeros(max(len(values) - 1, 0)),
                return_dtype=DataType.FLOAT64,
            )
        )
        with pytest.raises(UdfError, match="shape"):
            db.query("SELECT short(a) FROM t")


class TestStrategyFailures:
    def test_corrupt_blob_rejected_at_bind(self, tiny_dataset, detect_task):
        from dataclasses import replace

        from repro.errors import SerializationError
        from repro.strategies import LooseStrategy

        corrupt = replace(detect_task, blob=b"RPRO" + b"\x01\x00garbage")
        strategy = LooseStrategy()
        with pytest.raises(SerializationError):
            strategy.bind_task(Database(), corrupt)

    def test_tight_inference_failure_leaves_clean_state(
        self, tiny_dataset, detect_task
    ):
        """If the outer query dies mid-inference, re-binding and re-running
        must still work (temp tables from the dead inference are reclaimed
        on the next run)."""
        from repro.strategies import QueryType, TightStrategy
        from repro.workload.queries import QueryGenerator

        db = Database()
        tiny_dataset.install(db)
        strategy = TightStrategy()
        strategy.bind_task(db, detect_task)

        # Poison the video table with one malformed keyframe.
        video = db.table("video")
        frames = video.column("keyframe").data.copy()
        frames[0] = np.zeros((3, 3, 3, 3))  # wrong shape
        video.replace_column("keyframe", frames)

        query = QueryGenerator(tiny_dataset).make_query(
            QueryType.LEARNING_DEPENDS_ON_DB, 0.9
        )
        with pytest.raises(UdfError):
            strategy.run(db, query, {"detect": detect_task})

        # Repair and re-run on the same database.
        tiny_dataset.install(db)  # replace=True restores the table
        db.catalog.create_index("video", "transID")
        result = strategy.run(db, query, {"detect": detect_task})
        assert result.details["inferred_rows"] >= 0


class TestParseAndPlanFailures:
    def test_parse_error_leaves_cache_usable(self, db):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            db.execute("SELEC a FROM t")
        assert db.query("SELECT count(*) FROM t") == [(3,)]

    def test_plan_error_is_clean(self, db):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            db.query("SELECT missing_column FROM t")
        assert db.query("SELECT count(*) FROM t") == [(3,)]

    def test_insert_width_error_does_not_partially_insert(self, db):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            db.execute("INSERT INTO t VALUES (4.0), (5.0, 6.0)")
        # Either nothing or only complete batches: our engine validates
        # the whole batch first, so nothing lands.
        assert db.table("t").num_rows == 3
