"""Vectorized expression evaluation details."""

import numpy as np
import pytest

from repro.engine.expressions import (
    Evaluator,
    FunctionRegistry,
    Vector,
    contains_aggregate,
    is_aggregate_call,
)
from repro.engine.frame import Frame, FrameColumn
from repro.errors import PlanError
from repro.sql.parser import parse_statement
from repro.storage.schema import DataType


def frame_of(**columns) -> Frame:
    out = []
    for name, values in columns.items():
        array = np.asarray(values)
        if array.dtype == np.bool_:
            dtype = DataType.BOOL
        elif np.issubdtype(array.dtype, np.integer):
            dtype = DataType.INT64
            array = array.astype(np.int64)
        elif array.dtype == object or array.dtype.kind == "U":
            dtype = DataType.STRING
            boxed = np.empty(len(values), dtype=object)
            boxed[:] = list(values)
            array = boxed
        else:
            dtype = DataType.FLOAT64
        out.append(FrameColumn(None, name, dtype, array))
    return Frame(out)


def eval_expr(sql_expression, frame):
    statement = parse_statement(f"SELECT {sql_expression}")
    evaluator = Evaluator(frame, FunctionRegistry())
    return evaluator.evaluate(statement.items[0].expression)


class TestArithmetic:
    def test_int_plus_int_stays_int(self):
        v = eval_expr("a + b", frame_of(a=[1, 2], b=[3, 4]))
        assert v.dtype is DataType.INT64
        assert v.data.tolist() == [4, 6]

    def test_division_always_float(self):
        v = eval_expr("a / 2", frame_of(a=[1, 2]))
        assert v.dtype is DataType.FLOAT64
        assert v.data.tolist() == [0.5, 1.0]

    def test_mixed_promotes_to_float(self):
        v = eval_expr("a * b", frame_of(a=[2, 3], b=[0.5, 0.5]))
        assert v.dtype is DataType.FLOAT64

    def test_unary_minus(self):
        v = eval_expr("-a", frame_of(a=[1, -2]))
        assert v.data.tolist() == [-1, 2]


class TestComparisons:
    def test_numeric(self):
        v = eval_expr("a >= 2", frame_of(a=[1, 2, 3]))
        assert v.dtype is DataType.BOOL
        assert v.data.tolist() == [False, True, True]

    def test_string(self):
        v = eval_expr("s = 'x'", frame_of(s=["x", "y"]))
        assert v.data.tolist() == [True, False]

    def test_bool_equals_literal(self):
        v = eval_expr("b = TRUE", frame_of(b=[True, False]))
        assert v.data.tolist() == [True, False]

    def test_scalar_comparison_folds(self):
        v = eval_expr("1 < 2", frame_of(a=[1]))
        assert v.is_scalar and v.data is True


class TestDateCoercion:
    def test_date_vs_string_literal(self):
        from repro.storage.schema import parse_date

        dates = np.array(
            [parse_date("2021-01-05"), parse_date("2021-03-05")],
            dtype=np.int64,
        )
        frame = Frame([FrameColumn(None, "d", DataType.DATE, dates)])
        v = eval_expr("d < '2021-02-01'", frame)
        assert v.data.tolist() == [True, False]


class TestLogic:
    def test_and_or_not(self):
        frame = frame_of(a=[1, 2, 3, 4])
        v = eval_expr("a > 1 AND a < 4", frame)
        assert v.data.tolist() == [False, True, True, False]
        v = eval_expr("NOT a > 1", frame)
        assert v.data.tolist() == [True, False, False, False]

    def test_concat_operator(self):
        v = eval_expr("s || '!'", frame_of(s=["a", "b"]))
        assert v.data.tolist() == ["a!", "b!"]


class TestMaskAndErrors:
    def test_evaluate_mask_casts(self):
        frame = frame_of(a=[0, 1, 2])
        evaluator = Evaluator(frame, FunctionRegistry())
        statement = parse_statement("SELECT a")
        mask = evaluator.evaluate_mask(statement.items[0].expression)
        assert mask.tolist() == [False, True, True]

    def test_aggregate_outside_context_rejected(self):
        with pytest.raises(PlanError):
            eval_expr("sum(a)", frame_of(a=[1]))

    def test_bare_star_rejected(self):
        frame = frame_of(a=[1])
        evaluator = Evaluator(frame, FunctionRegistry())
        from repro.sql.ast_nodes import Star

        with pytest.raises(PlanError):
            evaluator.evaluate(Star())


class TestAggregateDetection:
    def test_is_aggregate_call(self):
        statement = parse_statement("SELECT sum(a), abs(a)")
        assert is_aggregate_call(statement.items[0].expression)
        assert not is_aggregate_call(statement.items[1].expression)

    def test_contains_aggregate_nested(self):
        statement = parse_statement("SELECT 1 + sum(a) / count(*)")
        assert contains_aggregate(statement.items[0].expression)


class TestVector:
    def test_scalar_materialize(self):
        v = Vector(5, DataType.INT64, is_scalar=True)
        assert v.materialize(3).tolist() == [5, 5, 5]

    def test_scalar_string_materialize(self):
        v = Vector("x", DataType.STRING, is_scalar=True)
        out = v.materialize(2)
        assert out.dtype == object and out.tolist() == ["x", "x"]


class TestBuiltinFunctions:
    def test_if(self):
        v = eval_expr("if(a > 1, a, 0)", frame_of(a=[1, 2]))
        assert v.data.tolist() == [0, 2]

    def test_round(self):
        v = eval_expr("round(a, 1)", frame_of(a=[1.26, 2.34]))
        assert v.data.tolist() == [1.3, 2.3]

    def test_pow(self):
        v = eval_expr("pow(a, 2)", frame_of(a=[2.0, 3.0]))
        assert v.data.tolist() == [4.0, 9.0]

    def test_string_functions(self):
        frame = frame_of(s=["Ab", "cD"])
        assert eval_expr("lower(s)", frame).data.tolist() == ["ab", "cd"]
        assert eval_expr("upper(s)", frame).data.tolist() == ["AB", "CD"]
        assert eval_expr("length(s)", frame).data.tolist() == [2, 2]

    def test_exp_ln_inverse(self):
        frame = frame_of(a=[1.0, 2.0])
        v = eval_expr("ln(exp(a))", frame)
        assert np.allclose(v.data, [1.0, 2.0])

    def test_sigmoid_tanh(self):
        frame = frame_of(a=[0.0])
        assert eval_expr("sigmoid(a)", frame).data[0] == pytest.approx(0.5)
        assert eval_expr("tanh(a)", frame).data[0] == pytest.approx(0.0)

    def test_to_date(self):
        frame = frame_of(a=[1])
        v = eval_expr("toDate('2021-01-01')", frame)
        assert v.dtype is DataType.DATE
