"""NULL semantics: differential corpus vs SQLite plus targeted regressions.

The corpus covers every layer the validity-mask refactor touched:
predicate 3VL (Kleene AND/OR/NOT), NULL-propagating comparisons and
arithmetic, string kernels, CASE/coalesce/IN/BETWEEN, aggregates
(COUNT(*) vs COUNT(col), empty-group NULLs), GROUP BY and DISTINCT with
NULL keys, joins that must drop NULL keys, and scalar subqueries.
"""

import numpy as np
import pytest

from repro.engine import Database
from tests.engine.differential import (
    assert_equivalent,
    assert_equivalent_ordered,
    build_engine,
    build_sqlite,
)

TABLES = {
    "r": {
        "id": [1, 2, 3, 4, 5, 6, 7, 8],
        "a": [10, None, 30, None, 50, 60, None, 80],
        "f": [1.5, 2.5, None, None, 5.5, 6.5, 7.5, None],
        "s": ["alpha", None, "beta", "gamma", None, "beta", "delta", None],
        "g": ["x", "x", None, "y", "y", None, "x", None],
    },
    "k": {
        "key": [10, None, 30, 60, None, 90],
        "w": [1.0, 2.0, None, 4.0, 5.0, None],
        "label": ["m", "n", None, "m", None, "n"],
    },
}

CORPUS = [
    # projection and the transfer boundary
    "SELECT a FROM r",
    "SELECT id, a, f, s FROM r",
    "SELECT a, f, s, g FROM r WHERE id > 3",
    # comparisons: NULL operands yield UNKNOWN, filtered out
    "SELECT a FROM r WHERE a > 20",
    "SELECT id FROM r WHERE a = 10",
    "SELECT id FROM r WHERE a != 30",
    "SELECT id FROM r WHERE f <= 5.5",
    "SELECT id FROM r WHERE f > a",
    "SELECT s FROM r WHERE s = 'beta'",
    # Kleene three-valued logic
    "SELECT id FROM r WHERE NOT (a > 20)",
    "SELECT id FROM r WHERE a > 20 AND f < 7.0",
    "SELECT id FROM r WHERE a > 20 OR f < 2.0",
    "SELECT id FROM r WHERE a IS NULL AND f IS NOT NULL",
    "SELECT id FROM r WHERE NOT (a IS NULL OR f IS NULL)",
    "SELECT s FROM r WHERE s = 'beta' OR s IS NULL",
    # IS [NOT] NULL
    "SELECT id FROM r WHERE a IS NULL",
    "SELECT id FROM r WHERE a IS NOT NULL",
    "SELECT id FROM r WHERE s IS NULL OR a IS NULL",
    # IN / BETWEEN under 3VL (NULL in the list, NULL operand)
    "SELECT id FROM r WHERE a IN (10, 30, 80)",
    "SELECT id FROM r WHERE a NOT IN (10, 30)",
    "SELECT id FROM r WHERE a IN (10, NULL)",
    "SELECT id FROM r WHERE a BETWEEN 20 AND 60",
    # string kernels propagate NULL (no str(None) artifacts)
    "SELECT id FROM r WHERE s LIKE 'b%'",
    "SELECT id FROM r WHERE s LIKE '%a%'",
    # LIKE is ASCII-case-insensitive with DOTALL wildcards + ESCAPE,
    # exactly like SQLite
    "SELECT id FROM r WHERE s LIKE 'B%'",
    "SELECT id FROM r WHERE s LIKE 'BETA'",
    "SELECT id FROM r WHERE s NOT LIKE '%A%'",
    "SELECT id FROM r WHERE s LIKE 'al!_%' ESCAPE '!'",
    "SELECT id FROM r WHERE s LIKE 'alph_'",
    "SELECT id FROM r WHERE s LIKE '%t!%' ESCAPE '!'",
    "SELECT s || '_tail' FROM r",
    "SELECT upper(s) FROM r",
    "SELECT lower(s), length(s) FROM r",
    # arithmetic propagation
    "SELECT a + 1, f * 2.0 FROM r",
    "SELECT a + f FROM r",
    "SELECT -a FROM r",
    "SELECT abs(f) FROM r",
    # CASE and coalesce
    "SELECT CASE WHEN a > 30 THEN 'big' WHEN a IS NULL THEN 'none' "
    "ELSE 'small' END FROM r",
    "SELECT CASE WHEN a > 30 THEN 'big' END FROM r",
    "SELECT coalesce(a, 0) FROM r",
    "SELECT coalesce(s, 'missing') FROM r",
    "SELECT coalesce(f, a * 1.0, -1.0) FROM r",
    # aggregates: COUNT(*) vs COUNT(col), NULL-skipping, empty -> NULL
    "SELECT count(*) FROM r",
    "SELECT count(a), count(f), count(s) FROM r",
    "SELECT sum(a), min(a), max(a) FROM r",
    "SELECT avg(f) FROM r",
    "SELECT sum(a) FROM r WHERE a > 100",
    "SELECT count(*) FROM r WHERE a > 100",
    "SELECT count(DISTINCT g) FROM r",
    # GROUP BY: NULL is one group; per-group NULL skipping
    "SELECT g, count(*) FROM r GROUP BY g",
    "SELECT g, count(a), sum(a) FROM r GROUP BY g",
    "SELECT g, avg(f) FROM r GROUP BY g",
    "SELECT g, min(f), max(a) FROM r GROUP BY g",
    "SELECT g, sum(a) FROM r GROUP BY g HAVING sum(a) > 20",
    # DISTINCT: NULL appears exactly once
    "SELECT DISTINCT g FROM r",
    "SELECT DISTINCT a, g FROM r",
    # sorts run through the NULL-aware codes (multiset compare)
    "SELECT id FROM r ORDER BY a",
    "SELECT a FROM r ORDER BY a DESC",
    # joins: NULL keys match nothing, on either side
    "SELECT r.id, k.w FROM r, k WHERE r.a = k.key",
    "SELECT r.id, k.label FROM r JOIN k ON r.a = k.key",
    "SELECT r.id FROM r JOIN k ON r.a = k.key WHERE k.w IS NOT NULL",
    "SELECT count(*) FROM r, k WHERE r.a = k.key",
    "SELECT k.label, count(*) FROM r JOIN k ON r.a = k.key GROUP BY k.label",
    # scalar subqueries
    "SELECT id, (SELECT sum(w) FROM k) FROM r",
    "SELECT id FROM r WHERE a > (SELECT avg(key) FROM k)",
]


@pytest.fixture(scope="module")
def engine_db():
    return build_engine(TABLES)


@pytest.fixture(scope="module")
def sqlite_db():
    conn = build_sqlite(TABLES)
    yield conn
    conn.close()


class TestDifferentialCorpus:
    def test_corpus_is_large_enough(self):
        assert len(CORPUS) >= 40

    @pytest.mark.parametrize("sql", CORPUS)
    def test_matches_sqlite(self, engine_db, sqlite_db, sql):
        assert_equivalent(engine_db, sqlite_db, sql)


#: Order-sensitive corpus: (engine SQL, SQLite SQL with the engine's
#: NULL placement — last ascending, first descending — spelled out).
#: The multiset corpus above can't see ordering bugs; these queries
#: caught the mixed-ASC/DESC lexsort bug where code negation flipped
#: the NULL sentinel to the wrong end of DESC keys (and overflowed on
#: int64 extremes).  All queries are tie-free: they project exactly
#: their sort keys or end on the unique ``id``.
ORDERED_CORPUS = [
    (
        "SELECT g, a FROM r ORDER BY g, a",
        "SELECT g, a FROM r ORDER BY g NULLS LAST, a NULLS LAST",
    ),
    (
        "SELECT g, a FROM r ORDER BY g, a DESC",
        "SELECT g, a FROM r ORDER BY g NULLS LAST, a DESC NULLS FIRST",
    ),
    (
        "SELECT g, a FROM r ORDER BY g DESC, a",
        "SELECT g, a FROM r ORDER BY g DESC NULLS FIRST, a NULLS LAST",
    ),
    (
        "SELECT g, a FROM r ORDER BY g DESC, a DESC",
        "SELECT g, a FROM r ORDER BY g DESC NULLS FIRST, a DESC NULLS FIRST",
    ),
    (
        "SELECT a, f FROM r ORDER BY a DESC, f",
        "SELECT a, f FROM r ORDER BY a DESC NULLS FIRST, f NULLS LAST",
    ),
    (
        "SELECT g, f, id FROM r ORDER BY g, f DESC, id",
        "SELECT g, f, id FROM r "
        "ORDER BY g NULLS LAST, f DESC NULLS FIRST, id",
    ),
    (
        "SELECT s, a, id FROM r ORDER BY s DESC, a, id",
        "SELECT s, a, id FROM r "
        "ORDER BY s DESC NULLS FIRST, a NULLS LAST, id",
    ),
]


class TestOrderedDifferentialCorpus:
    @pytest.mark.parametrize(
        "sql,sqlite_sql", ORDERED_CORPUS, ids=[q for q, _ in ORDERED_CORPUS]
    )
    def test_matches_sqlite_in_order(
        self, engine_db, sqlite_db, sql, sqlite_sql
    ):
        assert_equivalent_ordered(engine_db, sqlite_db, sql, sqlite_sql)

    def test_int64_extremes_do_not_overflow(self):
        # Rank-based sort codes regression: the old implementation
        # negated codes for DESC keys, which wraps INT64_MIN, and
        # computed ``max - min`` spans that overflow on extreme values.
        db = Database()
        extremes = [-(2**63), 2**63 - 1, 0, None, -1]
        db.create_table_from_dict("e", {"x": extremes})
        ascending = [r[0] for r in db.query("SELECT x FROM e ORDER BY x")]
        assert ascending == [-(2**63), -1, 0, 2**63 - 1, None]
        descending = [
            r[0] for r in db.query("SELECT x FROM e ORDER BY x DESC")
        ]
        assert descending == [None, 2**63 - 1, 0, -1, -(2**63)]

    def test_mixed_direction_with_extreme_secondary(self):
        db = Database()
        db.create_table_from_dict(
            "e",
            {
                "g": ["a", "a", "b", "b", None],
                "x": [2**63 - 1, -(2**63), None, 5, 7],
            },
        )
        rows = db.query("SELECT g, x FROM e ORDER BY g, x DESC")
        assert rows == [
            ("a", 2**63 - 1),
            ("a", -(2**63)),
            ("b", None),
            ("b", 5),
            (None, 7),
        ]


# ----------------------------------------------------------------------
# Targeted regressions for the individual NULL bugs the refactor fixed.
# ----------------------------------------------------------------------
@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t",
        {
            "id": [1, 2, 3, 4],
            "a": [10, None, 30, None],
            "s": ["None", None, "beta", "nonesuch"],
        },
    )
    return database


class TestStringNullRegressions:
    def test_like_does_not_match_literal_none_string(self, db):
        # str(None) == "None" used to make NULLs match 'None%' patterns.
        # LIKE is ASCII-case-insensitive (sqlite semantics), so 'None%'
        # and 'none%' both match "None" and "nonesuch" — but never NULL.
        assert db.query("SELECT id FROM t WHERE s LIKE 'None%'") == [
            (1,), (4,),
        ]
        assert db.query("SELECT id FROM t WHERE s LIKE 'none%'") == [
            (1,), (4,),
        ]

    def test_upper_of_null_is_null(self, db):
        rows = db.query("SELECT upper(s) FROM t")
        assert [r[0] for r in rows] == ["NONE", None, "BETA", "NONESUCH"]

    def test_length_of_null_is_null(self, db):
        rows = db.query("SELECT length(s) FROM t")
        assert [r[0] for r in rows] == [4, None, 4, 8]

    def test_concat_propagates_null(self, db):
        rows = db.query("SELECT s || '!' FROM t")
        assert rows[1][0] is None


class TestJoinNullKeys:
    def test_null_keys_never_match(self, db):
        db.create_table_from_dict("j", {"key": [10, None, 30], "v": [1, 2, 3]})
        rows = db.query("SELECT t.id, j.v FROM t JOIN j ON t.a = j.key")
        assert sorted(rows) == [(1, 1), (3, 3)]

    def test_null_float_keys_never_match(self, db):
        db.create_table_from_dict("fl", {"key": [10.0, None], "v": [1, 2]})
        db.create_table_from_dict("fr", {"key": [None, 10.0], "w": [7, 8]})
        rows = db.query("SELECT fl.v, fr.w FROM fl JOIN fr ON fl.key = fr.key")
        assert rows == [(1, 8)]

    def test_symmetric_hash_join_drops_null_keys(self, db):
        from repro.engine.profiler import Profiler
        from repro.engine.physical import (
            ExecutionContext,
            _symmetric_hash_join,
        )

        ctx = ExecutionContext(
            catalog=db.catalog,
            functions=db.functions,
            udfs=db.udfs,
            profiler=Profiler(),
        )
        left = np.array([1.0, np.nan, 3.0, 4.0])
        right = np.array([np.nan, 1.0, 4.0])
        left_idx, right_idx = _symmetric_hash_join(
            [left],
            [right],
            ctx,
            chunk_size=2,
            left_null=np.isnan(left),
            right_null=np.isnan(right),
        )
        pairs = sorted(zip(left_idx.tolist(), right_idx.tolist()))
        assert pairs == [(0, 1), (3, 2)]

    def test_indexed_join_skips_null_keys(self, db):
        db.create_table_from_dict("ij", {"key": [10, None, 30], "v": [1, 2, 3]})
        db.execute("CREATE INDEX idx ON ij(key)")
        assert db.catalog.get_index("ij", "key") is not None
        rows = db.query("SELECT t.id, ij.v FROM t JOIN ij ON t.a = ij.key")
        assert sorted(rows) == [(1, 1), (3, 3)]


class TestConditionalNulls:
    def test_if_with_null_condition_takes_else(self, db):
        rows = db.query("SELECT if(a > 15, 'hi', 'lo') FROM t")
        assert [r[0] for r in rows] == ["lo", "lo", "hi", "lo"]

    def test_if_null_branches(self, db):
        rows = db.query("SELECT if(id = 1, NULL, id) FROM t")
        assert [r[0] for r in rows] == [None, 2, 3, 4]

    def test_coalesce_three_way(self, db):
        rows = db.query("SELECT coalesce(a, id) FROM t")
        assert [r[0] for r in rows] == [10, 2, 30, 4]


class TestSortAndUpdateNulls:
    def test_order_by_nulls_last_asc_first_desc(self, db):
        ascending = db.query("SELECT a FROM t ORDER BY a ASC")
        assert [r[0] for r in ascending] == [10, 30, None, None]
        descending = db.query("SELECT a FROM t ORDER BY a DESC")
        assert [r[0] for r in descending] == [None, None, 30, 10]

    def test_update_set_null(self, db):
        db.execute("UPDATE t SET a = NULL WHERE id = 1")
        rows = db.query("SELECT a FROM t WHERE a IS NULL")
        assert len(rows) == 3
        assert db.execute("SELECT sum(a) FROM t").scalar() == 30

    def test_update_overwrites_null(self, db):
        db.execute("UPDATE t SET a = 99 WHERE id = 2")
        assert db.query("SELECT a FROM t WHERE id = 2") == [(99,)]


class TestPersistNullRoundTrip:
    def test_all_types_round_trip(self, tmp_path):
        from repro.storage.persist import load_database, save_database

        db = Database()
        db.create_table_from_dict(
            "p",
            {
                "i": [1, None, 3],
                "x": [1.5, None, 3.5],
                "s": ["a", None, "c"],
            },
        )
        save_database(db, str(tmp_path / "store"))
        fresh = Database()
        load_database(fresh, str(tmp_path / "store"))
        assert fresh.query("SELECT i, x, s FROM p") == [
            (1, 1.5, "a"),
            (None, None, None),
            (3, 3.5, "c"),
        ]
        assert fresh.execute("SELECT count(i) FROM p").scalar() == 2
