"""Join execution: hash joins, cross joins, multi-key, symmetric."""

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.frame import Frame
from repro.engine.physical import (
    ExecutionContext,
    _match_numeric_keys,
    _symmetric_hash_join,
)
from repro.engine.expressions import FunctionRegistry
from repro.engine.profiler import Profiler
from repro.engine.udf import UdfRegistry


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "left_t", {"k": [1, 2, 2, 3], "lv": [10, 20, 21, 30]}
    )
    database.create_table_from_dict(
        "right_t", {"k": [2, 3, 3, 4], "rv": ["b", "c", "d", "e"]}
    )
    return database


class TestInnerJoin:
    def test_comma_syntax(self, db):
        rows = db.query(
            "SELECT lv, rv FROM left_t, right_t "
            "WHERE left_t.k = right_t.k ORDER BY lv, rv"
        )
        assert rows == [(20, "b"), (21, "b"), (30, "c"), (30, "d")]

    def test_join_syntax_equivalent(self, db):
        a = db.query(
            "SELECT lv, rv FROM left_t, right_t "
            "WHERE left_t.k = right_t.k ORDER BY lv, rv"
        )
        b = db.query(
            "SELECT lv, rv FROM left_t INNER JOIN right_t "
            "ON left_t.k = right_t.k ORDER BY lv, rv"
        )
        assert a == b

    def test_join_with_extra_filter(self, db):
        rows = db.query(
            "SELECT lv FROM left_t, right_t "
            "WHERE left_t.k = right_t.k AND rv = 'b' ORDER BY lv"
        )
        assert rows == [(20,), (21,)]

    def test_empty_result(self, db):
        rows = db.query(
            "SELECT lv FROM left_t, right_t "
            "WHERE left_t.k = right_t.k AND lv > 999"
        )
        assert rows == []

    def test_three_way_join(self, db):
        db.create_table_from_dict("third", {"rv": ["b", "c"], "tv": [1, 2]})
        rows = db.query(
            "SELECT lv, tv FROM left_t, right_t, third "
            "WHERE left_t.k = right_t.k AND right_t.rv = third.rv "
            "ORDER BY lv, tv"
        )
        assert (30, 2) in rows

    def test_expression_join_key(self, db):
        rows = db.query(
            "SELECT lv FROM left_t, right_t "
            "WHERE left_t.k + 1 = right_t.k ORDER BY lv"
        )
        # k=1 matches the one right k=2 row; k=2 (twice) matches the two
        # right k=3 rows; k=3 matches the one right k=4 row.
        assert [r[0] for r in rows] == [10, 20, 20, 21, 21, 30]

    def test_cross_join_no_condition(self, db):
        rows = db.query("SELECT count(*) FROM left_t, right_t")
        assert rows == [(16,)]

    def test_self_join_aliases(self, db):
        rows = db.query(
            "SELECT a.lv, b.lv FROM left_t a, left_t b "
            "WHERE a.k = b.k AND a.lv < b.lv"
        )
        assert rows == [(20, 21)]


class TestMultiKeyJoin:
    """Regression: composite keys must factorize over *both* sides.

    Per-side ``np.unique`` codes made each side's second-smallest value
    get code 1 regardless of what the value was, so rows with different
    key tuples matched (and genuinely equal tuples could miss).  The
    differential against SQLite pins value-correct matching.
    """

    TABLES = {
        "ml": {"x": [1, 5, 5, 7, 8], "y": [10, 20, 30, 1, 2], "lv": list(range(5))},
        "mr": {"x": [5, 2, 5, 7, 9], "y": [20, 10, 99, 1, 3], "rv": list(range(5))},
    }

    @pytest.fixture()
    def pair(self):
        from tests.engine.differential import build_engine, build_sqlite

        engine = build_engine(self.TABLES)
        reference = build_sqlite(self.TABLES)
        yield engine, reference
        reference.close()

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT ml.x, ml.y FROM ml JOIN mr "
            "ON ml.x = mr.x AND ml.y = mr.y",
            "SELECT lv, rv FROM ml JOIN mr "
            "ON ml.x = mr.x AND ml.y = mr.y",
            "SELECT count(*) FROM ml, mr "
            "WHERE ml.x = mr.x AND ml.y = mr.y",
            # One matching key pair, one disjoint: join must be empty.
            "SELECT count(*) FROM ml, mr "
            "WHERE ml.x = mr.x AND ml.y = mr.rv",
        ],
    )
    def test_matches_sqlite(self, pair, sql):
        from tests.engine.differential import assert_equivalent

        engine, reference = pair
        assert_equivalent(engine, reference, sql)

    def test_known_answer(self, pair):
        engine, _ = pair
        rows = engine.query(
            "SELECT ml.x, ml.y FROM ml JOIN mr ON ml.x = mr.x AND ml.y = mr.y"
        )
        assert rows == [(5, 20), (7, 1)]

    def test_three_keys_mixed_dtypes(self):
        db = Database()
        db.create_table_from_dict(
            "a3",
            {
                "i": [1, 1, 2, 2],
                "f": [0.5, 0.5, 1.5, 2.5],
                "s": ["p", "q", "p", "q"],
            },
        )
        db.create_table_from_dict(
            "b3",
            {
                "i": [1, 2, 2],
                "f": [0.5, 2.5, 1.5],
                "s": ["q", "q", "x"],
            },
        )
        rows = db.query(
            "SELECT a3.i, a3.f, a3.s FROM a3 JOIN b3 "
            "ON a3.i = b3.i AND a3.f = b3.f AND a3.s = b3.s"
        )
        assert rows == [(1, 0.5, "q"), (2, 2.5, "q")]

    def test_symmetric_join_uses_shared_dictionary(self):
        # The symmetric (hint rule 3) matcher shares the combine step.
        left = [np.array([1, 5, 5]), np.array([10, 20, 30])]
        right = [np.array([5, 2, 5]), np.array([20, 10, 99])]
        left_idx, right_idx = _symmetric_hash_join(left, right, _ctx())
        assert list(zip(left_idx.tolist(), right_idx.tolist())) == [(1, 0)]


class TestMatchKernels:
    def test_match_numeric_keys_pairs(self):
        build = np.array([1, 2, 2, 3])
        probe = np.array([2, 3, 5])
        build_idx, probe_idx = _match_numeric_keys(build, probe)
        pairs = sorted(zip(build_idx.tolist(), probe_idx.tolist()))
        assert pairs == [(1, 0), (2, 0), (3, 1)]

    def test_match_empty(self):
        empty = np.empty(0, dtype=np.int64)
        build_idx, probe_idx = _match_numeric_keys(empty, np.array([1]))
        assert len(build_idx) == 0 and len(probe_idx) == 0


def _ctx(**kwargs) -> ExecutionContext:
    from repro.storage.catalog import Catalog

    return ExecutionContext(
        catalog=Catalog(),
        functions=FunctionRegistry(),
        udfs=UdfRegistry(),
        profiler=Profiler(),
        **kwargs,
    )


class TestSymmetricHashJoin:
    def test_same_result_as_plain_match(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 50, 500)
        right = rng.integers(0, 50, 400)
        ctx = _ctx()
        sym_l, sym_r = _symmetric_hash_join([left], [right], ctx, chunk_size=64)
        plain_l, plain_r = _match_numeric_keys(left, right)
        assert sorted(zip(sym_l.tolist(), sym_r.tolist())) == sorted(
            zip(plain_l.tolist(), plain_r.tolist())
        )

    def test_lru_counters_under_pressure(self):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 2000, 3000)
        right = rng.integers(0, 2000, 3000)
        ctx = _ctx(symmetric_join_memory=1024)  # tiny budget forces eviction
        _symmetric_hash_join([left], [right], ctx, chunk_size=128)
        stats = ctx.last_symmetric_stats
        assert stats["buckets"] > 0
        assert stats["cache_misses"] > 0
        assert stats["bucket_reloads"] >= stats["cache_misses"]

    def test_no_eviction_with_big_budget(self):
        left = np.arange(100)
        right = np.arange(100)
        ctx = _ctx()
        _symmetric_hash_join([left], [right], ctx)
        assert ctx.last_symmetric_stats["cache_misses"] == 0


class TestBucketEvictionAccounting:
    """Regression: eviction must refund the bucket's full byte weight.

    A flat per-entry refund under-credits heavy buckets, leaving ``used``
    inflated so every subsequent insert triggers another (phantom)
    eviction cascade.
    """

    def test_single_eviction_per_overflow(self):
        # 10 entries x 24 B fill a 240 B budget exactly; bucket 0 holds
        # five of them (120 B) and is the LRU bucket afterwards.
        left = np.array([0, 0, 0, 0, 0, 1, 2, 3, 4, 5])
        right = np.array([6, 7])
        ctx = _ctx(symmetric_join_memory=240)
        _symmetric_hash_join([left], [right], ctx)
        stats = ctx.last_symmetric_stats
        # Inserting key 6 overflows by 24 B; evicting bucket 0 refunds
        # its full 120 B, leaving room for key 7 without a second
        # eviction.  The flat-24 refund would have evicted twice.
        assert stats["evictions"] == 1
        assert stats["used_bytes"] == (10 + 2 - 5) * 24

    def test_eviction_then_reload_stays_exact(self):
        rng = np.random.default_rng(3)
        left = rng.integers(0, 300, 2000)
        right = rng.integers(0, 300, 2000)
        tight = _ctx(symmetric_join_memory=2048)
        loose = _ctx()
        t_l, t_r = _symmetric_hash_join([left], [right], tight)
        l_l, l_r = _symmetric_hash_join([left], [right], loose)
        assert tight.last_symmetric_stats["evictions"] > 0
        assert loose.last_symmetric_stats["evictions"] == 0
        assert sorted(zip(t_l.tolist(), t_r.tolist())) == sorted(
            zip(l_l.tolist(), l_r.tolist())
        )

    def test_used_bytes_never_exceed_budget_with_heavy_buckets(self):
        # Skewed keys create buckets of very different weights; as long
        # as no single bucket outweighs the whole budget, resident bytes
        # must respect it (the flat-refund bug broke this invariant).
        left = np.array([1] * 10 + [2] * 6 + list(range(10, 40)))
        right = np.array([1] * 5 + list(range(100, 140)))
        ctx = _ctx(symmetric_join_memory=512)
        _symmetric_hash_join([left], [right], ctx, chunk_size=16)
        assert ctx.last_symmetric_stats["used_bytes"] <= 512
