"""Differential NULL-semantics harness: the engine vs stdlib sqlite3.

SQLite is the reference implementation for three-valued logic here: every
query in the corpus runs against both engines over identical data and the
result *multisets* must match.  Multiset (not list) comparison keeps
ORDER BY queries usable while sidestepping the one documented divergence
in sort order (the engine sorts NULLS last ascending, SQLite first).

Queries must stay inside the shared dialect:

* no integer division (``/`` is float division here, integer in SQLite) —
  multiply by ``1.0`` first;
* no ``count(<boolean expr>)`` (engine dialect: countIf);
* LIKE (including case-mixed patterns and ESCAPE) is fair game: the
  engine implements SQLite's semantics — ASCII-only case folding,
  ``%`` spanning newlines, dangling escapes matching nothing;
* no negative modulo (numpy takes the divisor's sign, C the dividend's);
* no DATE functions and no engine-only builtins.

Value normalization before comparison: numpy scalars unwrap, booleans and
ints widen to float (SQLite has no bool and mixes int/float affinities),
NaN maps to None (the engine's float NULL encoding), floats round to 6
places to absorb summation-order differences.
"""

from __future__ import annotations

import math
import sqlite3
from collections import Counter
from typing import Any, Mapping, Sequence

import numpy as np

from repro.engine import Database


def build_engine(tables: Mapping[str, Mapping[str, list]]) -> Database:
    db = Database()
    for name, columns in tables.items():
        db.create_table_from_dict(name, dict(columns))
    return db


def build_sqlite(
    tables: Mapping[str, Mapping[str, list]]
) -> sqlite3.Connection:
    conn = sqlite3.connect(":memory:")
    for name, columns in tables.items():
        decls = ", ".join(
            f'"{column}" {_sqlite_type(values)}'
            for column, values in columns.items()
        )
        conn.execute(f'CREATE TABLE "{name}" ({decls})')
        placeholders = ", ".join("?" for _ in columns)
        conn.executemany(
            f'INSERT INTO "{name}" VALUES ({placeholders})',
            list(zip(*columns.values())),
        )
    conn.commit()
    return conn


def _sqlite_type(values: Sequence[Any]) -> str:
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool) or isinstance(value, int):
            return "INTEGER"
        if isinstance(value, float):
            return "REAL"
        return "TEXT"
    return "TEXT"


def normalize_value(value: Any) -> Any:
    if isinstance(value, np.generic):
        value = value.item()
    if value is None:
        return None
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, int):
        return float(value)
    if isinstance(value, float):
        if math.isnan(value):
            return None
        return round(value, 6)
    return value


def normalize_rows(rows: Sequence[Sequence[Any]]) -> Counter:
    return Counter(
        tuple(normalize_value(value) for value in row) for row in rows
    )


def assert_equivalent(
    engine_db: Database, reference: sqlite3.Connection, sql: str
) -> None:
    """Run ``sql`` on both engines and require identical result multisets."""
    ours = normalize_rows(engine_db.query(sql))
    theirs = normalize_rows(reference.execute(sql).fetchall())
    if ours == theirs:
        return
    only_ours = ours - theirs
    only_theirs = theirs - ours
    raise AssertionError(
        f"differential mismatch for {sql!r}\n"
        f"  engine-only rows: {sorted(only_ours.elements(), key=repr)}\n"
        f"  sqlite-only rows: {sorted(only_theirs.elements(), key=repr)}"
    )


def assert_equivalent_ordered(
    engine_db: Database,
    reference: sqlite3.Connection,
    sql: str,
    sqlite_sql: str,
) -> None:
    """Order-*sensitive* differential for ORDER BY queries.

    The multiset comparison above cannot catch per-key NULL-placement
    bugs, so this variant compares row *lists*.  The engine's contract
    (NULLS last ascending, NULLS first descending, per sort key) is the
    opposite of SQLite's default, so callers spell the placement out in
    ``sqlite_sql`` with explicit ``NULLS LAST`` / ``NULLS FIRST``.
    Queries must be tie-free (project exactly the sort keys, or include
    a unique tiebreaker) — ties make row order unspecified on both
    sides.
    """
    ours = [
        tuple(normalize_value(value) for value in row)
        for row in engine_db.query(sql)
    ]
    theirs = [
        tuple(normalize_value(value) for value in row)
        for row in reference.execute(sqlite_sql).fetchall()
    ]
    assert ours == theirs, (
        f"ordered differential mismatch for {sql!r}\n"
        f"  engine: {ours}\n  sqlite: {theirs}"
    )
