"""Cost model behaviour: estimates, selectivities, the over-estimation path."""

import pytest

from repro.engine import Database
from repro.engine.cost import (
    CARDINALITY_SATURATION,
    DefaultCostModel,
    MAGIC_JOIN_SELECTIVITY,
)
from repro.engine.statistics import (
    ColumnStats,
    StatisticsProvider,
    TableStats,
    compute_table_stats,
)


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t",
        {"k": list(range(100)), "v": [float(i % 10) for i in range(100)]},
    )
    database.create_table_from_dict("s", {"k": list(range(10))})
    return database


def estimate(db, sql):
    return db.explain(sql)


class TestStatistics:
    def test_compute_table_stats(self, db):
        stats = compute_table_stats(db.table("t"))
        assert stats.row_count == 100
        assert stats.column("k").distinct == 100
        assert stats.column("v").distinct == 10
        assert stats.column("k").min_value == 0
        assert stats.column("k").max_value == 99

    def test_provider_caches_and_invalidates(self, db):
        provider = db.statistics
        first = provider.stats_for("t")
        assert provider.stats_for("t") is first
        provider.invalidate("t")
        assert provider.stats_for("t") is not first

    def test_overrides_win(self, db):
        provider = StatisticsProvider(db.catalog)
        provider.set_override("t", TableStats(row_count=5, columns={}))
        assert provider.stats_for("t").row_count == 5
        provider.clear_overrides()
        assert provider.stats_for("t").row_count == 100

    def test_unknown_table_none(self, db):
        assert db.statistics.stats_for("missing") is None

    def test_distinct_fallback(self):
        stats = TableStats(row_count=100, columns={})
        assert stats.distinct("anything") == pytest.approx(10.0)


class TestScanAndFilterEstimates:
    def test_scan_rows_exact(self, db):
        assert estimate(db, "SELECT k FROM t").estimated_rows == 100

    def test_equality_uses_ndv(self, db):
        out = estimate(db, "SELECT k FROM t WHERE v = 1")
        assert out.estimated_rows == pytest.approx(10.0)

    def test_range_interpolates_minmax(self, db):
        out = estimate(db, "SELECT k FROM t WHERE k > 49")
        assert out.estimated_rows == pytest.approx(50.0, rel=0.1)

    def test_conjunction_multiplies(self, db):
        out = estimate(db, "SELECT k FROM t WHERE v = 1 AND k > 49")
        assert out.estimated_rows == pytest.approx(5.0, rel=0.2)


class TestJoinEstimates:
    def test_fk_join_with_stats_accurate(self, db):
        out = estimate(db, "SELECT 1 FROM t, s WHERE t.k = s.k")
        # |t|*|s|/max(ndv) = 100*10/100 = 10; actual is 10.
        assert out.estimated_rows == pytest.approx(10.0)

    def test_unknown_stats_trigger_magic_selectivity(self, db):
        model = DefaultCostModel()
        provider = StatisticsProvider(db.catalog)
        provider.set_override("u", TableStats(row_count=1000, columns={}))
        provider.set_override("w", TableStats(row_count=1000, columns={}))
        db.create_table_from_dict("u", {"x": [1]})
        db.create_table_from_dict("w", {"x": [1]})
        from repro.sql.parser import parse_statement
        from repro.engine.planner import Planner
        from repro.engine.optimizer import Optimizer

        statement = parse_statement("SELECT 1 FROM u, w WHERE u.x = w.x")
        planner = Planner(lambda name: None)
        plan = Optimizer(db.catalog, provider, db.udfs).optimize(
            planner.plan_select(statement)
        )
        out = model.estimate(plan, provider)
        assert out.estimated_rows if False else True
        assert out.rows == pytest.approx(
            MAGIC_JOIN_SELECTIVITY * 1000 * 1000
        )

    def test_saturation(self, db):
        model = DefaultCostModel()
        provider = StatisticsProvider(db.catalog)
        huge = TableStats(row_count=1e10, columns={})
        provider.set_override("u", huge)
        provider.set_override("w", huge)
        db.create_table_from_dict("u", {"x": [1]})
        db.create_table_from_dict("w", {"x": [1]})
        from repro.sql.parser import parse_statement
        from repro.engine.planner import Planner
        from repro.engine.optimizer import Optimizer

        statement = parse_statement("SELECT 1 FROM u, w WHERE u.x = w.x")
        plan = Optimizer(db.catalog, provider, db.udfs).optimize(
            Planner(lambda name: None).plan_select(statement)
        )
        out = model.estimate(plan, provider)
        assert out.rows <= CARDINALITY_SATURATION


class TestAggregateEstimates:
    def test_group_count_from_ndv(self, db):
        out = estimate(db, "SELECT v, count(*) FROM t GROUP BY v")
        assert out.estimated_rows == pytest.approx(10.0)

    def test_global_aggregate_single_row(self, db):
        out = estimate(db, "SELECT count(*) FROM t")
        assert out.estimated_rows == 1.0


class TestCostMonotonicity:
    def test_more_work_costs_more(self, db):
        cheap = estimate(db, "SELECT k FROM s").estimated_cost
        pricey = estimate(
            db, "SELECT t.k FROM t, s WHERE t.k = s.k ORDER BY t.k"
        ).estimated_cost
        assert pricey > cheap

    def test_udf_charged(self, db):
        import numpy as np

        from repro.engine.udf import BatchUdf
        from repro.storage.schema import DataType

        db.register_udf(
            BatchUdf(
                name="nUDF_x",
                fn=lambda v: np.ones(len(v), dtype=bool),
                return_dtype=DataType.BOOL,
            )
        )
        without = estimate(db, "SELECT k FROM t WHERE v = 1").estimated_cost
        with_udf = estimate(
            db, "SELECT k FROM t WHERE nUDF_x(v) = TRUE AND v = 1"
        ).estimated_cost
        assert with_udf > without
