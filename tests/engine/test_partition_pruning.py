"""Zone-map partition pruning: differential correctness + plumbing.

Pruning is an optimization, never a semantics change: every query must
return the identical multiset with pruning active (partitioned table,
folding on) and inactive (same data in a monolithic table).  The corpus
deliberately includes NULL-heavy columns — zone maps carry null counts,
and a partition of all-NULL values must still be scanned for IS NULL
predicates yet prunable for range predicates.
"""

import numpy as np
import pytest

from repro.engine import Database
from repro.obs.metrics import MetricsRegistry
from repro.storage.column import Column
from repro.storage.partition import PartitionedTable
from repro.storage.schema import DataType
from tests.engine.differential import normalize_rows

ROWS = 64
STEP = 8


def columns():
    # Ascending ints → tight zone maps; every third string NULL; one
    # whole partition (rows 16..23) of NULL measurements.
    measure_valid = np.array(
        [not (16 <= i < 24) for i in range(ROWS)], dtype=bool
    )
    return [
        Column("a", DataType.INT64, np.arange(ROWS, dtype=np.int64)),
        Column(
            "m",
            DataType.FLOAT64,
            np.where(measure_valid, np.arange(ROWS, dtype=np.float64), np.nan),
            measure_valid,
        ),
        Column(
            "s",
            DataType.STRING,
            np.array(
                [f"name{i}" if i % 3 else None for i in range(ROWS)],
                dtype=object,
            ),
            np.array([i % 3 != 0 for i in range(ROWS)]),
        ),
        Column(
            "d",
            DataType.DATE,
            (738156 + np.arange(ROWS) * 7).astype(np.int64),  # weekly dates
        ),
    ]


CORPUS = [
    "SELECT a FROM t WHERE a >= 40",
    "SELECT a, s FROM t WHERE a < 5",
    "SELECT count(*) FROM t WHERE a BETWEEN 10 AND 20",
    "SELECT sum(a) FROM t WHERE a > 100",  # contradiction: all pruned
    "SELECT a FROM t WHERE m IS NULL",
    "SELECT a FROM t WHERE m IS NOT NULL AND m < 10.0",
    "SELECT s FROM t WHERE s IS NULL AND a >= 48",
    "SELECT count(*) FROM t WHERE d >= '2022-06-01'",
    "SELECT a FROM t WHERE d < '2021-12-15' OR a > 60",
    "SELECT sum(a), count(m) FROM t WHERE a >= 24 AND a < 40",
]


@pytest.fixture()
def pruned_db():
    db = Database()
    db.register_table(PartitionedTable("t", columns(), partition_rows=STEP))
    return db


@pytest.fixture()
def plain_db():
    db = Database(fold_constants=False)
    from repro.storage.table import Table

    db.register_table(Table("t", columns()))
    return db


class TestPruningDifferential:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_same_multiset_with_and_without_pruning(
        self, pruned_db, plain_db, sql
    ):
        assert normalize_rows(pruned_db.query(sql)) == normalize_rows(
            plain_db.query(sql)
        )


class TestPruningPlumbing:
    def test_explain_surfaces_selection(self, pruned_db):
        rows = pruned_db.query("EXPLAIN SELECT a FROM t WHERE a >= 40")
        text = "\n".join(r[0] for r in rows)
        assert "[partitions: 3/8 after zone-map pruning]" in text

    def test_pruned_metric_counts_skips(self):
        metrics = MetricsRegistry()
        db = Database(metrics=metrics)
        db.register_table(PartitionedTable("t", columns(), partition_rows=STEP))
        db.query("SELECT a FROM t WHERE a >= 40")
        snapshot = {
            name: metric.to_dict()["value"]
            for name, metric in metrics._metrics.items()
        }
        assert snapshot["partitions_pruned_total"] == 5.0
        assert snapshot["partitions_scanned_total"] == 3.0

    def test_stale_selection_ignored_after_mutation(self, pruned_db):
        sql = "SELECT count(*) FROM t WHERE a >= 40"
        assert pruned_db.query(sql) == [(24,)]
        # Append rows the cached selection has never seen; the executor
        # must notice the data_version bump and scan everything.
        pruned_db.execute("INSERT INTO t (a, m, s, d) VALUES (99, 1.0, 'x', "
                          "'2023-01-01')")
        assert pruned_db.query(sql) == [(25,)]

    def test_selective_scan_touches_fewer_partitions(self):
        metrics = MetricsRegistry()
        db = Database(metrics=metrics)
        db.register_table(PartitionedTable("t", columns(), partition_rows=STEP))
        db.query("SELECT count(*) FROM t")  # full scan: 8 partitions
        db.query("SELECT count(*) FROM t WHERE a < 8")  # selective: 1
        scanned = metrics._metrics["partitions_scanned_total"].to_dict()[
            "value"
        ]
        assert scanned == 9.0
