"""Grace hash join spill: differential correctness and accounting.

Under a query memory budget, a hash join whose build side exceeds a
quarter of the budget hash-partitions both sides, writes the build
partitions to disk, and probes partition-at-a-time.  The join result
must be the same multiset as the in-memory join — including NULL-key
rows (never matching), string payloads with NULLs (spilled as unicode
arrays + validity), and residual predicates applied after the join.
"""

import numpy as np
import pytest

from repro.engine import Database
from repro.obs.metrics import MetricsRegistry
from tests.engine.differential import normalize_rows

N_BUILD = 4_000
N_PROBE = 6_000
#: Small enough that the ~200KB build side trips the budget // 4 spill
#: threshold, large enough that every partition still sees real data.
BUDGET = 512 * 1024


def tables():
    rng = np.random.default_rng(11)
    build_key = [int(k) if k % 7 else None for k in
                 rng.integers(0, 2_000, N_BUILD)]
    return {
        "build": {
            "bk": build_key,
            "tag": [f"tag{k % 13}" if k % 5 else None for k in range(N_BUILD)],
            "score": rng.normal(size=N_BUILD).round(3).tolist(),
        },
        "probe": {
            "pk": [int(k) if k % 9 else None for k in
                   rng.integers(0, 2_000, N_PROBE)],
            "w": rng.normal(size=N_PROBE).round(3).tolist(),
        },
    }


QUERIES = [
    "SELECT count(*) FROM build b JOIN probe p ON b.bk = p.pk",
    "SELECT b.tag, count(*) FROM build b JOIN probe p ON b.bk = p.pk "
    "GROUP BY b.tag",
    "SELECT count(*) FROM build b JOIN probe p ON b.bk = p.pk "
    "WHERE b.score > p.w",
    "SELECT b.bk, b.tag FROM build b JOIN probe p ON b.bk = p.pk "
    "WHERE p.w > 2.5",
]


@pytest.fixture(scope="module")
def databases():
    data = tables()
    budgeted = Database(query_memory_bytes=BUDGET)
    unbudgeted = Database()
    for db in (budgeted, unbudgeted):
        for name, cols in data.items():
            db.create_table_from_dict(name, dict(cols))
    return budgeted, unbudgeted


class TestSpillDifferential:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_spilled_join_matches_in_memory(self, databases, sql):
        budgeted, unbudgeted = databases
        assert normalize_rows(budgeted.query(sql)) == normalize_rows(
            unbudgeted.query(sql)
        )


class TestSpillAccounting:
    def test_spill_metrics_and_stats(self):
        metrics = MetricsRegistry()
        db = Database(query_memory_bytes=BUDGET, metrics=metrics)
        for name, cols in tables().items():
            db.create_table_from_dict(name, dict(cols))
        db.query("SELECT count(*) FROM build b JOIN probe p ON b.bk = p.pk")
        values = {
            name: metric.to_dict()["value"]
            for name, metric in metrics._metrics.items()
        }
        assert values["join_spill_partitions_total"] >= 2
        assert values["join_spill_bytes_total"] > 0

    def test_no_spill_without_budget(self):
        metrics = MetricsRegistry()
        db = Database(metrics=metrics)
        for name, cols in tables().items():
            db.create_table_from_dict(name, dict(cols))
        db.query("SELECT count(*) FROM build b JOIN probe p ON b.bk = p.pk")
        assert "join_spill_partitions_total" not in metrics._metrics

    def test_small_build_side_stays_in_memory(self):
        metrics = MetricsRegistry()
        db = Database(query_memory_bytes=64 * 1024 * 1024, metrics=metrics)
        for name, cols in tables().items():
            db.create_table_from_dict(name, dict(cols))
        db.query("SELECT count(*) FROM build b JOIN probe p ON b.bk = p.pk")
        assert "join_spill_partitions_total" not in metrics._metrics
