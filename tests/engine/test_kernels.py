"""Fused expression kernels: fused-vs-interpreted differential + cache.

``Database(fused_kernels=False)`` forces the interpreting evaluator, so
every query below runs both ways over the same NULL-bearing data and
must return byte-identical rows — the kernels reimplement 3VL, NULL
propagation, and sentinel handling, and this differential is what keeps
the two implementations from drifting.

The cache tests pin the invalidation key: SQL text + frame column
signature + UDF-registry generation.  A UDF registered *after* a
builtin was compiled must shadow it (generation bump), and the same SQL
against a re-created table with different dtypes must recompile
(signature change).
"""

import warnings

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.udf import BatchUdf
from repro.storage.schema import DataType

TABLES = {
    "t": {
        "a": [10, None, 30, None, 50, -60, 70, None],
        "b": [1, 2, None, 4, None, 6, 7, 8],
        "f": [1.5, -2.5, None, 4.5, 5.5, None, 7.5, 8.5],
        "c": [True, None, False, True, None, False, True, False],
        "s": ["x", None, "y", "x", None, "y", "x", "y"],
    }
}

#: Every expression family the compiler claims: comparisons, Kleene
#: logic, arithmetic (incl. division sentinel patching), unary ops,
#: IS NULL, BETWEEN, intDiv/modulo.  Strings/CASE/UDFs stay
#: interpreter-only (the kernel must *bail*, not mis-evaluate).
QUERIES = [
    "SELECT a, b, f FROM t WHERE a > 20",
    "SELECT a FROM t WHERE a > 20 AND b < 8",
    "SELECT a FROM t WHERE a > 20 OR f < 0.0",
    "SELECT a FROM t WHERE NOT (a > 20)",
    "SELECT a FROM t WHERE NOT (c AND b > 2)",
    "SELECT a FROM t WHERE c",
    "SELECT a FROM t WHERE c OR a > 40",
    "SELECT a FROM t WHERE a IS NULL",
    "SELECT a FROM t WHERE a IS NOT NULL AND b IS NOT NULL",
    "SELECT a FROM t WHERE a BETWEEN 20 AND 60",
    "SELECT a FROM t WHERE a NOT BETWEEN 20 AND 60",
    "SELECT a FROM t WHERE f > a",
    "SELECT a FROM t WHERE a != 30",
    "SELECT a + b, a - b, a * b FROM t",
    "SELECT a / b, a + f FROM t",
    "SELECT -a, -f FROM t",
    "SELECT a + 1, f * 2.0, a > b FROM t",
    "SELECT intDiv(a, 3), modulo(a, 7) FROM t",
    "SELECT intDiv(f, 2), modulo(b, 3) FROM t",
    "SELECT intDiv(a, b), modulo(a, b) FROM t",
    # interpreter-only constructs mixed in: the kernel path must bail
    # cleanly and produce identical results through the evaluator.
    "SELECT upper(s), a FROM t WHERE s = 'x'",
    "SELECT CASE WHEN a > 20 THEN a ELSE b END FROM t",
    "SELECT coalesce(a, b, 0) FROM t WHERE a + b > 5",
]


def _build(**kwargs) -> Database:
    db = Database(**kwargs)
    for name, columns in TABLES.items():
        db.create_table_from_dict(name, dict(columns))
    return db


@pytest.fixture(scope="module")
def fused_db():
    return _build(fused_kernels=True)


@pytest.fixture(scope="module")
def interpreted_db():
    return _build(fused_kernels=False)


class TestFusedVsInterpreted:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_identical_rows(self, fused_db, interpreted_db, sql):
        assert fused_db.query(sql) == interpreted_db.query(sql)

    def test_no_runtime_warnings_from_null_sentinels(self, fused_db):
        # intDiv/modulo used to cast float NaN sentinels with astype
        # *before* masking, tripping "invalid value encountered in cast".
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rows = fused_db.query("SELECT intDiv(f, 2), modulo(f, 3) FROM t")
        assert rows[2] == (None, None)  # f IS NULL row stays NULL

    def test_division_by_null_denominator(self, fused_db, interpreted_db):
        sql = "SELECT a / b, intDiv(a, b) FROM t"
        rows = fused_db.query(sql)
        assert rows == interpreted_db.query(sql)
        assert rows[1] == (None, None)  # a IS NULL
        assert rows[2] == (None, None)  # b IS NULL

    def test_kernels_off_means_no_cache(self, interpreted_db):
        assert interpreted_db.kernels is None


class TestKernelCache:
    def test_hits_and_misses(self):
        db = _build()
        db.query("SELECT a + b FROM t WHERE a > 20")
        misses = db.kernels.misses
        assert misses >= 2  # conjunct + projection compiled once each
        db.query("SELECT a + b FROM t WHERE a > 20")
        assert db.kernels.misses == misses  # fully served from cache
        assert db.kernels.hits >= 2
        db.close()

    def test_uncompilable_is_negative_cached(self):
        db = _build()
        db.query("SELECT upper(s) FROM t")
        size = len(db.kernels)
        db.query("SELECT upper(s) FROM t")
        assert len(db.kernels) == size  # the bail is cached, not retried
        db.close()

    def test_udf_registration_shadows_compiled_builtin(self):
        db = _build()
        before = db.query("SELECT intDiv(a, 3) FROM t")
        assert before[0] == (3,)
        generation = db.udfs.generation
        db.register_udf(
            BatchUdf(
                name="intDiv",
                fn=lambda a, b: a + 1000 * b,
                return_dtype=DataType.INT64,
            )
        )
        assert db.udfs.generation == generation + 1
        after = db.query("SELECT intDiv(a, 3) FROM t")
        assert after[0] == (3010,)  # the UDF, not the stale kernel
        db.close()

    def test_schema_change_recompiles(self):
        db = Database()
        db.create_table_from_dict("u", {"x": [10, 20, None]})
        assert db.query("SELECT x / 4 FROM u") == [(2.5,), (5.0,), (None,)]
        db.execute("DROP TABLE u")
        db.create_table_from_dict("u", {"x": [1.5, 2.5, None]})
        # Same SQL text, new column signature: must not reuse the int64
        # kernel (the signature is part of the cache key).
        assert db.query("SELECT x / 4 FROM u") == [
            (0.375,),
            (0.625,),
            (None,),
        ]
        db.close()

    def test_borrowed_column_data_never_mutated(self):
        db = _build()
        table = db.table("t")
        before = {c.name: c.data.copy() for c in table.columns}
        for sql in QUERIES:
            db.query(sql)
        for column in table.columns:
            expected = before[column.name]
            if column.data.dtype.kind == "f":
                assert np.array_equal(
                    column.data, expected, equal_nan=True
                ), column.name
            else:
                assert np.array_equal(column.data, expected), column.name
        db.close()


class TestKernelsUnderParallelism:
    def test_fused_parallel_matches_interpreted_serial(self):
        rng = np.random.default_rng(3)
        rows = 500
        data = {
            "a": rng.integers(-50, 50, rows).tolist(),
            "f": rng.normal(size=rows).round(3).tolist(),
        }
        for index in range(0, rows, 9):
            data["a"][index] = None
            data["f"][(index + 4) % rows] = None
        reference = Database(workers=1, fused_kernels=False)
        subject = Database(workers=4, morsel_rows=16, fused_kernels=True)
        for db in (reference, subject):
            db.create_table_from_dict("t", data)
        for sql in [
            "SELECT a FROM t WHERE a > 0 AND f < 0.5",
            "SELECT a + 1, f * 2.0 FROM t WHERE a IS NOT NULL",
            "SELECT intDiv(a, 7), modulo(a, 5) FROM t",
            "SELECT a FROM t WHERE a BETWEEN -10 AND 10 OR f > 1.0",
        ]:
            assert subject.query(sql) == reference.query(sql), sql
        subject.close()
        reference.close()
