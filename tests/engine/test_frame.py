"""Frame resolution and transformations."""

import numpy as np
import pytest

from repro.engine.frame import Frame, FrameColumn, concat_frames
from repro.errors import ExecutionError, PlanError
from repro.storage.schema import DataType
from repro.storage.table import Table


def make_frame():
    return Frame(
        [
            FrameColumn("T", "a", DataType.INT64, np.array([1, 2, 3])),
            FrameColumn("T", "b", DataType.FLOAT64, np.array([1.0, 2.0, 3.0])),
            FrameColumn("S", "a", DataType.INT64, np.array([9, 8, 7])),
        ]
    )


class TestResolution:
    def test_qualified(self):
        frame = make_frame()
        assert frame.resolve("a", "T").data.tolist() == [1, 2, 3]
        assert frame.resolve("a", "S").data.tolist() == [9, 8, 7]

    def test_unqualified_unique(self):
        frame = make_frame()
        assert frame.resolve("b", None).data.tolist() == [1.0, 2.0, 3.0]

    def test_unqualified_ambiguous(self):
        frame = make_frame()
        with pytest.raises(PlanError, match="ambiguous"):
            frame.resolve("a", None)

    def test_unknown(self):
        with pytest.raises(PlanError, match="unknown column"):
            make_frame().resolve("zzz", None)

    def test_case_insensitive(self):
        frame = make_frame()
        assert frame.resolve("A", "t").data.tolist() == [1, 2, 3]

    def test_duplicate_same_vector_tolerated(self):
        data = np.array([1, 2])
        frame = Frame(
            [
                FrameColumn("X", "a", DataType.INT64, data),
                FrameColumn("Y", "a", DataType.INT64, data),
            ]
        )
        assert frame.resolve("a", None).data is data


class TestTransforms:
    def test_filter_take_head(self):
        frame = make_frame()
        assert frame.filter(np.array([True, False, True])).num_rows == 2
        assert frame.take(np.array([2, 0])).resolve("b", None).data.tolist() == [
            3.0,
            1.0,
        ]
        assert frame.head(1).num_rows == 1

    def test_ragged_rejected(self):
        with pytest.raises(ExecutionError):
            Frame(
                [
                    FrameColumn(None, "a", DataType.INT64, np.array([1])),
                    FrameColumn(None, "b", DataType.INT64, np.array([1, 2])),
                ]
            )

    def test_concat_columns_row_mismatch(self):
        left = Frame([FrameColumn(None, "a", DataType.INT64, np.array([1]))])
        right = Frame([FrameColumn(None, "b", DataType.INT64, np.array([1, 2]))])
        with pytest.raises(ExecutionError):
            left.concat_columns(right)

    def test_concat_frames_vertical(self):
        a = Frame([FrameColumn(None, "x", DataType.INT64, np.array([1]))])
        b = Frame([FrameColumn(None, "x", DataType.INT64, np.array([2, 3]))])
        combined = concat_frames([a, b])
        assert combined.resolve("x", None).data.tolist() == [1, 2, 3]


class TestTableConversion:
    def test_roundtrip(self):
        table = Table.from_dict("t", {"a": [1, 2], "s": ["x", "y"]})
        frame = Frame.from_table(table, "t")
        back = frame.to_table("out")
        assert back.to_rows() == table.to_rows()

    def test_duplicate_output_names_deduplicated(self):
        frame = Frame(
            [
                FrameColumn("X", "a", DataType.INT64, np.array([1])),
                FrameColumn("Y", "a", DataType.INT64, np.array([2])),
            ]
        )
        table = frame.to_table("out")
        assert table.schema.column_names == ["a", "a_1"]


class TestRenameCollisions:
    """Regression: ``to_table`` blindly appended ``_1``, colliding with
    a literal ``x_1`` column already present in the frame."""

    @staticmethod
    def _frame(names):
        return Frame(
            [
                FrameColumn(None, name, DataType.INT64, np.array([i]))
                for i, name in enumerate(names)
            ]
        )

    def test_probe_skips_literal_column_names(self):
        table = self._frame(["x", "x", "x_1"]).to_table("out")
        assert table.schema.column_names == ["x", "x_2", "x_1"]

    def test_probe_skips_already_assigned_names(self):
        table = self._frame(["x", "x", "x"]).to_table("out")
        assert table.schema.column_names == ["x", "x_1", "x_2"]

    def test_case_insensitive_collision(self):
        table = self._frame(["A", "a", "A_1"]).to_table("out")
        assert table.schema.column_names == ["A", "a_2", "A_1"]

    def test_data_follows_the_renamed_columns(self):
        table = self._frame(["x", "x", "x_1"]).to_table("out")
        assert [c.data.tolist() for c in table.columns] == [[0], [1], [2]]
