"""Property-based tests of relational-algebra invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database

settings.register_profile("engine", deadline=None, max_examples=60)
settings.load_profile("engine")


_small_ints = st.integers(min_value=-5, max_value=5)
_tables = st.lists(
    st.tuples(_small_ints, _small_ints), min_size=0, max_size=30
)


def make_db(rows, name="t"):
    db = Database()
    db.create_table_from_dict(
        name,
        {"a": [r[0] for r in rows], "b": [r[1] for r in rows]},
    )
    return db


@given(rows=_tables, threshold=_small_ints)
def test_filter_partitions_rows(rows, threshold):
    """σ_p(T) ∪ σ_¬p(T) == T (counts)."""
    db = make_db(rows)
    matching = db.execute(
        f"SELECT count(*) FROM t WHERE a > {threshold}"
    ).scalar()
    complement = db.execute(
        f"SELECT count(*) FROM t WHERE NOT a > {threshold}"
    ).scalar()
    assert matching + complement == len(rows)


@given(rows=_tables)
def test_projection_preserves_cardinality(rows):
    db = make_db(rows)
    assert db.execute("SELECT count(*) FROM t").scalar() == len(rows)
    projected = db.query("SELECT a + b FROM t")
    assert len(projected) == len(rows)


@given(rows=_tables)
def test_sum_matches_python(rows):
    db = make_db(rows)
    got = db.execute("SELECT sum(a) FROM t").scalar()
    if rows:
        assert got == sum(r[0] for r in rows)
    else:
        # SQL: SUM over zero rows is NULL, not 0.
        assert got is None


@given(rows=_tables)
def test_group_by_sums_to_global(rows):
    """Σ over groups == global aggregate."""
    db = make_db(rows)
    grouped = db.query("SELECT b, count(*) FROM t GROUP BY b")
    assert sum(count for _, count in grouped) == len(rows)
    distinct_keys = {r[1] for r in rows}
    assert len(grouped) == len(distinct_keys)


@given(left=_tables, right=_tables)
def test_join_commutes(left, right):
    """|L ⋈ R| is independent of the FROM order."""
    db = make_db(left, "l")
    db.create_table_from_dict(
        "r", {"a": [x[0] for x in right], "c": [x[1] for x in right]}
    )
    one = db.execute(
        "SELECT count(*) FROM l, r WHERE l.a = r.a"
    ).scalar()
    two = db.execute(
        "SELECT count(*) FROM r, l WHERE l.a = r.a"
    ).scalar()
    brute = sum(
        1 for x in left for y in right if x[0] == y[0]
    )
    assert one == two == brute


@given(rows=_tables)
def test_order_by_is_sorted_and_stable_cardinality(rows):
    db = make_db(rows)
    ordered = [r[0] for r in db.query("SELECT a FROM t ORDER BY a")]
    assert ordered == sorted(x[0] for x in rows)


@given(rows=_tables)
def test_distinct_matches_set_semantics(rows):
    db = make_db(rows)
    got = db.query("SELECT DISTINCT a, b FROM t")
    assert sorted(got) == sorted(set(rows))


@given(rows=_tables, limit=st.integers(min_value=0, max_value=40))
def test_limit_bounds(rows, limit):
    db = make_db(rows)
    got = db.query(f"SELECT a FROM t ORDER BY a LIMIT {limit}")
    assert len(got) == min(limit, len(rows))


@given(rows=_tables)
def test_update_then_scan_consistent(rows):
    db = make_db(rows)
    db.execute("UPDATE t SET a = 0 WHERE a < 0")
    assert db.execute("SELECT count(*) FROM t WHERE a < 0").scalar() == 0
    assert db.execute("SELECT count(*) FROM t").scalar() == len(rows)


@given(rows=_tables)
def test_create_table_as_select_snapshot(rows):
    db = make_db(rows)
    db.execute("CREATE TEMP TABLE snap AS SELECT a, b FROM t")
    db.execute("UPDATE t SET a = 99")
    reread = db.query("SELECT a, b FROM snap")
    assert sorted(reread) == sorted(rows)
