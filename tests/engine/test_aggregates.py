"""Aggregation: grouping, aggregate functions, HAVING, edge cases."""

import math

import numpy as np
import pytest

from repro.engine import Database
from repro.errors import PlanError


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t",
        {
            "g": ["x", "y", "x", "y", "x"],
            "v": [1.0, 2.0, 3.0, 4.0, 5.0],
            "n": [1, 2, 3, 4, 5],
            "flag": [True, False, True, True, False],
        },
    )
    return database


class TestGlobalAggregates:
    def test_sum_int(self, db):
        assert db.execute("SELECT sum(n) FROM t").scalar() == 15

    def test_sum_float(self, db):
        assert db.execute("SELECT sum(v) FROM t").scalar() == 15.0

    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM t").scalar() == 5

    def test_avg(self, db):
        assert db.execute("SELECT avg(v) FROM t").scalar() == 3.0

    def test_min_max(self, db):
        assert db.query("SELECT min(n), max(n) FROM t") == [(1, 5)]

    def test_stddev_samp_matches_numpy(self, db):
        import numpy as np

        expected = np.std([1, 2, 3, 4, 5], ddof=1)
        assert db.execute("SELECT stddevSamp(v) FROM t").scalar() == (
            pytest.approx(expected)
        )

    def test_var_pop(self, db):
        import numpy as np

        expected = np.var([1, 2, 3, 4, 5])
        assert db.execute("SELECT varPop(v) FROM t").scalar() == (
            pytest.approx(expected)
        )

    def test_count_boolean_expression_is_count_if(self, db):
        # Dialect choice matching the paper's Type-2 query:
        # count(<condition>) counts rows where the condition holds.
        assert db.execute("SELECT count(flag = TRUE) FROM t").scalar() == 3

    def test_count_if(self, db):
        assert db.execute("SELECT countIf(n > 3) FROM t").scalar() == 2

    def test_sum_if(self, db):
        assert db.execute("SELECT sumIf(n, g = 'x') FROM t").scalar() == 9.0

    def test_count_distinct(self, db):
        assert db.execute("SELECT count(DISTINCT g) FROM t").scalar() == 2

    def test_any(self, db):
        assert db.execute("SELECT any(g) FROM t").scalar() == "x"

    def test_group_array(self, db):
        value = db.execute("SELECT groupArray(n) FROM t").scalar()
        assert value == [1, 2, 3, 4, 5]

    def test_empty_input(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE n > 99").scalar() == 0
        # SQL: SUM/AVG/MIN/MAX over zero rows yield NULL, not 0.
        assert db.execute("SELECT sum(n) FROM t WHERE n > 99").scalar() is None
        assert db.execute("SELECT avg(n) FROM t WHERE n > 99").scalar() is None
        assert db.execute("SELECT min(n) FROM t WHERE n > 99").scalar() is None


class TestGroupBy:
    def test_basic(self, db):
        rows = db.query("SELECT g, sum(n) FROM t GROUP BY g ORDER BY g")
        assert rows == [("x", 9), ("y", 6)]

    def test_group_keys_first_appearance_order(self, db):
        rows = db.query("SELECT g, count(*) FROM t GROUP BY g")
        assert [r[0] for r in rows] == ["x", "y"]

    def test_expression_over_aggregates(self, db):
        rows = db.query(
            "SELECT g, sum(v) / count(*) FROM t GROUP BY g ORDER BY g"
        )
        assert rows == [("x", 3.0), ("y", 3.0)]

    def test_group_by_expression(self, db):
        rows = db.query(
            "SELECT n % 2, count(*) FROM t GROUP BY n % 2 ORDER BY n % 2"
        )
        assert rows == [(0, 2), (1, 3)]

    def test_group_by_int_div(self, db):
        rows = db.query(
            "SELECT intDiv(n, 3), count(*) FROM t "
            "GROUP BY intDiv(n, 3) ORDER BY intDiv(n, 3)"
        )
        assert rows == [(0, 2), (1, 3)]

    def test_multi_key(self, db):
        rows = db.query(
            "SELECT g, flag, count(*) FROM t GROUP BY g, flag ORDER BY g, flag"
        )
        assert ("x", True, 2) in rows

    def test_having(self, db):
        rows = db.query(
            "SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 2"
        )
        assert rows == [("x", 3)]

    def test_order_by_aggregate(self, db):
        rows = db.query(
            "SELECT g, sum(n) FROM t GROUP BY g ORDER BY sum(n) DESC"
        )
        assert rows[0] == ("x", 9)

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT g, n FROM t GROUP BY g")

    def test_having_without_group_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT n FROM t HAVING n > 1")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT n FROM t WHERE sum(n) > 1")


class TestAggregateOverJoin:
    def test_paper_type2_shape(self, db):
        db.create_table_from_dict(
            "s", {"g": ["x", "y"], "w": [100.0, 200.0]}
        )
        rows = db.query(
            "SELECT t.g, count(t.flag = TRUE) / sum(s.w) "
            "FROM t, s WHERE t.g = s.g GROUP BY t.g ORDER BY t.g"
        )
        assert rows[0][0] == "x"
        assert rows[0][1] == pytest.approx(2 / 300.0)


class TestInt64SumPrecision:
    """Regression: INT64 SUM went through float64 bincount, losing
    precision above 2**53."""

    def test_global_sum_near_2_to_60(self):
        db = Database()
        big = 2**60
        db.create_table_from_dict("big", {"v": [big, 1, big, 3]})
        result = db.execute("SELECT sum(v) FROM big").scalar()
        assert result == 2 * big + 4  # off by 4 under float64 rounding
        assert isinstance(result, (int, np.integer))

    def test_grouped_sum_exact(self):
        db = Database()
        big = 2**60
        db.create_table_from_dict(
            "big", {"g": ["a", "a", "b", "b"], "v": [big, 1, big, 3]}
        )
        rows = db.query("SELECT g, sum(v) FROM big GROUP BY g ORDER BY g")
        assert rows == [("a", big + 1), ("b", big + 3)]

    def test_bool_sum_is_integer_count(self):
        db = Database()
        db.create_table_from_dict("f", {"b": [True, False, True, True]})
        assert db.execute("SELECT sum(b) FROM f").scalar() == 3

    def test_float_sum_unchanged(self, db):
        assert db.execute("SELECT sum(v) FROM t").scalar() == 15.0


class TestVectorizedDistinct:
    """``_distinct_counts`` now runs on the ``_factorize`` machinery;
    results must be identical to the old per-row set loop."""

    def test_matches_python_reference(self):
        rng = np.random.default_rng(5)
        groups = rng.integers(0, 7, 500)
        values = rng.integers(0, 20, 500)
        from repro.engine.physical import _distinct_counts

        reference = [
            len({v for g, v in zip(groups, values) if g == group})
            for group in range(7)
        ]
        got = _distinct_counts(values, groups.astype(np.int64), 7)
        assert got.tolist() == reference
        assert got.dtype == np.int64

    def test_object_values_and_empty_groups(self):
        from repro.engine.physical import _distinct_counts

        values = np.array(["x", "y", "x", "z"], dtype=object)
        groups = np.array([0, 0, 2, 2], dtype=np.int64)
        assert _distinct_counts(values, groups, 4).tolist() == [2, 0, 2, 0]

    def test_empty_input(self):
        from repro.engine.physical import _distinct_counts

        out = _distinct_counts(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 3
        )
        assert out.tolist() == [0, 0, 0]

    def test_sql_count_distinct_grouped(self):
        db = Database()
        db.create_table_from_dict(
            "cd", {"g": [1, 1, 2, 2, 2], "v": ["x", "x", "y", "z", "y"]}
        )
        rows = db.query(
            "SELECT g, count(DISTINCT v) FROM cd GROUP BY g ORDER BY g"
        )
        assert rows == [(1, 1), (2, 2)]
