"""The content-hashed inference cache and parallel UDF dispatch."""

import threading

import numpy as np
import pytest

from repro.engine import BatchUdf, Database, InferenceCache, UdfRegistry
from repro.engine.infer_cache import (
    ENTRY_OVERHEAD_BYTES,
    MISSING,
    CacheSnapshot,
    hash_row,
    make_cache,
)
from repro.storage.schema import DataType


class TestRowHashing:
    def test_deterministic(self):
        assert hash_row([1, "x", 2.5]) == hash_row([1, "x", 2.5])
        assert len(hash_row([1])) == 16

    def test_type_tags_prevent_cross_type_collisions(self):
        # 1 == 1.0 == True in Python, but a UDF may distinguish them.
        digests = {
            hash_row([1]),
            hash_row([1.0]),
            hash_row([True]),
            hash_row(["1"]),
            hash_row([b"1"]),
            hash_row([None]),
        }
        assert len(digests) == 6

    def test_ndarray_content_sensitivity(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        same = np.arange(6, dtype=np.float64).reshape(2, 3)
        different = a + 1e-12
        assert hash_row([a]) == hash_row([same])
        assert hash_row([a]) != hash_row([different])
        # Same bytes, different shape or dtype must not collide.
        assert hash_row([a]) != hash_row([a.reshape(3, 2)])
        assert hash_row([a]) != hash_row([a.astype(np.float32)])


class TestInferenceCache:
    def test_partial_hit_lookup(self):
        cache = InferenceCache(1 << 20)
        k1, k2, k3 = hash_row([1]), hash_row([2]), hash_row([3])
        cache.put("f", k1, 10.0)
        values, missed = cache.get_many("f", [k1, k2, k3])
        assert values[0] == 10.0
        assert values[1] is MISSING and values[2] is MISSING
        assert missed == [1, 2]
        assert cache.hits == 1 and cache.misses == 2

    def test_namespaces_are_isolated(self):
        cache = InferenceCache(1 << 20)
        key = hash_row([1])
        cache.put("f", key, "from_f")
        values, missed = cache.get_many("g", [key])
        assert missed == [0]
        cache.invalidate("g")
        assert cache.get_many("f", [key])[0] == ["from_f"]

    def test_lru_eviction_respects_budget(self):
        per_entry = ENTRY_OVERHEAD_BYTES + 8  # float payload
        cache = InferenceCache(3 * per_entry)
        keys = [hash_row([i]) for i in range(4)]
        for i in range(3):
            cache.put("f", keys[i], float(i))
        # Touch key 0 so key 1 becomes the LRU victim.
        cache.get_many("f", [keys[0]])
        cache.put("f", keys[3], 3.0)
        assert cache.evictions == 1
        assert cache.bytes_used == 3 * per_entry
        values, missed = cache.get_many("f", keys)
        assert missed == [1]
        assert values[0] == 0.0 and values[2] == 2.0 and values[3] == 3.0

    def test_oversized_value_is_not_cached(self):
        cache = InferenceCache(256)
        cache.put("f", hash_row([1]), np.zeros(1024))
        assert len(cache) == 0 and cache.bytes_used == 0

    def test_invalidate_refunds_bytes(self):
        cache = InferenceCache(1 << 20)
        cache.put("f", hash_row([1]), 1.0)
        cache.put("g", hash_row([1]), 2.0)
        dropped = cache.invalidate("f")
        assert dropped == 1 and len(cache) == 1
        assert cache.bytes_used == ENTRY_OVERHEAD_BYTES + 8

    def test_expected_miss_rate(self):
        cache = InferenceCache(1 << 20)
        assert cache.expected_miss_rate("f") == 1.0
        k1, k2 = hash_row([1]), hash_row([2])
        cache.get_many("f", [k1, k2])  # 2 misses
        cache.put("f", k1, 1.0)
        cache.put("f", k2, 2.0)
        cache.get_many("f", [k1, k2])  # 2 hits
        assert cache.expected_miss_rate("f") == pytest.approx(0.5)
        for _ in range(200):
            cache.get_many("f", [k1, k2])
        assert cache.expected_miss_rate("f", floor=0.01) == 0.01

    def test_snapshot_delta(self):
        cache = InferenceCache(1 << 20)
        before = cache.snapshot()
        cache.get_many("f", [hash_row([1])])
        cache.put("f", hash_row([1]), 1.0)
        cache.get_many("f", [hash_row([1])])
        delta = before.delta(cache.snapshot())
        assert delta["hits"] == 1 and delta["misses"] == 1
        assert delta["bytes"] == cache.bytes_used

    def test_make_cache_disabled_by_zero(self):
        assert make_cache(0) is None
        assert make_cache(None) is None
        assert isinstance(make_cache(1024), InferenceCache)
        with pytest.raises(ValueError):
            InferenceCache(0)

    def test_thread_safety_smoke(self):
        cache = InferenceCache(64 * 1024)
        keys = [hash_row([i]) for i in range(200)]

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(300):
                i = int(rng.integers(0, len(keys)))
                cache.get_many("f", [keys[i]])
                cache.put("f", keys[i], float(i))

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.bytes_used <= cache.max_bytes
        assert cache.hits + cache.misses == 8 * 300


def _counting_udf(counter, name="score", dtype=DataType.FLOAT64, fn=None):
    def wrapped(values):
        counter.append(len(values))
        if fn is not None:
            return fn(values)
        return np.asarray(values, dtype=np.float64) * 2.0

    return BatchUdf(name=name, fn=wrapped, return_dtype=dtype)


class TestCachedInvoke:
    def test_partial_hit_runs_model_on_missed_rows_only(self):
        registry = UdfRegistry()
        registry.attach_cache(InferenceCache(1 << 20))
        counter: list[int] = []
        registry.register(_counting_udf(counter))
        first = registry.invoke(
            "score", [np.array([1.0, 2.0, 3.0])]
        ).materialize(3)
        # Overlapping batch: rows 2.0 and 3.0 are warm, 4.0 is not.
        second = registry.invoke(
            "score", [np.array([2.0, 3.0, 4.0])]
        ).materialize(3)
        assert counter == [3, 1]
        assert first.tolist() == [2.0, 4.0, 6.0]
        assert second.tolist() == [4.0, 6.0, 8.0]
        stats = registry.get("score").stats
        assert stats.cache_hits == 2 and stats.cache_misses == 4
        assert stats.rows == 4  # model-evaluated rows only

    def test_cached_results_bit_identical_for_strings(self):
        registry = UdfRegistry()
        registry.attach_cache(InferenceCache(1 << 20))
        counter: list[int] = []
        registry.register(
            _counting_udf(
                counter,
                name="label",
                dtype=DataType.STRING,
                fn=lambda v: np.array(
                    [f"c{x:.1f}" for x in v], dtype=object
                ),
            )
        )
        args = [np.array([1.0, 2.0, 1.0])]
        cold = registry.invoke("label", args).materialize(3)
        warm = registry.invoke("label", args).materialize(3)
        assert cold.tolist() == warm.tolist() == ["c1.0", "c2.0", "c1.0"]
        assert sum(counter) == 3  # duplicate row still cold-batch-evaluated

    def test_replace_and_unregister_invalidate_namespace(self):
        registry = UdfRegistry()
        registry.attach_cache(InferenceCache(1 << 20))
        counter: list[int] = []
        registry.register(_counting_udf(counter))
        args = [np.array([1.0, 2.0])]
        registry.invoke("score", args)
        assert sum(counter) == 2

        # A new model under the same name must not see stale entries.
        registry.register(
            BatchUdf(
                name="score",
                fn=lambda v: np.asarray(v, dtype=np.float64) * 3.0,
                return_dtype=DataType.FLOAT64,
            ),
            replace=True,
        )
        swapped = registry.invoke("score", args).materialize(2)
        assert swapped.tolist() == [3.0, 6.0]

        registry.unregister("score")
        assert len(registry.cache) == 0

    def test_uncacheable_udf_bypasses_cache(self):
        registry = UdfRegistry()
        registry.attach_cache(InferenceCache(1 << 20))
        counter: list[int] = []
        udf = _counting_udf(counter)
        udf.cacheable = False
        registry.register(udf)
        args = [np.array([1.0, 2.0])]
        registry.invoke("score", args)
        registry.invoke("score", args)
        assert counter == [2, 2]
        assert len(registry.cache) == 0


class TestMorselDispatch:
    def test_morsels_match_inline_results(self):
        from concurrent.futures import ThreadPoolExecutor

        values = np.linspace(0.0, 1.0, 1000)
        inline = UdfRegistry()
        inline.register(_counting_udf([]))
        expected = inline.invoke("score", [values]).materialize(1000)

        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = UdfRegistry()
            parallel.attach_executor(pool, morsel_rows=64)
            counter: list[int] = []
            parallel.register(_counting_udf(counter))
            got = parallel.invoke("score", [values]).materialize(1000)
        assert got.tolist() == expected.tolist()
        assert len(counter) == 16 and sum(counter) == 1000
        assert parallel.get("score").stats.rows == 1000

    def test_parallel_unsafe_udf_runs_inline(self):
        from concurrent.futures import ThreadPoolExecutor

        seen_threads: list[int] = []

        def fn(values):
            seen_threads.append(threading.get_ident())
            return np.asarray(values, dtype=np.float64)

        with ThreadPoolExecutor(max_workers=4) as pool:
            registry = UdfRegistry()
            registry.attach_executor(pool, morsel_rows=8)
            registry.register(
                BatchUdf(
                    name="stateful",
                    fn=fn,
                    return_dtype=DataType.FLOAT64,
                    parallel_safe=False,
                )
            )
            registry.invoke("stateful", [np.zeros(100)])
        assert seen_threads == [threading.get_ident()]

    def test_bad_morsel_rows_rejected(self):
        registry = UdfRegistry()
        with pytest.raises(ValueError):
            registry.attach_executor(object(), morsel_rows=0)


class TestDatabaseIntegration:
    def _db(self, **kwargs):
        db = Database(udf_cache_bytes=1 << 20, **kwargs)
        db.create_table_from_dict(
            "t", {"v": [1.0, 2.0, 3.0, 1.0, 2.0, 5.0]}
        )
        return db

    def test_warm_query_skips_inference(self):
        counter: list[int] = []
        db = self._db()
        db.register_udf(_counting_udf(counter))
        cold = db.query("SELECT score(v) FROM t")
        warm = db.query("SELECT score(v) FROM t")
        assert warm == cold
        assert sum(counter) == 6  # second run fully served from cache

    def test_explain_analyze_reports_cache_delta(self):
        counter: list[int] = []
        db = self._db()
        db.register_udf(_counting_udf(counter))
        db.query("SELECT score(v) FROM t")  # warm the cache
        output = db.explain_analyze("SELECT score(v) FROM t")
        assert output.udf_cache == {
            "hits": 6,
            "misses": 0,
            "evictions": 0,
            "bytes": db.infer_cache.bytes_used,
        }
        assert "UDF cache: hits=6 misses=0" in output.text
        assert output.to_dict()["udf_cache"]["hits"] == 6

    def test_workers_with_cache_same_rows(self):
        counter: list[int] = []
        db = self._db(udf_workers=2, udf_morsel_rows=2)
        try:
            db.register_udf(_counting_udf(counter))
            rows = db.query("SELECT score(v) FROM t ORDER BY v")
            again = db.query("SELECT score(v) FROM t ORDER BY v")
            assert rows == again
            assert sum(counter) == 6
        finally:
            db.close()

    def test_close_is_idempotent(self):
        db = self._db(udf_workers=3)
        db.close()
        db.close()


class TestCostModelCacheAwareness:
    def _registry_with_cache(self):
        registry = UdfRegistry()
        cache = InferenceCache(1 << 20)
        registry.attach_cache(cache)
        registry.register(
            BatchUdf(
                name="nUDF_detect",
                fn=lambda v: np.zeros(len(v), dtype=bool),
                return_dtype=DataType.BOOL,
                cost_per_row=0.01,
                is_neural=True,
            )
        )
        return registry, cache

    def test_udf_call_cost_scales_with_miss_rate(self):
        from repro.core.hints import HintAwareCostModel
        from repro.sql.parser import parse_statement

        registry, cache = self._registry_with_cache()
        model = HintAwareCostModel(registry, seconds_per_cost_unit=1e-3)
        statement = parse_statement(
            "SELECT * FROM t WHERE nUDF_detect(a) = TRUE"
        )
        call = statement.where.left

        cold_cost = model.udf_call_cost(call)
        assert cold_cost == pytest.approx(10.0)  # no history: miss rate 1

        # Warm history: 1 miss then 3 hits -> 25% expected misses.
        key = hash_row([1])
        cache.get_many("nudf_detect", [key])
        cache.put("nudf_detect", key, True)
        for _ in range(3):
            cache.get_many("nudf_detect", [key])
        assert model.udf_call_cost(call) == pytest.approx(2.5)

    def test_uncacheable_udf_not_scaled(self):
        from repro.core.hints import HintAwareCostModel
        from repro.sql.parser import parse_statement

        registry, cache = self._registry_with_cache()
        registry.get("nUDF_detect").cacheable = False
        key = hash_row([1])
        cache.get_many("nudf_detect", [key])
        cache.put("nudf_detect", key, True)
        for _ in range(9):
            cache.get_many("nudf_detect", [key])
        model = HintAwareCostModel(registry, seconds_per_cost_unit=1e-3)
        call = parse_statement(
            "SELECT * FROM t WHERE nUDF_detect(a) = TRUE"
        ).where.left
        assert model.udf_call_cost(call) == pytest.approx(10.0)


class TestSnapshotDataclass:
    def test_default_snapshot_is_zero(self):
        snap = CacheSnapshot()
        assert snap.delta(CacheSnapshot(hits=2, misses=1, bytes=7)) == {
            "hits": 2,
            "misses": 1,
            "evictions": 0,
            "bytes": 7,
        }
