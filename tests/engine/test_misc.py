"""Odds and ends: explain errors, plan cache, soft keywords, edge cases."""

import numpy as np
import pytest

from repro.engine import Database
from repro.errors import SqlError


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t", {"a": [1, 2, 3], "s": ["x", "y", "z"]}
    )
    return database


class TestExplain:
    def test_explain_rejects_non_select(self, db):
        with pytest.raises(SqlError):
            db.explain("DROP TABLE t")

    def test_explain_renders_tree(self, db):
        text = db.explain("SELECT a FROM t WHERE a > 1").text
        assert "Scan t" in text
        assert "Filter" in text
        assert "rows=" in text


class TestPlanCache:
    def test_repeated_execution_reuses_plan(self, db):
        sql = "SELECT sum(a) FROM t"
        db.execute(sql)
        cached_plans = len(db._plan_cache)
        db.execute(sql)
        assert len(db._plan_cache) == cached_plans

    def test_view_change_clears_cache(self, db):
        db.execute("CREATE VIEW v AS SELECT a FROM t")
        assert db.query("SELECT count(*) FROM v") == [(3,)]
        db.execute("DROP VIEW v")
        db.execute("CREATE VIEW v AS SELECT a FROM t WHERE a > 1")
        # The new definition must be in force (no stale cached plan).
        assert db.query("SELECT count(*) FROM v") == [(2,)]

    def test_optimizer_config_change_misses_cache(self, db):
        from repro.engine.optimizer import OptimizerConfig

        sql = "SELECT a FROM t WHERE a > 1"
        first = db.explain(sql).plan
        db.optimizer_config = OptimizerConfig(use_hints=True)
        second = db.explain(sql).plan
        assert first is not second

    def test_clear_plan_cache(self, db):
        db.execute("SELECT a FROM t")
        db.clear_plan_cache()
        assert db._plan_cache == {}


class TestSoftKeywords:
    def test_temp_as_column_name(self, db):
        db.execute("CREATE TABLE sensors (id Int64, temp Float64)")
        db.execute("INSERT INTO sensors VALUES (1, 21.5)")
        assert db.query("SELECT temp FROM sensors WHERE temp > 20") == [(21.5,)]

    def test_key_and_index_as_columns(self, db):
        db.execute("CREATE TABLE k (key Int64, index Int64)")
        db.execute("INSERT INTO k VALUES (1, 2)")
        assert db.query("SELECT key + index FROM k") == [(3,)]


class TestStringEdgeCases:
    def test_empty_string_comparison(self, db):
        db.execute("INSERT INTO t VALUES (4, '')")
        assert db.query("SELECT a FROM t WHERE s = ''") == [(4,)]

    def test_quote_escaping_roundtrip(self, db):
        db.execute("INSERT INTO t VALUES (5, 'it''s')")
        assert db.query("SELECT a FROM t WHERE s = 'it''s'") == [(5,)]

    def test_order_by_strings_desc(self, db):
        rows = db.query("SELECT s FROM t ORDER BY s DESC")
        assert [r[0] for r in rows] == ["z", "y", "x"]

    def test_case_over_strings_in_where(self, db):
        rows = db.query(
            "SELECT a FROM t WHERE "
            "CASE WHEN s = 'y' THEN TRUE ELSE FALSE END = TRUE"
        )
        assert rows == [(2,)]


class TestNumericEdgeCases:
    def test_division_by_zero_is_inf_or_nan(self, db):
        # Scalar 1/0 produces NaN, which the engine treats as NULL at the
        # SQL surface (matching SQLite's NULL for division by zero).
        value = db.execute("SELECT 1 / 0").scalar()
        assert value is None or value == float("inf")

    def test_negative_modulo(self, db):
        # numpy semantics: result takes the divisor's sign.
        assert db.execute("SELECT -7 % 3").scalar() == 2

    def test_large_integers(self, db):
        db.create_table_from_dict("big", {"x": [2**40, 2**41]})
        assert db.execute("SELECT sum(x) FROM big").scalar() == 2**40 + 2**41

    def test_float_aggregation_precision(self, db):
        db.create_table_from_dict("f", {"x": [0.1] * 10})
        assert db.execute("SELECT sum(x) FROM f").scalar() == pytest.approx(1.0)


class TestResultOrdering:
    def test_multi_key_mixed_directions(self, db):
        db.create_table_from_dict(
            "m", {"g": ["a", "a", "b", "b"], "v": [1, 2, 1, 2]}
        )
        rows = db.query("SELECT g, v FROM m ORDER BY g ASC, v DESC")
        assert rows == [("a", 2), ("a", 1), ("b", 2), ("b", 1)]

    def test_order_by_expression(self, db):
        rows = db.query("SELECT a FROM t ORDER BY a * -1")
        assert [r[0] for r in rows] == [3, 2, 1]


class TestStorageBytes:
    def test_storage_bytes_counts_data(self, db):
        before = db.storage_bytes()
        db.create_table_from_dict("extra", {"x": list(range(10_000))})
        assert db.storage_bytes() > before
