"""CREATE / INSERT / UPDATE / DROP through the facade."""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, SqlError


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict("src", {"a": [1, 2, 3], "s": ["x", "y", "z"]})
    return database


class TestCreateTable:
    def test_with_column_defs(self, db):
        db.execute("CREATE TABLE t (a Int64, b Float64, s String, d Date)")
        assert db.table("t").num_rows == 0
        assert db.table("t").schema.column_names == ["a", "b", "s", "d"]

    def test_unknown_type(self, db):
        with pytest.raises(SqlError):
            db.execute("CREATE TABLE t (a Nonsense)")

    def test_as_select(self, db):
        db.execute("CREATE TABLE t AS SELECT a * 10 AS a10 FROM src")
        assert db.query("SELECT sum(a10) FROM t") == [(60,)]

    def test_temp_flag(self, db):
        db.execute("CREATE TEMP TABLE t AS SELECT a FROM src")
        assert db.catalog.is_temp("t")
        db.drop_temp_objects()
        assert not db.catalog.has("t")

    def test_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t AS SELECT a FROM src")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t AS SELECT a FROM src")

    def test_or_replace(self, db):
        db.execute("CREATE TABLE t AS SELECT a FROM src")
        db.execute("CREATE OR REPLACE TABLE t AS SELECT a FROM src WHERE a = 1")
        assert db.table("t").num_rows == 1


class TestInsert:
    def test_values(self, db):
        db.execute("INSERT INTO src VALUES (4, 'w'), (5, 'v')")
        assert db.table("src").num_rows == 5

    def test_values_with_columns_reordered(self, db):
        db.execute("INSERT INTO src (s, a) VALUES ('w', 4)")
        assert db.table("src").row(3) == (4, "w")

    def test_missing_column_rejected(self, db):
        with pytest.raises(SqlError):
            db.execute("INSERT INTO src (a) VALUES (4)")

    def test_insert_select(self, db):
        db.execute("CREATE TABLE t AS SELECT a, s FROM src WHERE a = 1")
        db.execute("INSERT INTO t SELECT a, s FROM src WHERE a > 1")
        assert db.table("t").num_rows == 3

    def test_insert_constant_expression(self, db):
        db.execute("INSERT INTO src VALUES (2 + 2, 'four')")
        assert db.query("SELECT s FROM src WHERE a = 4") == [("four",)]

    def test_insert_invalidates_stats_and_indexes(self, db):
        db.catalog.create_index("src", "a")
        db.execute("INSERT INTO src VALUES (9, 'n')")
        assert db.catalog.get_index("src", "a") is None


class TestUpdate:
    def test_update_where(self, db):
        result = db.execute("UPDATE src SET a = 0 WHERE a > 1")
        assert result.affected_rows == 2
        assert db.query("SELECT sum(a) FROM src") == [(1,)]

    def test_update_all(self, db):
        db.execute("UPDATE src SET a = a + 100")
        assert db.query("SELECT min(a) FROM src") == [(101,)]

    def test_relu_update_from_paper(self, db):
        db.create_table_from_dict("vals", {"Value": [-1.0, 2.0, -3.0]})
        db.execute("UPDATE vals SET Value = 0 WHERE Value < 0")
        assert db.query("SELECT sum(Value) FROM vals") == [(2.0,)]

    def test_update_string_column(self, db):
        db.execute("UPDATE src SET s = 'zap' WHERE a = 1")
        assert db.query("SELECT s FROM src WHERE a = 1") == [("zap",)]


class TestDrop:
    def test_drop_table(self, db):
        db.execute("DROP TABLE src")
        assert not db.catalog.has("src")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS nothere")

    def test_drop_unknown_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nothere")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS SELECT a FROM src")
        db.execute("DROP VIEW v")
        assert not db.catalog.has("v")


class TestIndexStatement:
    def test_create_index(self, db):
        result = db.execute("CREATE INDEX idx ON src(a)")
        assert "3 keys" in result.message


class TestScripts:
    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TEMP TABLE t AS SELECT a FROM src;"
            "INSERT INTO t VALUES (9);"
            "SELECT count(*) FROM t;"
        )
        assert results[-1].rows() == [(4,)]


class TestResultApi:
    def test_scalar_requires_1x1(self, db):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            db.execute("SELECT a FROM src").scalar()

    def test_no_result_set(self, db):
        from repro.errors import ExecutionError

        result = db.execute("DROP TABLE src")
        with pytest.raises(ExecutionError):
            _ = result.frame

    def test_column_access(self, db):
        values = db.execute("SELECT a FROM src").column("a")
        assert values.tolist() == [1, 2, 3]
