"""End-to-end SELECT behaviour through the Database facade."""

import numpy as np
import pytest

from repro.engine import Database
from repro.errors import PlanError


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict(
        "t",
        {
            "a": [1, 2, 3, 4, 5],
            "b": [10.0, 20.0, 30.0, 40.0, 50.0],
            "g": ["x", "y", "x", "y", "x"],
        },
    )
    return database


class TestProjection:
    def test_columns(self, db):
        assert db.query("SELECT a FROM t") == [(1,), (2,), (3,), (4,), (5,)]

    def test_expressions(self, db):
        rows = db.query("SELECT a * 2 + 1 FROM t WHERE a = 2")
        assert rows == [(5,)]

    def test_star(self, db):
        result = db.execute("SELECT * FROM t")
        assert result.column_names == ["a", "b", "g"]

    def test_aliases(self, db):
        result = db.execute("SELECT a AS alpha FROM t")
        assert result.column_names == ["alpha"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 2 + 3").scalar() == 5

    def test_division_is_float(self, db):
        assert db.execute("SELECT 3 / 2").scalar() == pytest.approx(1.5)

    def test_modulo(self, db):
        assert db.query("SELECT a % 2 FROM t WHERE a <= 2") == [(1,), (0,)]


class TestFilter:
    def test_comparison(self, db):
        assert db.query("SELECT a FROM t WHERE b >= 30") == [(3,), (4,), (5,)]

    def test_and_or(self, db):
        rows = db.query("SELECT a FROM t WHERE a = 1 OR a = 5 AND b = 50")
        assert rows == [(1,), (5,)]

    def test_not(self, db):
        assert db.query("SELECT a FROM t WHERE NOT a < 4") == [(4,), (5,)]

    def test_in_list(self, db):
        assert db.query("SELECT a FROM t WHERE a IN (2, 4)") == [(2,), (4,)]

    def test_between(self, db):
        assert db.query("SELECT a FROM t WHERE a BETWEEN 2 AND 3") == [
            (2,),
            (3,),
        ]

    def test_string_equality(self, db):
        assert db.query("SELECT a FROM t WHERE g = 'y'") == [(2,), (4,)]

    def test_case_expression(self, db):
        rows = db.query(
            "SELECT CASE WHEN a > 3 THEN 'big' ELSE 'small' END FROM t"
        )
        assert [r[0] for r in rows] == ["small", "small", "small", "big", "big"]


class TestSortLimitDistinct:
    def test_order_desc(self, db):
        rows = db.query("SELECT a FROM t ORDER BY a DESC")
        assert [r[0] for r in rows] == [5, 4, 3, 2, 1]

    def test_order_by_string(self, db):
        rows = db.query("SELECT g, a FROM t ORDER BY g, a")
        assert rows[0][0] == "x" and rows[-1][0] == "y"

    def test_order_by_alias(self, db):
        rows = db.query("SELECT a * -1 AS neg FROM t ORDER BY neg")
        assert [r[0] for r in rows] == [-5, -4, -3, -2, -1]

    def test_limit(self, db):
        assert len(db.query("SELECT a FROM t LIMIT 2")) == 2

    def test_distinct(self, db):
        assert sorted(db.query("SELECT DISTINCT g FROM t")) == [("x",), ("y",)]

    def test_order_then_limit(self, db):
        assert db.query("SELECT a FROM t ORDER BY a DESC LIMIT 1") == [(5,)]


class TestDatesAndFunctions:
    def test_date_comparison_with_strings(self, db):
        db.create_table_from_dict("events", {"id": [1, 2]})
        db.execute("DROP TABLE events")
        from repro.storage.column import Column
        from repro.storage.schema import DataType, parse_date
        from repro.storage.table import Table

        dates = Column(
            "d",
            DataType.DATE,
            np.array(
                [parse_date("2021-01-05"), parse_date("2021-02-05")],
                dtype=np.int64,
            ),
        )
        ids = Column.from_values("id", DataType.INT64, [1, 2])
        db.register_table(Table("events", [ids, dates]))
        rows = db.query("SELECT id FROM events WHERE d < '2021-02-01'")
        assert rows == [(1,)]

    def test_scalar_functions(self, db):
        assert db.execute("SELECT abs(-3)").scalar() == 3.0
        assert db.execute("SELECT sqrt(9)").scalar() == 3.0
        assert db.execute("SELECT greatest(1, 5, 3)").scalar() == 5.0
        assert db.execute("SELECT intDiv(7, 2)").scalar() == 3

    def test_like(self, db):
        rows = db.query("SELECT g FROM t WHERE g LIKE 'x%' LIMIT 1")
        assert rows == [("x",)]

    def test_unknown_function_raises(self, db):
        from repro.errors import UdfError

        with pytest.raises(UdfError):
            db.query("SELECT no_such_function(a) FROM t")


class TestSubqueries:
    def test_scalar_subquery(self, db):
        rows = db.query("SELECT a FROM t WHERE b > (SELECT avg(b) FROM t)")
        assert rows == [(4,), (5,)]

    def test_derived_table(self, db):
        rows = db.query(
            "SELECT d.x FROM (SELECT a + 1 AS x FROM t WHERE a > 3) d"
        )
        assert rows == [(5,), (6,)]

    def test_scalar_subquery_must_be_1x1(self, db):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            db.query("SELECT (SELECT a FROM t) FROM t")


class TestViews:
    def test_view_expansion(self, db):
        db.execute("CREATE VIEW v AS SELECT a, b FROM t WHERE a > 2")
        assert db.query("SELECT count(*) FROM v") == [(3,)]

    def test_view_of_view(self, db):
        db.execute("CREATE VIEW v1 AS SELECT a FROM t WHERE a > 1")
        db.execute("CREATE VIEW v2 AS SELECT a FROM v1 WHERE a < 5")
        assert db.query("SELECT count(*) FROM v2") == [(3,)]


class TestErrors:
    def test_unknown_column(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT nope FROM t")

    def test_ambiguous_column(self, db):
        db.create_table_from_dict("u", {"a": [1]})
        with pytest.raises(PlanError):
            db.query("SELECT a FROM t, u WHERE t.a = u.a")


class TestNullAndMixedOrdering:
    """Regression: object-column sorts used bare ``sorted(set(...))``,
    which raises ``TypeError`` the moment a NULL (or a stray number)
    shares a string column."""

    @pytest.fixture()
    def nullable_db(self):
        database = Database()
        database.create_table_from_dict(
            "s", {"x": ["b", None, "a", None, "c"], "n": [1, 2, 3, 4, 5]}
        )
        return database

    def test_nulls_last_ascending(self, nullable_db):
        rows = nullable_db.query("SELECT x FROM s ORDER BY x")
        assert [r[0] for r in rows] == ["a", "b", "c", None, None]

    def test_nulls_first_descending(self, nullable_db):
        rows = nullable_db.query("SELECT x FROM s ORDER BY x DESC")
        assert [r[0] for r in rows] == [None, None, "c", "b", "a"]

    def test_null_sort_key_is_stable_tiebreak(self, nullable_db):
        rows = nullable_db.query("SELECT n FROM s ORDER BY x, n")
        assert [r[0] for r in rows] == [3, 1, 5, 2, 4]

    def test_mixed_type_codes_do_not_raise(self):
        from repro.engine.physical import _sort_codes

        data = np.array([3, "b", None, 1.5, b"z", "a", None], dtype=object)
        codes = _sort_codes(data)
        # Numbers < strings < bytes, NULLs last; exact ranks:
        # 1.5, 3 | "a", "b" | b"z" | None, None
        assert codes.tolist() == [1, 3, 5, 0, 4, 2, 5]

    def test_mixed_int_ordering_exact_beyond_float53(self):
        from repro.engine.physical import _sort_codes

        big = 2**60
        data = np.array([big + 1, big, big + 2], dtype=object)
        assert _sort_codes(data).tolist() == [1, 0, 2]
