"""Dataflow folding: differential correctness, pruning, cache staleness.

The folding pass rewrites plans before the optimizer sees them, so its
correctness argument is differential: with folding on (the default) and
off (``Database(fold_constants=False)``) every query must produce the
same result multiset — over the NULL-semantics corpus (folding interacts
with 3VL) and over a folding-specific corpus seeded with the rewrites
the pass performs (constant folds, tautology drops, contradiction
pruning, statistics-driven range proofs).
"""

import pytest

from repro.engine import Database
from repro.engine.logical import EmptyScan, walk_plan
from tests.engine.differential import build_engine, normalize_rows
from tests.engine.test_null_semantics import CORPUS, ORDERED_CORPUS, TABLES


def build_unfolded(tables) -> Database:
    db = Database(fold_constants=False)
    for name, columns in tables.items():
        db.create_table_from_dict(name, dict(columns))
    return db


@pytest.fixture(scope="module")
def folded_db():
    return build_engine(TABLES)


@pytest.fixture(scope="module")
def unfolded_db():
    return build_unfolded(TABLES)


def assert_fold_parity(folded: Database, unfolded: Database, sql: str) -> None:
    ours = normalize_rows(folded.query(sql))
    theirs = normalize_rows(unfolded.query(sql))
    if ours == theirs:
        return
    raise AssertionError(
        f"folding changed results for {sql!r}\n"
        f"  folded-only rows: {sorted((ours - theirs).elements(), key=repr)}\n"
        f"  unfolded-only rows: "
        f"{sorted((theirs - ours).elements(), key=repr)}"
    )


class TestNullCorpusParity:
    """The full NULL-semantics corpus, folded vs unfolded."""

    @pytest.mark.parametrize("sql", CORPUS)
    def test_multiset_parity(self, folded_db, unfolded_db, sql):
        assert_fold_parity(folded_db, unfolded_db, sql)

    @pytest.mark.parametrize("sql", [pair[0] for pair in ORDERED_CORPUS])
    def test_ordered_parity(self, folded_db, unfolded_db, sql):
        assert folded_db.query(sql) == unfolded_db.query(sql)


#: Queries chosen to trigger each fold action at least once.
FOLDING_CORPUS = [
    # constant subexpression folding
    "SELECT 1 + 2 * 3 FROM r",
    "SELECT a + (2 - 2) FROM r",
    "SELECT id FROM r WHERE a > 10 + 20",
    "SELECT upper('ab') || s FROM r",
    # tautology deletion
    "SELECT id FROM r WHERE 1 = 1",
    "SELECT id FROM r WHERE a > 20 AND 2 < 3",
    "SELECT id FROM r WHERE id >= 1 AND id >= 0",
    # relational contradiction -> empty scan
    "SELECT id FROM r WHERE a > 5 AND a < 3",
    "SELECT id FROM r WHERE id = 1 AND id = 2",
    "SELECT count(*) FROM r WHERE a > 5 AND a < 3",
    "SELECT g, count(*) FROM r WHERE a > 5 AND a < 3 GROUP BY g",
    "SELECT id FROM r WHERE a > 5 AND a < 3 ORDER BY id LIMIT 2",
    # statistics-driven contradiction (id is 1..8, a is 10..80)
    "SELECT id FROM r WHERE id > 100",
    "SELECT id FROM r WHERE a < 0",
    "SELECT sum(a) FROM r WHERE id > 100",
    # statistics-driven tautology (conjunct dropped, rows kept)
    "SELECT id FROM r WHERE id < 100",
    "SELECT id FROM r WHERE id < 100 AND a > 20",
    # NULL-literal predicates (never TRUE under 3VL)
    "SELECT id FROM r WHERE a = NULL",
    "SELECT id FROM r WHERE NULL",
    # division by a constant zero: +-inf for nonzero rows, NULL for
    # zero/NULL rows, never an error — folding must not prune on it
    "SELECT f / 0 FROM r",
    "SELECT id FROM r WHERE f / 0 = 1",
    "SELECT id FROM r WHERE f / 0 > 1",
    "SELECT f / 0 + 1 FROM r",
    "SELECT 7 / 0 FROM r",
    # int-vs-fractional equality can never match
    "SELECT id FROM r WHERE id = 1.5",
    "SELECT id FROM r WHERE id != 1.5",
    # folding inside joins and subqueries
    "SELECT r.id FROM r JOIN k ON r.a = k.key WHERE 1 = 1",
    "SELECT r.id, k.w FROM r, k WHERE r.a = k.key AND r.id >= 1",
    "SELECT id FROM r WHERE a > (SELECT avg(key) FROM k) AND 2 > 1",
]


class TestFoldingCorpusParity:
    @pytest.mark.parametrize("sql", FOLDING_CORPUS)
    def test_multiset_parity(self, folded_db, unfolded_db, sql):
        assert_fold_parity(folded_db, unfolded_db, sql)


class TestContradictionPruning:
    def test_empty_scan_in_plan(self):
        db = build_engine(TABLES)
        plan = db.explain("SELECT id FROM r WHERE a > 5 AND a < 3").plan
        scans = [n for n in walk_plan(plan) if isinstance(n, EmptyScan)]
        assert len(scans) == 1
        assert "a < 3" in scans[0].reason
        assert db.query("SELECT id FROM r WHERE a > 5 AND a < 3") == []

    def test_empty_scan_preserves_output_schema(self):
        db = build_engine(TABLES)
        result = db.execute("SELECT id, a FROM r WHERE a > 5 AND a < 3")
        assert result.column_names == ["id", "a"]
        assert result.num_rows == 0

    def test_aggregate_over_empty_scan(self):
        db = build_engine(TABLES)
        assert db.query("SELECT count(*) FROM r WHERE a > 5 AND a < 3") == [
            (0,)
        ]
        rows = db.query("SELECT sum(a) FROM r WHERE a > 5 AND a < 3")
        assert rows == [(None,)]

    def test_join_subtree_not_pruned_blindly(self):
        # A contradiction above a join must still produce zero rows
        # whether or not the pass chose to prune.
        db = build_engine(TABLES)
        sql = (
            "SELECT r.id FROM r JOIN k ON r.a = k.key "
            "WHERE r.id > 5 AND r.id < 3"
        )
        assert db.query(sql) == []

    def test_explain_mentions_derived_facts(self):
        db = build_engine(TABLES)
        text = db.explain("SELECT id FROM r WHERE id > 3").text
        assert "Derived facts:" in text
        assert "id:" in text

    def test_fold_off_keeps_original_plan(self):
        db = build_unfolded(TABLES)
        plan = db.explain("SELECT id FROM r WHERE a > 5 AND a < 3").plan
        assert not any(isinstance(n, EmptyScan) for n in walk_plan(plan))


class TestStatisticsStaleness:
    """Stats-justified folds must not survive table mutations."""

    def test_insert_outside_proven_range_forces_replan(self):
        db = Database()
        db.execute("CREATE TABLE s (v INT64)")
        db.execute("INSERT INTO s VALUES (1), (2), (3)")
        sql = "SELECT v FROM s WHERE v < 100"
        # First run folds the always-true conjunct away (v in [1, 3]).
        assert sorted(db.query(sql)) == [(1,), (2,), (3,)]
        # 200 falsifies the assumption; the cached plan must not be
        # reused as-is.
        db.execute("INSERT INTO s VALUES (200)")
        assert sorted(db.query(sql)) == [(1,), (2,), (3,)]

    def test_insert_outside_range_unprunes_contradiction(self):
        db = Database()
        db.execute("CREATE TABLE s (v INT64)")
        db.execute("INSERT INTO s VALUES (1), (2), (3)")
        sql = "SELECT v FROM s WHERE v > 100"
        assert db.query(sql) == []
        db.execute("INSERT INTO s VALUES (200)")
        assert db.query(sql) == [(200,)]

    def test_first_null_invalidates_nonnull_proof(self):
        db = Database()
        db.execute("CREATE TABLE s (v FLOAT64)")
        db.execute("INSERT INTO s VALUES (1.0), (2.0)")
        sql = "SELECT v + 1.0 FROM s"
        assert sorted(db.query(sql)) == [(2.0,), (3.0,)]
        db.execute("INSERT INTO s VALUES (NULL)")
        rows = db.query(sql)
        assert normalize_rows(rows) == normalize_rows(
            [(2.0,), (3.0,), (None,)]
        )

    def test_insert_inside_proven_range_reuses_plan(self):
        db = Database(metrics=None)
        db.execute("CREATE TABLE s (v INT64)")
        db.execute("INSERT INTO s VALUES (1), (9)")
        sql = "SELECT v FROM s WHERE v > 100"
        assert db.query(sql) == []
        # 5 is inside [1, 9]: the containment re-check passes and the
        # cached (pruned) plan stays valid.
        db.execute("INSERT INTO s VALUES (5)")
        assert db.query(sql) == []


class TestMaskFreeKernels:
    def test_nonnull_annotation_on_plan(self):
        db = Database()
        db.execute("CREATE TABLE m (a FLOAT64, b FLOAT64)")
        db.execute("INSERT INTO m VALUES (1.0, 2.0), (3.0, 4.0)")
        plan = db.explain("SELECT a + b FROM m WHERE a > 0.5").plan
        annotated = [
            n
            for n in walk_plan(plan)
            if getattr(n, "nonnull_columns", None)
        ]
        assert annotated, "no node carries a nonnull annotation"
        names = {pair for n in annotated for pair in n.nonnull_columns}
        assert ("m", "a") in names

    def test_annotation_absent_when_column_has_nulls(self):
        db = Database()
        db.execute("CREATE TABLE m (a FLOAT64)")
        db.execute("INSERT INTO m VALUES (1.0), (NULL)")
        plan = db.explain("SELECT a + 1.0 FROM m").plan
        for node in walk_plan(plan):
            assert ("m", "a") not in getattr(node, "nonnull_columns", ())

    def test_mask_free_results_match(self):
        folded = Database()
        unfolded = Database(fold_constants=False)
        for d in (folded, unfolded):
            d.execute("CREATE TABLE m (a FLOAT64, b FLOAT64)")
            d.execute(
                "INSERT INTO m VALUES (1.0, 2.0), (3.0, 4.0), (5.0, 6.0)"
            )
        for sql in (
            "SELECT a + b FROM m WHERE a > 2.0",
            "SELECT a * 2.0 FROM m WHERE a + b < 100.0",
        ):
            assert sorted(folded.query(sql)) == sorted(unfolded.query(sql))
