"""Engine-wide morsel parallelism: differentials, chaos, and unit tests.

The load-bearing guarantee is *worker-count transparency*: any query
must return the same result multiset under ``workers=1`` and
``workers=4`` (down to float rounding — partial-aggregate merges
re-associate float addition).  The differential classes below pin that
over the full NULL-semantics corpus plus larger generated tables that
actually cross the morsel threshold on every parallel operator (filter,
project, partitioned join, partial aggregation).

The chaos/cancellation tests pin the *cooperative preamble* contract:
deadline checks and the ``operator.morsel`` fault site fire on the
worker thread that runs the morsel, not merely between operators.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.parallel import DEFAULT_MORSEL_ROWS, MorselPool
from repro.engine.qcontext import CancellationToken, QueryContext
from repro.errors import QueryCancelledError
from repro.faults.injector import InjectedFault
from repro.obs.metrics import MetricsRegistry
from tests.engine.differential import normalize_rows
from tests.engine.test_null_semantics import CORPUS, TABLES


def _generated_tables(rows: int = 1500, seed: int = 11) -> dict:
    """NULL-bearing tables big enough to cross every parallel threshold."""
    rng = np.random.default_rng(seed)

    def with_nulls(values, fraction=0.1):
        out = list(values)
        for index in rng.choice(len(out), int(len(out) * fraction), False):
            out[index] = None
        return out

    return {
        "big": {
            "id": list(range(rows)),
            "k": with_nulls(rng.integers(0, 40, rows).tolist()),
            "v": with_nulls(rng.normal(size=rows).round(3).tolist()),
            "g": with_nulls(
                [f"g{value}" for value in rng.integers(0, 7, rows)]
            ),
        },
        "dim": {
            "k": with_nulls(list(range(40)), 0.15),
            "w": with_nulls(rng.normal(size=40).round(3).tolist()),
        },
    }


#: Queries that drive every parallel operator over the generated tables.
BIG_QUERIES = [
    "SELECT id FROM big WHERE v > 0.2",
    "SELECT id FROM big WHERE v > 0.2 AND k < 30",
    "SELECT id, k + 1, v * 2.0 FROM big WHERE k IS NOT NULL",
    "SELECT count(*), count(v), sum(k) FROM big",
    "SELECT g, count(*), sum(k), avg(v) FROM big GROUP BY g",
    "SELECT g, min(v), max(k) FROM big GROUP BY g",
    "SELECT big.id, dim.w FROM big JOIN dim ON big.k = dim.k",
    "SELECT count(*) FROM big, dim WHERE big.k = dim.k",
    "SELECT g, count(*) FROM big JOIN dim ON big.k = dim.k GROUP BY g",
    "SELECT id FROM big WHERE v > 0.2 ORDER BY k, v DESC",
    "SELECT DISTINCT g FROM big",
]

#: Queries whose results carry no re-associated float sums: these must
#: be *exactly* identical across worker counts, including row order.
EXACT_QUERIES = [
    "SELECT id, k FROM big WHERE k > 10 ORDER BY k DESC, id",
    "SELECT g, count(*), sum(k), min(k), max(k) FROM big GROUP BY g",
    "SELECT big.id, dim.k FROM big JOIN dim ON big.k = dim.k ORDER BY big.id",
]


@pytest.fixture(scope="module")
def datasets():
    tables = dict(TABLES)
    tables.update(_generated_tables())
    return tables


@pytest.fixture(scope="module")
def serial_db(datasets):
    db = Database(workers=1)
    for name, columns in datasets.items():
        db.create_table_from_dict(name, dict(columns))
    yield db
    db.close()


@pytest.fixture(scope="module")
def parallel_db(datasets):
    # morsel_rows=7 puts even the 8-row corpus fixtures onto the pool
    # and fans the generated tables out over hundreds of morsels.
    db = Database(workers=4, morsel_rows=7)
    for name, columns in datasets.items():
        db.create_table_from_dict(name, dict(columns))
    yield db
    db.close()


class TestParallelSerialDifferential:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_null_corpus_matches_serial(self, serial_db, parallel_db, sql):
        assert normalize_rows(parallel_db.query(sql)) == normalize_rows(
            serial_db.query(sql)
        ), f"worker-count divergence for {sql!r}"

    @pytest.mark.parametrize("sql", BIG_QUERIES)
    def test_generated_tables_match_serial(self, serial_db, parallel_db, sql):
        assert normalize_rows(parallel_db.query(sql)) == normalize_rows(
            serial_db.query(sql)
        ), f"worker-count divergence for {sql!r}"

    @pytest.mark.parametrize("sql", EXACT_QUERIES)
    def test_float_free_queries_identical(self, serial_db, parallel_db, sql):
        assert parallel_db.query(sql) == serial_db.query(sql)


class TestMorselPool:
    def test_partition_covers_rows_with_tail(self):
        pool = MorselPool(workers=1, morsel_rows=3)
        assert pool.partition(10) == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert pool.partition(3) == [(0, 3)]
        assert pool.partition(0) == []

    def test_disabled_pool_runs_inline(self):
        pool = MorselPool(workers=1, morsel_rows=4)
        assert not pool.enabled
        assert not pool.should_parallelize(10**9)
        names = set()
        results = pool.run_rows(
            10, lambda start, stop: names.add(threading.current_thread().name)
        )
        assert len(results) == 3
        assert names == {threading.current_thread().name}

    def test_run_preserves_thunk_order(self):
        pool = MorselPool(workers=4, morsel_rows=1)
        try:
            delays = [0.02, 0.0, 0.01, 0.0, 0.015]

            def make(index):
                def thunk():
                    time.sleep(delays[index])
                    return index

                return thunk

            assert pool.run([make(i) for i in range(5)]) == [0, 1, 2, 3, 4]
        finally:
            pool.shutdown()

    def test_run_fails_fast_with_original_error(self):
        pool = MorselPool(workers=2, morsel_rows=1)
        try:

            def boom():
                raise ValueError("poisoned morsel")

            thunks = [lambda: 1] * 4 + [boom] + [lambda: 2] * 60
            with pytest.raises(ValueError, match="poisoned morsel"):
                pool.run(thunks)
        finally:
            pool.shutdown()

    def test_run_rows_cancellation_lands_on_workers(self):
        pool = MorselPool(workers=2, morsel_rows=1)
        try:
            token = CancellationToken()
            query = QueryContext(cancel_token=token)
            workers = set()

            def fn(start, stop):
                workers.add(threading.current_thread().name)
                token.cancel("poison pill from a running morsel")
                time.sleep(0.005)
                return stop - start

            with pytest.raises(QueryCancelledError, match="poison pill"):
                pool.run_rows(64, fn, query=query)
            assert query.checks >= 1
            assert any(name.startswith("repro-morsel") for name in workers)
        finally:
            pool.shutdown()


class TestDatabaseWiring:
    def test_default_is_serial(self, monkeypatch):
        # The parallel CI job exports REPRO_WORKERS=4 for the whole
        # suite; clear it so this test observes the true default.
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        db = Database()
        assert db.workers == 1
        assert not db.parallel.enabled
        db.close()

    def test_repro_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        db = Database()
        assert db.workers == 3 and db.parallel.enabled
        db.close()
        assert db.parallel.executor is None  # released

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        db = Database(workers=1)
        assert db.workers == 1 and not db.parallel.enabled
        db.close()

    def test_engine_pool_shared_with_udf_morsels(self):
        from repro.engine.udf import BatchUdf
        from repro.storage.schema import DataType

        db = Database(workers=2, morsel_rows=4, udf_morsel_rows=3)
        seen = set()

        def record(values):
            seen.add(threading.current_thread().name)
            return values * 2.0

        db.register_udf(
            BatchUdf(name="dbl", fn=record, return_dtype=DataType.FLOAT64)
        )
        db.create_table_from_dict("t", {"x": [float(i) for i in range(10)]})
        rows = db.query("SELECT dbl(x) FROM t")
        assert [r[0] for r in rows] == [2.0 * i for i in range(10)]
        assert any(name.startswith("repro-morsel") for name in seen)
        db.close()

    def test_close_is_idempotent(self):
        db = Database(workers=2)
        db.close()
        db.close()


class TestWorkerMetrics:
    def test_labeled_morsel_counters(self):
        metrics = MetricsRegistry()
        db = Database(workers=2, morsel_rows=8, metrics=metrics)
        db.create_table_from_dict("t", {"x": list(range(100))})
        db.execute("SELECT x + 1 FROM t WHERE x > 3")
        snapshot = metrics.to_dict()
        per_worker = snapshot["parallel_morsels_total"]["values"]
        assert per_worker and all(
            worker.startswith("repro-morsel") for worker in per_worker
        )
        # filter: ceil(100/8)=13 morsels; project: ceil(96/8)=12.
        assert sum(per_worker.values()) == 25
        rows = snapshot["parallel_morsel_rows_total"]["values"]
        assert sum(rows.values()) >= 100
        text = metrics.to_prometheus()
        assert 'parallel_morsels_total{worker="repro-morsel' in text
        db.close()


@pytest.mark.chaos
class TestMorselChaos:
    def test_fault_fires_on_worker_thread(self):
        db = Database(
            workers=2,
            morsel_rows=4,
            fault_plan="operator.morsel:transient#1",
        )
        db.create_table_from_dict("t", {"x": list(range(64))})
        with pytest.raises(InjectedFault) as excinfo:
            db.execute("SELECT x FROM t WHERE x + 1 > 3")
        message = str(excinfo.value)
        assert "operator.morsel" in message
        assert "op=Filter" in message
        assert "worker=repro-morsel" in message  # fired on a pool thread
        db.close()

    def test_join_partitions_hit_the_fault_site(self):
        db = Database(
            workers=2,
            morsel_rows=8,
            fault_plan="operator.morsel:transient#1",
        )
        db.create_table_from_dict("a", {"k": list(range(64))})
        db.create_table_from_dict("b", {"k": list(range(0, 64, 2))})
        with pytest.raises(InjectedFault) as excinfo:
            db.execute("SELECT count(*) FROM a JOIN b ON a.k = b.k")
        assert "op=HashJoin" in str(excinfo.value)
        db.close()

    def test_serial_engine_never_reaches_the_site(self):
        db = Database(workers=1, fault_plan="operator.morsel:permanent")
        db.create_table_from_dict("t", {"x": list(range(64))})
        assert db.execute("SELECT count(*) FROM t WHERE x > 3").scalar() == 60
        db.close()


class TestUdfMorselTailAccounting:
    """Regression: batch sizes not divisible by morsel_rows must neither
    drop nor double-count the tail morsel, and NULL arguments must stay
    NULL through morsel dispatch (masks never reach the slicing layer —
    NULL rows are compressed out before dispatch)."""

    def _dbl_db(self, **kwargs):
        from repro.engine.udf import BatchUdf
        from repro.storage.schema import DataType

        db = Database(**kwargs)
        db.register_udf(
            BatchUdf(
                name="dbl",
                fn=lambda values: values * 2.0,
                return_dtype=DataType.FLOAT64,
            )
        )
        return db

    @pytest.mark.parametrize("rows", [7, 10, 11])
    def test_non_divisible_batch(self, rows):
        db = self._dbl_db(udf_workers=2, udf_morsel_rows=3)
        db.create_table_from_dict(
            "t", {"x": [float(i) for i in range(rows)]}
        )
        out = [r[0] for r in db.query("SELECT dbl(x) FROM t")]
        assert out == [2.0 * i for i in range(rows)]
        stats = db.udfs.get("dbl").stats
        assert stats.rows == rows  # tail morsel counted exactly once
        assert stats.calls == 1  # one logical batch, not one per morsel
        db.close()

    @pytest.mark.parametrize("udf_workers", [1, 2])
    def test_null_arguments_stay_null(self, udf_workers):
        db = self._dbl_db(udf_workers=udf_workers, udf_morsel_rows=2)
        db.create_table_from_dict("t", {"x": [1.0, None, 3.0, None, 5.0]})
        out = [r[0] for r in db.query("SELECT dbl(x) FROM t")]
        assert out == [2.0, None, 6.0, None, 10.0]
        # Only present rows reach the UDF: 3 of 5.
        assert db.udfs.get("dbl").stats.rows == 3
        db.close()

    def test_null_and_zero_not_conflated_by_cache(self):
        db = self._dbl_db(udf_cache_bytes=1 << 20)
        db.create_table_from_dict("t", {"x": [0.0, None, 0.0, None]})
        for _ in range(2):  # second pass reads the cache
            out = [r[0] for r in db.query("SELECT dbl(x) FROM t")]
            assert out == [0.0, None, 0.0, None]
        db.close()


class TestParallelMemoryAdmission:
    def test_partition_state_is_admitted(self):
        from repro.errors import QueryMemoryExceeded

        db = Database(workers=2, morsel_rows=8, query_memory_bytes=512)
        db.create_table_from_dict("a", {"k": list(range(256))})
        db.create_table_from_dict("b", {"k": list(range(256))})
        with pytest.raises(QueryMemoryExceeded):
            db.execute("SELECT count(*) FROM a JOIN b ON a.k = b.k")
        db.close()
