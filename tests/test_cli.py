"""CLI behaviour (list/run/demo/shell loop)."""

import pytest

from repro.cli import EXPERIMENTS, main, run_shell
from repro.engine import Database


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_demo_parity(self, capsys):
        assert main(["demo"]) == 0
        assert "parity: OK" in capsys.readouterr().out

    def test_run_table4(self, capsys):
        # The cheapest experiment as a representative run.
        import repro.experiments.exp_storage as exp_storage

        original = exp_storage.main
        exp_storage.main = lambda: original(depths=(5,))
        try:
            assert main(["run", "table4"]) == 0
        finally:
            exp_storage.main = original
        assert "Table IV" in capsys.readouterr().out


class TestTraceCommand:
    def test_sql_trace_prints_lifecycle(self, capsys):
        assert main(["trace", "--scale", "1"]) == 0
        out = capsys.readouterr().out
        for stage in ("query", "parse", "plan", "optimize", "execute"):
            assert stage in out
        assert "operator:scan" in out
        assert "ms" in out

    def test_strategy_trace_has_phase_spans(self, capsys):
        assert main(["trace", "--scale", "1", "--strategy", "independent"]) == 0
        out = capsys.readouterr().out
        assert "strategy:DB-PyTorch" in out
        for phase in ("decompose", "db_subquery", "transfer", "inference",
                      "assemble"):
            assert phase in out
        assert "transfer_bytes=" in out

    def test_custom_sql(self, capsys):
        assert main(
            ["trace", "--scale", "1", "--sql", "SELECT count(*) FROM video"]
        ) == 0
        out = capsys.readouterr().out
        assert "sql=SELECT count(*) FROM video" in out


class TestLintCommand:
    def test_clean_sql_exit_zero(self, capsys):
        assert main(["lint", "SELECT a FROM t"]) == 0
        out = capsys.readouterr().out
        assert "1 statement(s) checked, 0 finding(s)" in out

    def test_warning_is_exit_zero_by_default(self, capsys):
        assert main(["lint", "SELECT * FROM t WHERE lower(g) = 'x'"]) == 0
        out = capsys.readouterr().out
        assert "warning L004" in out
        assert "1 finding(s)" in out

    def test_strict_turns_warnings_into_exit_one(self):
        assert (
            main(["lint", "--strict", "SELECT * FROM t WHERE lower(g) = 'x'"])
            == 1
        )

    def test_parse_error_exit_two(self, capsys):
        assert main(["lint", "SELECT FROM WHERE"]) == 2
        assert "E000" in capsys.readouterr().out

    def test_semantic_error_exit_two(self, capsys):
        assert main(["lint", "SELECT sum(*) FROM t"]) == 2
        assert "S012" in capsys.readouterr().out

    def test_sql_file_statements_split(self, tmp_path, capsys):
        script = tmp_path / "queries.sql"
        script.write_text(
            "SELECT a FROM t;\n"
            "SELECT x FROM u WHERE x = 'a;b' LIMIT 3;\n"
        )
        assert main(["lint", str(script)]) == 0
        assert "2 statement(s) checked" in capsys.readouterr().out

    def test_python_file_extraction(self, tmp_path, capsys):
        module = tmp_path / "example.py"
        module.write_text(
            'QUERY = "SELECT * FROM t WHERE lower(g) = \'x\'"\n'
            'NOT_SQL = "hello world"\n'
            'FRAGMENT = "SELECT ..."  # unparseable, skipped\n'
        )
        assert main(["lint", str(module)]) == 0
        out = capsys.readouterr().out
        assert "warning L004" in out
        assert "1 statement(s) checked, 1 finding(s)" in out

    def test_json_format(self, capsys):
        import json

        sql = "SELECT * FROM t WHERE lower(g) = 'x'"
        assert main(["lint", "--format", "json", sql]) == 0
        data = json.loads(capsys.readouterr().out)
        (document,) = data["documents"]
        assert document["source"] == "<sql>"
        assert document["sql"] == sql
        (finding,) = document["findings"]
        assert finding["code"] == "L004"
        assert finding["severity"] == "warning"
        assert finding["snippet"] == "lower(g) = 'x'"
        assert (finding["line"], finding["column"]) == (1, 23)
        span = finding["span"]
        assert sql[span["start"] : span["end"]] == "lower(g) = 'x'"

    def test_json_format_with_error(self, capsys):
        import json

        assert main(["lint", "--format", "json", "SELECT sum(*) FROM t"]) == 2
        data = json.loads(capsys.readouterr().out)
        (finding,) = data["documents"][0]["findings"]
        assert finding["code"] == "S012"
        assert finding["severity"] == "error"


class TestExitCodes:
    """0 success, 1 runtime failure, 2 parse/semantic errors."""

    def test_trace_semantic_error_exit_two(self, capsys):
        assert (
            main(["trace", "--scale", "1", "--sql", "SELECT nope FROM video"])
            == 2
        )
        assert "S001" in capsys.readouterr().err

    def test_trace_parse_error_exit_two(self, capsys):
        assert main(["trace", "--scale", "1", "--sql", "SELECT )) FROM"]) == 2

    def test_trace_ok_exit_zero(self):
        assert main(["trace", "--scale", "1"]) == 0


class TestStatsCommand:
    def test_json_output(self, capsys):
        import json

        assert main(["stats", "--scale", "1"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["queries_executed_total"]["value"] > 0
        assert data["plan_cache_hits_total"]["value"] > 0
        assert data["rows_scanned_total"]["value"] > 0

    def test_prometheus_output(self, capsys):
        assert main(["stats", "--scale", "1", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_executed_total counter" in out
        assert "repro_rows_scanned_total" in out

    def test_udf_cache_counters_visible(self, capsys):
        import json

        assert main(
            ["stats", "--scale", "1", "--udf-workers", "2",
             "--udf-cache-mb", "4"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        # The sample workload repeats a UDF query: the first run misses,
        # the two repeats hit.
        assert data["udf_cache_misses"]["value"] > 0
        assert (
            data["udf_cache_hits"]["value"]
            >= 2 * data["udf_cache_misses"]["value"]
        )
        assert data["udf_cache_bytes"]["value"] > 0
        assert data["udf_cache_evictions"]["value"] == 0

    def test_cache_can_be_disabled(self, capsys):
        import json

        assert main(["stats", "--scale", "1", "--udf-cache-mb", "0"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "udf_cache_hits" not in data


class TestShell:
    def _run(self, commands, db=None):
        db = db or Database()
        db.create_table_from_dict("t", {"a": [1, 2, 3]})
        outputs = []
        commands = iter(commands)

        def fake_input(prompt):
            try:
                return next(commands)
            except StopIteration:
                raise EOFError

        code = run_shell(db, input_fn=fake_input, output_fn=outputs.append)
        return code, "\n".join(outputs)

    def test_select(self):
        code, out = self._run(["SELECT sum(a) FROM t", "exit"])
        assert code == 0
        assert "6" in out

    def test_describe(self):
        code, out = self._run(["\\d", "quit"])
        assert "tables: t" in out

    def test_error_recovery(self):
        code, out = self._run(["SELECT nope FROM t", "SELECT 1", "exit"])
        assert code == 0
        assert "error:" in out
        assert "1" in out

    def test_ddl_message(self):
        code, out = self._run(["DROP TABLE t", "exit"])
        assert "dropped t" in out

    def test_row_cap(self):
        db = Database()
        db.create_table_from_dict("big", {"x": list(range(100))})
        outputs = []
        commands = iter(["SELECT x FROM big", "exit"])
        run_shell(
            db,
            input_fn=lambda prompt: next(commands),
            output_fn=outputs.append,
            max_rows=5,
        )
        assert any("more rows" in o for o in outputs)

    def test_eof_exits(self):
        code, _ = self._run([])
        assert code == 0


class TestLoadgenCli:
    def test_quick_run_writes_sidecar(self, capsys, tmp_path):
        import json

        sidecar = str(tmp_path / "BENCH_serve.json")
        assert main(["loadgen", "--quick", "--output", sidecar]) == 0
        out = capsys.readouterr().out
        assert "overload shed" in out
        with open(sidecar) as handle:
            report = json.load(handle)
        assert {"steady", "overload"} <= set(report["scenarios"])
