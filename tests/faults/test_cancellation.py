"""Deadlines, cooperative cancellation, and memory admission."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.memory import MemoryAccountant
from repro.engine.qcontext import CancellationToken, QueryContext
from repro.engine.udf import BatchUdf
from repro.errors import (
    QueryCancelledError,
    QueryMemoryExceeded,
    QueryTimeoutError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.storage.schema import DataType


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestQueryContext:
    def test_no_deadline_never_expires(self):
        clock = FakeClock()
        qctx = QueryContext(clock=clock)
        clock.now += 1e9
        qctx.check()  # no deadline, no token: always passes
        assert qctx.checks == 1
        assert not qctx.expired()

    def test_timeout_raises_typed_error(self):
        clock = FakeClock()
        qctx = QueryContext(timeout_s=2.0, clock=clock)
        clock.now += 1.0
        qctx.check()  # still inside the deadline
        clock.now += 1.5
        with pytest.raises(QueryTimeoutError) as exc_info:
            qctx.check()
        error = exc_info.value
        assert error.code == "R001"
        assert error.timeout_s == 2.0
        assert error.elapsed == pytest.approx(2.5)

    def test_cancellation_wins_over_timeout(self):
        clock = FakeClock()
        token = CancellationToken()
        qctx = QueryContext(timeout_s=1.0, cancel_token=token, clock=clock)
        clock.now += 5.0  # deadline long gone
        token.cancel("stop it")
        with pytest.raises(QueryCancelledError) as exc_info:
            qctx.check()
        assert exc_info.value.code == "R002"
        assert "stop it" in str(exc_info.value)


class TestExecuteDeadlines:
    def test_zero_timeout_raises_before_running(self, workload_db):
        with pytest.raises(QueryTimeoutError) as exc_info:
            workload_db.execute(
                "SELECT COUNT(*) FROM video", timeout_s=0.0
            )
        assert exc_info.value.code == "R001"
        # The database is reusable after the abort.
        result = workload_db.execute("SELECT COUNT(*) FROM video")
        assert result.num_rows == 1

    def test_precancelled_token(self, workload_db):
        token = CancellationToken()
        token.cancel("operator pressed stop")
        with pytest.raises(QueryCancelledError, match="operator pressed stop"):
            workload_db.execute(
                "SELECT COUNT(*) FROM video", cancel_token=token
            )

    def test_timeout_and_cancel_metrics(self, tiny_dataset):
        metrics = MetricsRegistry()
        db = Database(metrics=metrics)
        tiny_dataset.install(db)
        with pytest.raises(QueryTimeoutError):
            db.execute("SELECT COUNT(*) FROM video", timeout_s=0.0)
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            db.execute("SELECT COUNT(*) FROM video", cancel_token=token)
        assert metrics.counter("query_timeouts_total").value == 1
        assert metrics.counter("query_cancellations_total").value == 1

    def test_mid_query_cancel_attaches_partial_trace(self, workload_db):
        """A UDF cancels the token mid-execution; the typed error carries
        the span tree built before the abort."""
        workload_db.tracer = Tracer(enabled=True)
        token = CancellationToken()

        def cancel_then_echo(values: np.ndarray) -> np.ndarray:
            token.cancel("poison batch")
            return values.astype(np.float64)

        workload_db.register_udf(
            BatchUdf(
                name="poison",
                fn=cancel_then_echo,
                return_dtype=DataType.FLOAT64,
            )
        )
        # Two invocations: the first cancels, the second's per-batch
        # check observes it and aborts the statement.
        with pytest.raises(QueryCancelledError) as exc_info:
            workload_db.execute(
                "SELECT poison(humidity), poison(temperature) FROM fabric",
                cancel_token=token,
            )
        trace = exc_info.value.partial_trace
        assert trace is not None
        assert trace.name == "query"

    def test_loose_udf_query_times_out_promptly(
        self, tiny_dataset, detect_task
    ):
        """The acceptance check: a neural-UDF collaborative query under a
        tiny deadline aborts at the next batch boundary, not after the
        whole scan."""
        from repro.strategies import LooseStrategy
        from repro.strategies.base import QueryType
        from repro.workload.queries import QueryGenerator

        db = Database()
        tiny_dataset.install(db)
        LooseStrategy().bind_task(db, detect_task)
        query = QueryGenerator(tiny_dataset).make_query(QueryType(3), 0.9)

        started = time.perf_counter()
        with pytest.raises(QueryTimeoutError) as exc_info:
            db.execute(query.sql, timeout_s=0.001)
        wall = time.perf_counter() - started
        assert wall < 10.0  # cooperative abort, not a full run
        assert exc_info.value.elapsed >= 0.001


class TestMemoryAdmission:
    def test_accountant_admits_and_accounts(self):
        accountant = MemoryAccountant(1000)
        accountant.admit(400, "hash join")
        accountant.admit(500, "cross join")
        assert accountant.admitted_bytes == 900
        assert accountant.peak_request == 500
        assert accountant.admissions == 2

    def test_accountant_rejects_oversize(self):
        accountant = MemoryAccountant(1000)
        with pytest.raises(QueryMemoryExceeded) as exc_info:
            accountant.admit(1001, "cross join")
        error = exc_info.value
        assert error.code == "R003"
        assert error.requested == 1001
        assert error.budget == 1000
        assert error.what == "cross join"

    def test_accountant_validates_budget(self):
        with pytest.raises(ValueError):
            MemoryAccountant(0)

    def test_cross_join_rejected_before_materializing(self, tiny_dataset):
        db = Database(query_memory_bytes=4096)
        tiny_dataset.install(db)
        with pytest.raises(QueryMemoryExceeded) as exc_info:
            db.execute("SELECT * FROM video, fabric")
        assert "cross join" in str(exc_info.value)

    def test_same_join_admitted_under_generous_budget(self, tiny_dataset):
        db = Database(query_memory_bytes=1 << 30)
        tiny_dataset.install(db)
        result = db.execute(
            "SELECT COUNT(*) FROM video, fabric "
            "WHERE video.transID = fabric.transID"
        )
        assert result.rows()[0][0] > 0
