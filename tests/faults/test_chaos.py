"""The seeded chaos suite (run with ``pytest -m chaos``).

Each plan injects deterministic faults into a live database while a set
of reference queries runs; the invariant is *identical results or a
typed error, never a hang and never silent corruption*.
"""

from __future__ import annotations

import pytest

from repro.faults import DEFAULT_PLANS, run_chaos
from repro.faults.injector import FaultPlan


pytestmark = pytest.mark.chaos


def test_default_plan_roster_is_broad():
    assert len(DEFAULT_PLANS) >= 5
    names = [plan.name for plan in DEFAULT_PLANS]
    assert len(names) == len(set(names))
    # Every plan parses back from its own text form (CLI --plan syntax).
    for plan in DEFAULT_PLANS:
        parsed = FaultPlan.parse(plan.to_text())
        assert parsed.rules == plan.rules


def test_quick_chaos_run_survives_and_fires_faults():
    report = run_chaos(quick=True)
    assert report.ok, report.to_text()
    assert report.hung == 0
    assert report.failed == 0
    assert report.survived == len(report.outcomes)
    # The harness is only meaningful if faults actually fired.
    assert sum(report.faults_fired.values()) > 0


def test_chaos_cli_quick_exit_code(capsys):
    from repro.cli import main

    assert main(["chaos", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "survived" in out


def test_chaos_cli_rejects_bad_plan(capsys):
    from repro.cli import main

    assert main(["chaos", "--plan", "udf.batch_call:sometimes"]) == 2


def test_concurrent_sessions_chaos_survives():
    """Every fault site fired from multiple live server sessions: the
    serial invariant (right rows or a typed error, no hangs) must hold
    under concurrency too."""
    report = run_chaos(quick=True, sessions=4)
    assert report.ok, report.to_text()
    assert report.hung == 0
    assert report.failed == 0
    # 3 quick plans x 4 sessions x 4 queries x 1 repetition.
    assert len(report.outcomes) == 48
    assert sum(report.faults_fired.values()) > 0


def test_chaos_cli_sessions_flag(capsys):
    from repro.cli import main

    assert main(["chaos", "--quick", "--sessions", "2"]) == 0
    assert "survived" in capsys.readouterr().out
