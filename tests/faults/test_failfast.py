"""Fail-fast morsel dispatch, breaker wiring, and cache-insert absorption."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import BatchUdf, Database
from repro.errors import CircuitOpenError, UdfError
from repro.faults.injector import InjectedFault
from repro.obs.metrics import MetricsRegistry
from repro.storage.schema import DataType


ROWS = 200
MORSEL_ROWS = 8


def make_parallel_db(**kwargs) -> tuple[Database, MetricsRegistry]:
    metrics = MetricsRegistry()
    db = Database(
        metrics=metrics,
        udf_workers=2,
        udf_morsel_rows=MORSEL_ROWS,
        **kwargs,
    )
    db.create_table_from_dict("t", {"a": [float(i) for i in range(ROWS)]})
    return db, metrics


class TestFailFastMorsels:
    def test_first_morsel_error_cancels_the_queue(self):
        """A permanent ``udf.batch_call`` fault poisons one morsel; the
        dispatcher must cancel the queued rest instead of running them."""
        db, metrics = make_parallel_db(
            fault_plan="seed=1; udf.batch_call:permanent#1",
            udf_breaker_threshold=0,  # isolate dispatch from the breaker
        )
        calls: list[int] = []
        lock = threading.Lock()

        def slow_echo(values: np.ndarray) -> np.ndarray:
            with lock:
                calls.append(len(values))
            time.sleep(0.01)
            return values.astype(np.float64)

        db.register_udf(
            BatchUdf(name="slow", fn=slow_echo, return_dtype=DataType.FLOAT64)
        )
        with pytest.raises(UdfError) as exc_info:
            db.query("SELECT slow(a) FROM t")
        # The worker's original fault rides along as the cause.
        assert isinstance(exc_info.value.__cause__, InjectedFault)

        total_morsels = ROWS // MORSEL_ROWS
        cancelled = metrics.counter("udf_morsels_cancelled_total").value
        assert cancelled > 0
        # Fail fast: most morsels never ran the model.
        assert len(calls) + cancelled <= total_morsels
        assert len(calls) < total_morsels

    def test_clean_parallel_run_unaffected(self):
        db, metrics = make_parallel_db()
        db.register_udf(
            BatchUdf(
                name="double_it",
                fn=lambda values: values * 2,
                return_dtype=DataType.FLOAT64,
            )
        )
        rows = db.query("SELECT double_it(a) FROM t WHERE a < 32")
        assert sorted(r[0] for r in rows) == [2.0 * i for i in range(32)]
        assert metrics.counter("udf_morsels_cancelled_total").value == 0


class TestBreaker:
    def test_breaker_opens_after_repeated_failures(self):
        db, metrics = make_parallel_db(
            fault_plan="udf.batch_call:permanent",
            udf_breaker_threshold=2,
        )
        db.register_udf(
            BatchUdf(
                name="doomed",
                fn=lambda values: values,
                return_dtype=DataType.FLOAT64,
            )
        )
        for _ in range(2):
            with pytest.raises(UdfError):
                db.query("SELECT doomed(a) FROM t WHERE a < 4")
        # Threshold reached: the third call is rejected up front.
        with pytest.raises(CircuitOpenError) as exc_info:
            db.query("SELECT doomed(a) FROM t WHERE a < 4")
        assert exc_info.value.udf_name == "doomed"
        assert exc_info.value.retry_after_s > 0
        assert db.udfs.breaker_states()["doomed"] == "open"
        assert metrics.counter("udf_breaker_rejections_total").value == 1
        assert metrics.counter("udf_breaker_opened_total").value == 1

    def test_breaker_recovers_after_cooldown(self):
        clock_now = [0.0]
        db, _ = make_parallel_db(
            udf_breaker_threshold=2, udf_breaker_reset_s=5.0
        )
        db.udfs.configure_breakers(
            failure_threshold=2, reset_timeout_s=5.0, clock=lambda: clock_now[0]
        )
        boom = {"on": True}

        def sometimes(values: np.ndarray) -> np.ndarray:
            if boom["on"]:
                raise RuntimeError("model crashed")
            return values.astype(np.float64)

        db.register_udf(
            BatchUdf(name="flappy", fn=sometimes, return_dtype=DataType.FLOAT64)
        )
        for _ in range(2):
            with pytest.raises(UdfError):
                db.query("SELECT flappy(a) FROM t WHERE a < 4")
        with pytest.raises(CircuitOpenError):
            db.query("SELECT flappy(a) FROM t WHERE a < 4")
        # Cooldown passes, the model is healthy again: probe succeeds
        # and the breaker closes.
        clock_now[0] = 6.0
        boom["on"] = False
        rows = db.query("SELECT flappy(a) FROM t WHERE a < 4")
        assert len(rows) == 4
        assert db.udfs.breaker_states()["flappy"] == "closed"


class TestCacheInsertAbsorbed:
    def test_insert_fault_degrades_not_fails(self):
        """``cache.insert`` faults must never fail the query — the cache
        is an accelerator, so a dropped insert is just a future miss."""
        db, _ = make_parallel_db(
            udf_cache_bytes=1 << 20,
            fault_plan="cache.insert:permanent",
        )
        db.register_udf(
            BatchUdf(
                name="half",
                fn=lambda values: values / 2,
                return_dtype=DataType.FLOAT64,
                is_neural=True,
            )
        )
        rows = db.query("SELECT half(a) FROM t WHERE a < 16")
        assert sorted(r[0] for r in rows) == [i / 2 for i in range(16)]
        assert db.infer_cache.insert_failures > 0
        assert len(db.infer_cache) == 0  # nothing was admitted
