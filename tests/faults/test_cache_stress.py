"""Concurrency stress for the inference cache.

The parallel UDF dispatcher hits the cache from worker threads while the
main thread inserts and invalidates; these tests hammer the same paths
from many threads and check the invariants that matter: the byte budget
holds, counters stay consistent, and no value is ever served under the
wrong key.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.infer_cache import MISSING, InferenceCache


THREADS = 6
OPS_PER_THREAD = 300


def run_threads(target) -> list[BaseException]:
    errors: list[BaseException] = []

    def wrapped(seed: int) -> None:
        try:
            target(seed)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(seed,))
        for seed in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def key_for(seed: int, i: int) -> bytes:
    return bytes([seed]) + i.to_bytes(4, "big")


def test_parallel_put_get_invalidate_holds_invariants():
    cache = InferenceCache(max_bytes=8 * 1024)

    def worker(seed: int) -> None:
        namespace = f"udf{seed % 3}"
        for i in range(OPS_PER_THREAD):
            key = key_for(seed, i)
            cache.put(namespace, key, float(seed * OPS_PER_THREAD + i))
            values, missed = cache.get_many(namespace, [key])
            if values[0] is not MISSING:
                # Never the wrong value, even under concurrent eviction.
                assert values[0] == float(seed * OPS_PER_THREAD + i)
            else:
                assert missed == [0]
            if i % 50 == 49:
                cache.invalidate(namespace)

    errors = run_threads(worker)
    assert errors == []
    assert 0 <= cache.bytes_used <= cache.max_bytes
    total_lookups = THREADS * OPS_PER_THREAD
    assert cache.hits + cache.misses == total_lookups
    stats = cache.stats_dict()
    assert stats["entries"] == len(cache)
    assert stats["bytes"] == cache.bytes_used


def test_parallel_batch_lookups_count_every_row():
    cache = InferenceCache(max_bytes=1 << 20)
    shared_keys = [key_for(0, i) for i in range(32)]
    for key in shared_keys:
        cache.put("shared", key, 1.0)

    def worker(seed: int) -> None:
        for _ in range(OPS_PER_THREAD):
            values, missed = cache.get_many("shared", shared_keys)
            assert missed == []
            assert all(value == 1.0 for value in values)

    errors = run_threads(worker)
    assert errors == []
    assert cache.hits == THREADS * OPS_PER_THREAD * len(shared_keys)
    assert cache.misses == 0
    assert cache.evictions == 0


def test_eviction_under_pressure_never_breaks_budget():
    cache = InferenceCache(max_bytes=2 * 1024)

    def worker(seed: int) -> None:
        for i in range(OPS_PER_THREAD):
            cache.put("hot", key_for(seed, i), float(i))

    errors = run_threads(worker)
    assert errors == []
    assert 0 < cache.bytes_used <= cache.max_bytes
    assert cache.evictions > 0
    # Whatever survived is individually retrievable.
    survivors = 0
    for seed in range(THREADS):
        for i in range(OPS_PER_THREAD):
            values, _ = cache.get_many("hot", [key_for(seed, i)])
            if values[0] is not MISSING:
                survivors += 1
                assert values[0] == float(i)
    assert survivors == len(cache)


def test_budget_validation():
    with pytest.raises(ValueError):
        InferenceCache(max_bytes=0)
