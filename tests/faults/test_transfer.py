"""The typed, checksummed transfer boundary (independent strategy)."""

from __future__ import annotations

import pytest

from repro.errors import TransferError
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.strategies.transfer import (
    CHECKSUM_BYTES,
    deserialize_payload,
    roundtrip,
    serialize_payload,
)


def test_roundtrip_identity():
    payload = [("frame", 1, 0.5), ("frame", 2, 1.5)]
    result, nbytes = roundtrip(payload)
    assert result == payload
    assert nbytes > 0


def test_unpicklable_payload_is_permanent_transfer_error():
    # Regression: the boundary used to die with a raw pickle error.
    unpicklable = [lambda x: x]
    with pytest.raises(TransferError) as exc_info:
        serialize_payload(unpicklable, stage="db_to_dl.serialize")
    error = exc_info.value
    assert error.stage == "db_to_dl.serialize"
    assert not error.transient  # a retry cannot fix this payload


def test_truncated_payload_is_transient():
    with pytest.raises(TransferError) as exc_info:
        deserialize_payload(b"\x00" * (CHECKSUM_BYTES - 1), stage="probe")
    error = exc_info.value
    assert error.transient
    assert error.nbytes == CHECKSUM_BYTES - 1


def test_tampered_payload_detected_by_checksum():
    data = bytearray(serialize_payload({"rows": [1, 2, 3]}))
    data[-1] ^= 0xFF
    with pytest.raises(TransferError) as exc_info:
        deserialize_payload(bytes(data), stage="probe")
    error = exc_info.value
    assert error.transient
    assert "corruption" in str(error)


def test_injected_corruption_detected_not_served():
    faults = FaultInjector("seed=2; transfer.serialize:corrupt#1")
    payload = [("frame", i) for i in range(16)]
    with pytest.raises(TransferError) as exc_info:
        roundtrip(payload, faults=faults, stage="wire")
    assert exc_info.value.transient


def test_injected_corruption_survives_with_retry():
    faults = FaultInjector("seed=2; transfer.serialize:corrupt#1")
    payload = [("frame", i) for i in range(16)]
    policy = RetryPolicy(sleep=lambda _: None)
    result, _ = call_with_retry(
        lambda: roundtrip(payload, faults=faults, stage="wire"),
        policy=policy,
    )
    assert result == payload  # second attempt crossed clean


def test_injected_permanent_fault_propagates_with_stage():
    faults = FaultInjector("transfer.deserialize:permanent")
    with pytest.raises(TransferError) as exc_info:
        roundtrip([1, 2, 3], faults=faults, stage="dl_to_db")
    error = exc_info.value
    assert error.stage == "dl_to_db.deserialize"
    assert not error.transient


def test_independent_strategy_surfaces_transfer_error(
    tiny_dataset, detect_task
):
    """End to end: a permanently failing boundary kills the strategy with
    a typed TransferError naming the stage, not a raw pickle error."""
    from repro.engine import Database
    from repro.strategies.base import QueryType
    from repro.strategies.independent import IndependentStrategy
    from repro.workload.queries import QueryGenerator

    db = Database(fault_plan="transfer.serialize:permanent")
    tiny_dataset.install(db)
    strategy = IndependentStrategy(
        retry_policy=RetryPolicy(sleep=lambda _: None)
    )
    strategy.bind_task(db, detect_task)
    query = QueryGenerator(tiny_dataset).make_query(QueryType(3), 0.2)
    with pytest.raises(TransferError) as exc_info:
        strategy.run(db, query, {"detect": detect_task})
    assert exc_info.value.stage == "db_to_dl.serialize"


def test_transfer_retries_counted_in_metrics(tiny_dataset, detect_task):
    from repro.engine import Database
    from repro.obs.metrics import MetricsRegistry
    from repro.strategies.base import QueryType
    from repro.strategies.independent import IndependentStrategy
    from repro.workload.queries import QueryGenerator

    metrics = MetricsRegistry()
    db = Database(
        metrics=metrics,
        fault_plan="seed=4; transfer.serialize:transient#1",
    )
    tiny_dataset.install(db)
    strategy = IndependentStrategy(
        retry_policy=RetryPolicy(sleep=lambda _: None)
    )
    strategy.bind_task(db, detect_task)
    query = QueryGenerator(tiny_dataset).make_query(QueryType(3), 0.2)
    result = strategy.run(db, query, {"detect": detect_task})
    assert result.rows is not None
    assert (
        metrics.counter(
            "transfer_retries_total",
            "Transient transfer failures retried with backoff",
        ).value
        == 1
    )
