"""Retry policy: backoff shape, retryability filtering, exhaustion."""

from __future__ import annotations

import pytest

from repro.errors import TransferError
from repro.faults.retry import RetryPolicy, call_with_retry


def make_policy(**overrides):
    slept: list[float] = []
    defaults = dict(
        max_attempts=3, base_delay_s=0.01, max_delay_s=0.04,
        jitter=0.0, sleep=slept.append,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults), slept


def transient(stage="probe"):
    return TransferError("flaky", stage=stage, transient=True)


def test_succeeds_after_transient_failures():
    policy, slept = make_policy()
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise transient()
        return "ok"

    assert call_with_retry(flaky, policy=policy) == "ok"
    assert calls["n"] == 3
    assert len(slept) == 2


def test_backoff_grows_exponentially_and_caps():
    policy, _ = make_policy(max_attempts=5, jitter=0.0)
    delays = [policy.delay_for(n) for n in range(4)]
    assert delays == pytest.approx([0.01, 0.02, 0.04, 0.04])


def test_jitter_stays_in_band_and_is_seeded():
    policy_a = RetryPolicy(jitter=0.5, seed=11, sleep=lambda _: None)
    policy_b = RetryPolicy(jitter=0.5, seed=11, sleep=lambda _: None)
    delays_a = [policy_a.delay_for(0) for _ in range(8)]
    delays_b = [policy_b.delay_for(0) for _ in range(8)]
    assert delays_a == delays_b  # seeded jitter replays
    for delay in delays_a:
        assert policy_a.base_delay_s <= delay <= policy_a.base_delay_s * 1.5


def test_permanent_error_not_retried():
    policy, slept = make_policy()
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise TransferError("dead", stage="serialize", transient=False)

    with pytest.raises(TransferError):
        call_with_retry(broken, policy=policy)
    assert calls["n"] == 1
    assert slept == []


def test_exhaustion_raises_last_error():
    policy, slept = make_policy(max_attempts=3)
    calls = {"n": 0}

    def always_flaky():
        calls["n"] += 1
        raise transient(stage=f"attempt{calls['n']}")

    with pytest.raises(TransferError) as exc_info:
        call_with_retry(always_flaky, policy=policy)
    assert exc_info.value.stage == "attempt3"
    assert calls["n"] == 3
    assert len(slept) == 2  # no sleep after the final failure


def test_on_retry_hook_sees_each_retry():
    policy, _ = make_policy()
    seen: list[tuple[int, str]] = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise transient()
        return "ok"

    call_with_retry(
        flaky, policy=policy,
        on_retry=lambda attempt, exc: seen.append((attempt, exc.stage)),
    )
    assert seen == [(1, "probe"), (2, "probe")]


def test_custom_retryable_filter():
    policy, _ = make_policy()
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise ValueError("once")
        return calls["n"]

    result = call_with_retry(
        flaky, policy=policy,
        retryable=lambda exc: isinstance(exc, ValueError),
    )
    assert result == 2


def test_max_attempts_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
