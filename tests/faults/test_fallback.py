"""FallbackChain: graceful degradation across strategies."""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.errors import CircuitOpenError, TransferError, UdfError
from repro.obs.metrics import MetricsRegistry
from repro.strategies import FallbackChain
from repro.strategies.base import (
    CostBreakdown,
    QueryType,
    Strategy,
    StrategyCapabilities,
    StrategyResult,
)


STUB_CAPABILITIES = StrategyCapabilities(
    implementation_complexity="Low",
    flexibility="-",
    optimization="-",
    scalability="-",
    io_cost="-",
    gpu_support="-",
)


class StubStrategy(Strategy):
    """A scriptable strategy: fails with ``error`` or answers ``rows``."""

    capabilities = STUB_CAPABILITIES

    def __init__(self, name, *, error=None, rows=((1,),)):
        super().__init__()
        self.name = name
        self.error = error
        self.rows = [tuple(r) for r in rows]
        self.bound: list[str] = []
        self.runs = 0

    def bind_task(self, db, task):
        self.bound.append(task.name)
        return 0.0

    def unbind_task(self, db, task):
        self.bound.remove(task.name)

    def run(self, db, query, tasks):
        self.runs += 1
        if self.error is not None:
            raise self.error
        return StrategyResult(rows=list(self.rows), breakdown=CostBreakdown())


class FakeTask:
    name = "stub_task"


class TestFallbackChainUnit:
    def setup_method(self):
        self.db = Database(metrics=MetricsRegistry())
        self.tasks = {"detect": FakeTask()}

    def test_primary_serves_when_healthy(self):
        primary = StubStrategy("primary")
        backup = StubStrategy("backup")
        chain = FallbackChain([primary, backup])
        chain.bind_task(self.db, FakeTask())
        result = chain.run(self.db, None, self.tasks)
        assert result.details["served_by"] == "primary"
        assert result.details["degraded"] is False
        assert "fallback_failures" not in result.details
        # The safety net stayed lazy: backup never bound, never ran.
        assert backup.bound == []
        assert backup.runs == 0

    @pytest.mark.parametrize(
        "error",
        [
            UdfError("model exploded"),
            CircuitOpenError("breaker open", udf_name="nUDF_detect"),
            TransferError("wire noise", stage="db_to_dl", transient=True),
        ],
        ids=["udf-error", "circuit-open", "transfer-error"],
    )
    def test_recoverable_error_falls_through(self, error):
        primary = StubStrategy("primary", error=error)
        backup = StubStrategy("backup", rows=((42,),))
        chain = FallbackChain([primary, backup])
        result = chain.run(self.db, None, self.tasks)
        assert result.rows == [(42,)]
        assert result.details["served_by"] == "backup"
        assert result.details["degraded"] is True
        assert result.details["fallback_failures"] == [f"primary: {error}"]
        # The backup was bound lazily, on first need.
        assert backup.bound == ["stub_task"]
        assert (
            self.db.metrics.counter("strategy_fallbacks_total").value == 1
        )

    def test_unrecoverable_error_propagates(self):
        primary = StubStrategy("primary", error=ValueError("logic bug"))
        backup = StubStrategy("backup")
        chain = FallbackChain([primary, backup])
        with pytest.raises(ValueError, match="logic bug"):
            chain.run(self.db, None, self.tasks)
        assert backup.runs == 0  # bugs must not be papered over

    def test_all_strategies_fail_raises_last(self):
        chain = FallbackChain(
            [
                StubStrategy("a", error=UdfError("first")),
                StubStrategy("b", error=UdfError("second")),
            ]
        )
        with pytest.raises(UdfError, match="second"):
            chain.run(self.db, None, self.tasks)
        assert (
            self.db.metrics.counter("strategy_fallbacks_total").value == 2
        )

    def test_unbind_covers_lazily_bound_strategies(self):
        task = FakeTask()
        primary = StubStrategy("primary", error=UdfError("down"))
        backup = StubStrategy("backup")
        chain = FallbackChain([primary, backup])
        chain.bind_task(self.db, task)
        chain.run(self.db, None, {"detect": task})
        chain.unbind_task(self.db, task)
        assert primary.bound == []
        assert backup.bound == []

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackChain([])


def test_loose_falls_back_to_independent(tiny_dataset, detect_task):
    """End to end: the in-database UDF path is poisoned with permanent
    faults, so the chain degrades to the independent strategy — which
    pulls the data out and never calls the in-database UDF."""
    from repro.strategies import IndependentStrategy, LooseStrategy
    from repro.workload.queries import QueryGenerator

    metrics = MetricsRegistry()
    db = Database(metrics=metrics, fault_plan="udf.batch_call:permanent")
    tiny_dataset.install(db)
    chain = FallbackChain([LooseStrategy(), IndependentStrategy()])
    chain.bind_task(db, detect_task)
    query = QueryGenerator(tiny_dataset).make_query(QueryType(3), 0.2)

    result = chain.run(db, query, {"detect": detect_task})

    assert result.details["served_by"] == "DB-PyTorch"
    assert result.details["degraded"] is True
    assert any(
        "DB-UDF" in failure
        for failure in result.details["fallback_failures"]
    )
    assert metrics.counter("strategy_fallbacks_total").value == 1

    # The degraded answer is the *correct* answer: a clean database
    # serving the same query through the primary agrees row for row.
    clean_db = Database()
    tiny_dataset.install(clean_db)
    loose = LooseStrategy()
    loose.bind_task(clean_db, detect_task)
    clean = loose.run(clean_db, query, {"detect": detect_task})
    assert sorted(result.rows) == sorted(clean.rows)
