"""Fault-plan parsing and the injector's deterministic schedule."""

from __future__ import annotations

import pytest

from repro.faults.injector import (
    KNOWN_SITES,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFault,
    make_injector,
)


class TestPlanParsing:
    def test_single_rule(self):
        plan = FaultPlan.parse("udf.batch_call:transient")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.site == "udf.batch_call"
        assert rule.kind == "transient"
        assert rule.probability == 1.0
        assert rule.max_fires is None

    def test_modifiers_any_order(self):
        for text in (
            "udf.batch_call:transient@0.25#3",
            "udf.batch_call:transient#3@0.25",
        ):
            rule = FaultPlan.parse(text).rules[0]
            assert rule.probability == 0.25
            assert rule.max_fires == 3

    def test_latency_modifier(self):
        rule = FaultPlan.parse("operator.*:latency~0.002@0.1").rules[0]
        assert rule.latency_s == 0.002
        assert rule.probability == 0.1

    def test_seed_element(self):
        plan = FaultPlan.parse("seed=7; cache.insert:permanent")
        assert plan.seed == 7
        assert len(plan.rules) == 1

    def test_to_text_roundtrip(self):
        text = "seed=7; udf.batch_call:transient@0.25#3; operator.*:latency~0.002@0.1"
        plan = FaultPlan.parse(text)
        again = FaultPlan.parse(plan.to_text())
        assert again.rules == plan.rules
        assert again.seed == plan.seed

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultPlan.parse("udf.bach_call:transient")

    def test_glob_site_allowed(self):
        rule = FaultPlan.parse("transfer.*:corrupt").rules[0]
        assert rule.matches("transfer.serialize")
        assert rule.matches("transfer.deserialize")
        assert not rule.matches("udf.batch_call")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.parse("udf.batch_call:sometimes")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("udf.batch_call:transient@1.5")

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultPlanError, match="bad seed"):
            FaultPlan.parse("seed=banana; udf.batch_call:transient")

    def test_every_known_site_parses(self):
        for site in KNOWN_SITES:
            assert FaultPlan.parse(f"{site}:transient").rules[0].site == site


class TestInjector:
    def test_fires_transient_fault(self):
        injector = FaultInjector("udf.batch_call:transient")
        with pytest.raises(InjectedFault) as exc_info:
            injector.fire("udf.batch_call", udf="f")
        assert exc_info.value.transient
        assert exc_info.value.site == "udf.batch_call"

    def test_permanent_fault_not_transient(self):
        injector = FaultInjector("udf.batch_call:permanent")
        with pytest.raises(InjectedFault) as exc_info:
            injector.fire("udf.batch_call")
        assert not exc_info.value.transient

    def test_non_matching_site_is_noop(self):
        injector = FaultInjector("udf.batch_call:permanent")
        injector.fire("cache.insert")
        assert injector.total_fired() == 0

    def test_max_fires(self):
        injector = FaultInjector("udf.batch_call:transient#2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.fire("udf.batch_call")
        injector.fire("udf.batch_call")  # exhausted: no raise
        assert injector.stats() == {"udf.batch_call": 2}

    def test_probability_schedule_is_deterministic(self):
        plan = "seed=3; udf.batch_call:transient@0.5"

        def schedule(injector: FaultInjector) -> list[bool]:
            fired = []
            for _ in range(64):
                try:
                    injector.fire("udf.batch_call")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        first = schedule(FaultInjector(plan))
        second = schedule(FaultInjector(plan))
        assert first == second
        assert any(first) and not all(first)

    def test_latency_uses_injected_sleep(self):
        slept: list[float] = []
        injector = FaultInjector(
            "operator.next_batch:latency~0.25", sleep=slept.append
        )
        injector.fire("operator.next_batch")
        assert slept == [0.25]

    def test_corrupt_flips_one_byte(self):
        injector = FaultInjector("seed=5; transfer.serialize:corrupt#1")
        payload = bytes(range(32))
        mutated = injector.corrupt("transfer.serialize", payload)
        differing = [
            i for i, (a, b) in enumerate(zip(payload, mutated)) if a != b
        ]
        assert len(differing) == 1
        # Exhausted after one fire: further payloads pass untouched.
        assert injector.corrupt("transfer.serialize", payload) == payload

    def test_fire_ignores_corrupt_rules(self):
        injector = FaultInjector("transfer.serialize:corrupt")
        injector.fire("transfer.serialize")  # corrupt never raises
        assert injector.total_fired() == 0


class TestMakeInjector:
    def test_none_passthrough(self):
        assert make_injector(None) is None

    def test_text_plan(self):
        injector = make_injector("udf.batch_call:transient")
        assert isinstance(injector, FaultInjector)

    def test_injector_passthrough(self):
        injector = FaultInjector(FaultPlan())
        assert make_injector(injector) is injector

    def test_plan_object(self):
        plan = FaultPlan(rules=(FaultRule("cache.insert", "permanent"),))
        assert make_injector(plan).plan is plan


def test_database_reads_fault_plan_env(monkeypatch):
    from repro.engine import Database

    monkeypatch.setenv("FAULT_PLAN", "seed=9; udf.batch_call:permanent#1")
    db = Database()
    assert db.faults is not None
    assert db.faults.plan.seed == 9

    monkeypatch.delenv("FAULT_PLAN")
    assert Database().faults is None
