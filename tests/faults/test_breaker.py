"""Circuit-breaker state machine, on a fake clock."""

from __future__ import annotations

import pytest

from repro.faults.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, reset_timeout_s=10.0, clock=clock
    )


def test_starts_closed_and_allows(breaker):
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_opens_after_consecutive_failures(breaker):
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    assert breaker.times_opened == 1


def test_success_resets_failure_streak(breaker):
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_retry_after_counts_down(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    assert breaker.retry_after_s() == pytest.approx(10.0)
    clock.now = 4.0
    assert breaker.retry_after_s() == pytest.approx(6.0)


def test_half_open_admits_single_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.now = 10.0
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.allow()  # the probe slot
    assert not breaker.allow()  # everyone else waits for the probe


def test_probe_success_closes(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.now = 10.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_immediately(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.now = 10.0
    assert breaker.allow()
    breaker.record_failure()  # one probe failure, not threshold-many
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    assert breaker.times_opened == 2
    # Fresh cooldown from the reopen instant.
    assert breaker.retry_after_s() == pytest.approx(10.0)


def test_threshold_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
