"""DB-PyTorch strategy specifics: export, inference, import, rewrite."""

import pytest

from repro.strategies import IndependentStrategy, QueryType
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


@pytest.fixture()
def setup(tiny_dataset, tiny_repository):
    bench = QueryBenchmark(tiny_dataset, tiny_repository)
    db = bench.fresh_database()
    generator = QueryGenerator(tiny_dataset)
    return bench, db, generator


class TestCoordination:
    def test_exports_only_sargable_candidates(self, setup, detect_task):
        """The app layer pushes the date predicate into its export query,
        so inference runs on the date window, not the whole video table."""
        _, db, generator = setup
        strategy = IndependentStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.1)
        result = strategy.run(db, query, {"detect": detect_task})
        total_videos = db.table("video").num_rows
        assert 0 < result.details["inferred_rows"] < total_videos

    def test_transfer_bytes_accounted(self, setup, detect_task):
        _, db, generator = setup
        strategy = IndependentStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5)
        result = strategy.run(db, query, {"detect": detect_task})
        assert result.details["transfer_bytes"] > 0

    def test_rewritten_sql_has_no_udf(self, setup, detect_task):
        _, db, generator = setup
        strategy = IndependentStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5)
        result = strategy.run(db, query, {"detect": detect_task})
        rewritten = result.details["rewritten_sql"]
        assert "nUDF" not in rewritten
        assert "pred_detect" in rewritten.lower() or "P_detect" in rewritten

    def test_prediction_table_registered_temp(self, setup, detect_task):
        _, db, generator = setup
        strategy = IndependentStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5)
        strategy.run(db, query, {"detect": detect_task})
        assert db.catalog.has("pred_detect")
        assert db.catalog.is_temp("pred_detect")

    def test_type2_aggregate_rewrite(self, setup, detect_task):
        """nUDF inside count() in the select list must also rewrite."""
        _, db, generator = setup
        strategy = IndependentStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.DB_DEPENDS_ON_LEARNING, 0.8)
        result = strategy.run(db, query, {"detect": detect_task})
        assert "nUDF" not in result.details["rewritten_sql"]
        assert len(result.rows) >= 0  # executed without error

    def test_breakdown_loading_includes_serialization(self, setup, detect_task):
        _, db, generator = setup
        strategy = IndependentStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5)
        result = strategy.run(db, query, {"detect": detect_task})
        assert result.breakdown.loading > 0
        assert result.breakdown.relational > 0
