"""Strategy abstractions + Table III capabilities encoding."""

import numpy as np
import pytest

from repro.hardware import EDGE_ARM, SERVER_CPU, SERVER_GPU
from repro.strategies import (
    CollaborativeQuery,
    CostBreakdown,
    IndependentStrategy,
    LooseStrategy,
    QueryType,
    TightStrategy,
)


class TestQueryType:
    def test_table1_difficulties(self):
        assert QueryType.INDEPENDENT.difficulty == "Easy"
        assert QueryType.DB_DEPENDS_ON_LEARNING.difficulty == "Medium"
        assert QueryType.LEARNING_DEPENDS_ON_DB.difficulty == "Medium"
        assert QueryType.INTERDEPENDENT.difficulty == "Hard"

    def test_four_types(self):
        assert [int(t) for t in QueryType] == [1, 2, 3, 4]


class TestCostBreakdown:
    def test_total(self):
        breakdown = CostBreakdown(loading=1.0, inference=2.0, relational=0.5)
        assert breakdown.total == 3.5

    def test_add(self):
        a = CostBreakdown(1.0, 2.0, 3.0)
        b = CostBreakdown(0.5, 0.5, 0.5)
        combined = a + b
        assert combined.loading == 1.5
        assert combined.total == 7.5

    def test_scaled(self):
        breakdown = CostBreakdown(2.0, 4.0, 6.0).scaled(0.5)
        assert (breakdown.loading, breakdown.inference, breakdown.relational) == (
            1.0, 2.0, 3.0,
        )


class TestTable3Capabilities:
    """Table III encoded on the strategy classes."""

    def test_complexity_ordering(self):
        assert IndependentStrategy.capabilities.implementation_complexity == "Easy"
        assert LooseStrategy.capabilities.implementation_complexity == "Medium"
        assert TightStrategy.capabilities.implementation_complexity == "Hard"

    def test_io_cost_ordering(self):
        assert IndependentStrategy.capabilities.io_cost == "High"
        assert LooseStrategy.capabilities.io_cost == "Medium"
        assert TightStrategy.capabilities.io_cost == "Low"

    def test_only_tight_gets_cost_model_optimization(self):
        assert "cost model" in TightStrategy.capabilities.optimization
        assert "black box" in IndependentStrategy.capabilities.optimization
        assert "cannot be optimized" in LooseStrategy.capabilities.optimization

    def test_gpu_support(self):
        assert IndependentStrategy.capabilities.gpu_support == "Easy"
        assert "database" in LooseStrategy.capabilities.gpu_support


class TestHardwareScaling:
    def test_gpu_requires_gpu_profile(self):
        with pytest.raises(ValueError):
            LooseStrategy(profile=EDGE_ARM, use_gpu=True)
        LooseStrategy(profile=SERVER_GPU, use_gpu=True)  # fine

    def test_edge_penalizes_dl_runtime(self):
        edge = LooseStrategy(profile=EDGE_ARM)
        server = LooseStrategy(profile=SERVER_CPU)
        assert edge.scale_dl_seconds(1.0) > server.scale_dl_seconds(1.0)

    def test_gpu_accelerates_dl(self):
        gpu = LooseStrategy(profile=SERVER_GPU, use_gpu=True)
        cpu = LooseStrategy(profile=SERVER_GPU, use_gpu=False)
        assert gpu.scale_dl_seconds(1.0) < cpu.scale_dl_seconds(1.0)

    def test_transfer_zero_without_gpu(self):
        strategy = LooseStrategy(profile=SERVER_CPU)
        assert strategy.gpu_transfer_seconds(10**9) == 0.0

    def test_transfer_positive_with_gpu(self):
        strategy = LooseStrategy(profile=SERVER_GPU, use_gpu=True)
        assert strategy.gpu_transfer_seconds(10**9) > 0.0


class TestModelTask:
    def test_detect_returns_bool(self, detect_task):
        assert detect_task.returns_bool
        keyframe = np.zeros(detect_task.student.input_shape)
        assert isinstance(detect_task.predict_value(keyframe), bool)

    def test_classify_returns_label(self, classify_task):
        assert not classify_task.returns_bool
        keyframe = np.zeros(classify_task.student.input_shape)
        assert classify_task.predict_value(keyframe) in (
            classify_task.class_labels
        )

    def test_udf_names(self, detect_task, classify_task):
        assert detect_task.udf_name() == "nUDF_detect"
        assert classify_task.udf_name() == "nUDF_classify"

    def test_selectivity_estimator_from_histogram(self, detect_task):
        estimator = detect_task.selectivity()
        total = estimator.selectivity_equals(True) + (
            estimator.selectivity_equals(False)
        )
        assert total == pytest.approx(1.0)

    def test_query_metadata(self):
        query = CollaborativeQuery(
            sql="SELECT 1",
            query_type=QueryType.INDEPENDENT,
            udf_roles=("classify",),
        )
        assert query.udf_roles == ("classify",)
