"""DB-UDF strategy specifics."""

import pytest

from repro.errors import WorkloadError
from repro.hardware import SERVER_GPU
from repro.strategies import LooseStrategy, QueryType
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


@pytest.fixture()
def setup(tiny_dataset, tiny_repository):
    bench = QueryBenchmark(tiny_dataset, tiny_repository)
    db = bench.fresh_database()
    generator = QueryGenerator(tiny_dataset)
    return bench, db, generator


class TestBinding:
    def test_bind_registers_udf(self, setup, detect_task):
        _, db, _ = setup
        strategy = LooseStrategy()
        seconds = strategy.bind_task(db, detect_task)
        assert seconds > 0
        assert "nUDF_detect" in db.udfs
        udf = db.udfs.get("nUDF_detect")
        assert udf.is_neural
        assert udf.selectivity_of is not None

    def test_unbind(self, setup, detect_task):
        _, db, _ = setup
        strategy = LooseStrategy()
        strategy.bind_task(db, detect_task)
        strategy.unbind_task(db, detect_task)
        assert "nUDF_detect" not in db.udfs

    def test_unbound_run_raises(self, setup, detect_task, tiny_dataset):
        _, db, generator = setup
        strategy = LooseStrategy()
        query = generator.make_query(QueryType.DB_DEPENDS_ON_LEARNING, 0.5)
        with pytest.raises(WorkloadError):
            strategy.run(db, query, {"detect": detect_task})

    def test_missing_role_raises(self, setup):
        _, db, generator = setup
        strategy = LooseStrategy()
        query = generator.make_query(QueryType.DB_DEPENDS_ON_LEARNING, 0.5)
        with pytest.raises(WorkloadError):
            strategy.run(db, query, {})


class TestExecution:
    def test_breakdown_components(self, setup, detect_task):
        _, db, generator = setup
        strategy = LooseStrategy()
        bind_seconds = strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.8)
        result = strategy.run(db, query, {"detect": detect_task})
        # Model binding is charged by the benchmark layer; run() reports
        # inference + relational (and GPU transfers when enabled).
        assert bind_seconds > 0
        assert result.breakdown.inference > 0
        assert result.details["inferred_rows"] > 0

    def test_udf_is_black_box_to_optimizer(self, setup, detect_task):
        """The blob is opaque: the UDF's cost_per_row stays at its default
        (the paper: 'its execution cost cannot be effectively estimated')."""
        _, db, _ = setup
        strategy = LooseStrategy()
        strategy.bind_task(db, detect_task)
        assert db.udfs.get("nUDF_detect").cost_per_row == 0.0

    def test_gpu_block_marshalling_charged(self, setup, detect_task):
        _, db, generator = setup
        cpu = LooseStrategy(profile=SERVER_GPU, use_gpu=False)
        gpu = LooseStrategy(profile=SERVER_GPU, use_gpu=True)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.8)
        cpu.bind_task(db, detect_task)
        cpu_result = cpu.run(db, query, {"detect": detect_task})
        gpu.bind_task(db, detect_task)
        gpu_result = gpu.run(db, query, {"detect": detect_task})
        # GPU cuts inference but pays block-wise marshalling in loading.
        assert gpu_result.breakdown.inference < cpu_result.breakdown.inference
        assert gpu_result.breakdown.loading > cpu_result.breakdown.loading
