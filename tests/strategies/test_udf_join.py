"""Hint rule 3 end to end: nUDF as the join condition.

The paper's third hint adopts the symmetric hash join when the nUDF
appears in a join condition (``T0.nUDF(x) = T1.y``).  These tests drive
the rule through the full workload stack.
"""

import pytest

from repro.engine.logical import HashJoin, walk_plan
from repro.strategies import (
    IndependentStrategy,
    LooseStrategy,
    TightStrategy,
)
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


@pytest.fixture(scope="module")
def bench(tiny_dataset, tiny_repository):
    return QueryBenchmark(tiny_dataset, tiny_repository)


@pytest.fixture(scope="module")
def join_query(tiny_dataset):
    return QueryGenerator(tiny_dataset).make_udf_join_query(0.8)


def test_query_shape(join_query):
    assert "nUDF_recog(V.keyframe) = F.pattern" in join_query.sql


def test_op_plan_uses_symmetric_hash_join(bench, recog_task, join_query):
    db = bench.fresh_database()
    strategy = TightStrategy(optimized=True)
    strategy.bind_task(db, recog_task)
    plan = db.explain(join_query.sql).plan
    joins = [n for n in walk_plan(plan) if isinstance(n, HashJoin)]
    assert any(j.symmetric for j in joins)


def test_plain_plan_does_not(bench, recog_task, join_query):
    db = bench.fresh_database()
    strategy = TightStrategy(optimized=False)
    strategy.bind_task(db, recog_task)
    plan = db.explain(join_query.sql).plan
    joins = [n for n in walk_plan(plan) if isinstance(n, HashJoin)]
    # Without hints the nUDF conjunct stays a plain filter (over a cross
    # join) — it is never promoted to a symmetric hash join.
    assert not any(j.symmetric for j in joins)


def test_all_strategies_agree_on_udf_join(bench, recog_task, join_query):
    results = {}
    for strategy in (
        IndependentStrategy(),
        LooseStrategy(),
        TightStrategy(),
        TightStrategy(optimized=True),
    ):
        db = bench.fresh_database()
        strategy.bind_task(db, recog_task)
        outcome = strategy.run(db, join_query, {"recog": recog_task})
        results[strategy.name] = sorted(map(tuple, outcome.rows))
    baseline = results["DB-PyTorch"]
    assert baseline, "the join must produce rows at selectivity 0.8"
    for name, rows in results.items():
        assert rows == baseline, f"{name} disagrees"


def test_matches_python_reference(bench, recog_task, join_query, tiny_dataset):
    import datetime

    import numpy as np

    db = bench.fresh_database()
    strategy = TightStrategy(optimized=True)
    strategy.bind_task(db, recog_task)
    got = sorted(strategy.run(db, join_query, {"recog": recog_task}).rows)

    lo, hi = tiny_dataset.date_bounds_for_selectivity(0.8)
    lo_ord = datetime.date.fromisoformat(lo).toordinal()
    hi_ord = datetime.date.fromisoformat(hi).toordinal()
    fabric = tiny_dataset.tables["fabric"]
    video = tiny_dataset.tables["video"]

    expected = []
    for i in range(video.num_rows):
        v = dict(zip(video.schema.column_names, video.row(i)))
        if not (lo_ord <= v["date"] < hi_ord):
            continue
        label = recog_task.predict_value(np.asarray(v["keyframe"]))
        for j in range(fabric.num_rows):
            f = dict(zip(fabric.schema.column_names, fabric.row(j)))
            if lo_ord <= f["printdate"] < hi_ord and f["pattern"] == label:
                expected.append((f["patternID"], f["transID"]))
    assert got == sorted(expected)
