"""Application-layer query rewriting (DB-PyTorch's decomposition)."""

import pytest

from repro.errors import PlanError
from repro.sql.ast_nodes import BinaryOp, ColumnRef, FunctionCall, Literal
from repro.sql.parser import parse_statement
from repro.strategies.rewrite import (
    add_cross_table,
    replace_udf_calls,
    single_table_conjuncts,
    table_aliases,
    transform_expression,
)


QUERY = (
    "SELECT F.patternID FROM fabric F, video V "
    "WHERE F.printdate > '2021-01-01' AND F.transID = V.transID "
    "AND V.date > '2021-01-01' AND V.duration > 10 "
    "AND nUDF_detect(V.keyframe) = FALSE"
)


def parsed():
    return parse_statement(QUERY)


class TestTransformExpression:
    def test_replaces_nested_nodes(self):
        expression = parse_statement(
            "SELECT a + f(b) * 2"
        ).items[0].expression

        def fn(node):
            if isinstance(node, FunctionCall) and node.name == "f":
                return Literal(7)
            return None

        out = transform_expression(expression, fn)
        assert "f(" not in out.to_sql()
        assert "7" in out.to_sql()

    def test_identity_when_no_match(self):
        expression = parse_statement("SELECT a + 1").items[0].expression
        out = transform_expression(expression, lambda node: None)
        assert out.to_sql() == expression.to_sql()


class TestAliases:
    def test_table_aliases(self):
        assert table_aliases(parsed(), "video") == ["V"]
        assert table_aliases(parsed(), "fabric") == ["F"]
        assert table_aliases(parsed(), "missing") == []

    def test_unaliased_table_uses_own_name(self):
        statement = parse_statement("SELECT 1 FROM video WHERE duration > 1")
        assert table_aliases(statement, "video") == ["video"]


class TestSingleTableConjuncts:
    def test_video_only_predicates_extracted(self):
        conjuncts = single_table_conjuncts(
            parsed(),
            "video",
            {"videoid", "transid", "date", "duration", "keyframe"},
            exclude_udfs={"nUDF_detect"},
        )
        texts = [c.to_sql() for c in conjuncts]
        assert any("V.date" in t for t in texts)
        assert any("duration" in t for t in texts)
        # Join conditions and fabric predicates must not leak in.
        assert not any("transID = V.transID" in t for t in texts)
        assert not any("printdate" in t for t in texts)
        # The nUDF conjunct is excluded.
        assert not any("nUDF" in t for t in texts)

    def test_unknown_table_raises(self):
        with pytest.raises(PlanError):
            single_table_conjuncts(parsed(), "nowhere", set(), exclude_udfs=set())


class TestReplaceUdfCalls:
    def test_replacement_in_where(self):
        rewritten = replace_udf_calls(
            parsed(),
            {"nudf_detect": ColumnRef("prediction", table="P")},
        )
        sql = rewritten.to_sql()
        assert "nUDF_detect" not in sql
        assert "P.prediction" in sql

    def test_replacement_in_select_and_group(self):
        statement = parse_statement(
            "SELECT patternID, count(nUDF_detect(V.keyframe) = TRUE) "
            "FROM video V GROUP BY patternID"
        )
        rewritten = replace_udf_calls(
            statement, {"nudf_detect": ColumnRef("prediction", table="P")}
        )
        assert "nUDF_detect" not in rewritten.to_sql()

    def test_add_cross_table(self):
        statement = parse_statement("SELECT 1 FROM video V WHERE V.duration > 1")
        joined = add_cross_table(
            statement,
            "pred_detect",
            "P",
            BinaryOp(
                "=",
                ColumnRef("videoID", table="P"),
                ColumnRef("videoID", table="V"),
            ),
        )
        sql = joined.to_sql()
        assert "pred_detect P" in sql
        assert "(P.videoID = V.videoID)" in sql
