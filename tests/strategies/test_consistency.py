"""The cross-strategy oracle: all four configurations must return the
same rows for every query type — and agree with a Python reference
implementation computed directly from the raw tables.
"""

import datetime

import numpy as np
import pytest

from repro.strategies import (
    IndependentStrategy,
    LooseStrategy,
    QueryType,
    TightStrategy,
)
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


@pytest.fixture(scope="module")
def bench(tiny_dataset, tiny_repository):
    return QueryBenchmark(tiny_dataset, tiny_repository)


def all_strategies():
    return [
        IndependentStrategy(),
        LooseStrategy(),
        TightStrategy(),
        TightStrategy(optimized=True),
    ]


@pytest.mark.parametrize("query_type", list(QueryType))
@pytest.mark.parametrize("selectivity", [0.3, 0.8])
def test_strategies_agree(bench, tiny_dataset, query_type, selectivity):
    generator = QueryGenerator(tiny_dataset)
    query = generator.make_query(query_type, selectivity)
    results = {}
    for strategy in all_strategies():
        summary_db = bench.fresh_database()
        tasks = {}
        for role in query.udf_roles:
            task = bench.repository.pick(role)
            strategy.bind_task(summary_db, task)
            tasks[role] = task
        outcome = strategy.run(summary_db, query, tasks)
        results[strategy.name] = sorted(map(tuple, outcome.rows))
    baseline = results["DB-PyTorch"]
    for name, rows in results.items():
        assert rows == baseline, f"{name} disagrees with DB-PyTorch"


def test_type3_matches_python_reference(bench, tiny_dataset, detect_task):
    """Independent oracle: compute the Type-3 answer in plain Python."""
    generator = QueryGenerator(tiny_dataset)
    query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.9)

    strategy = LooseStrategy()
    db = bench.fresh_database()
    strategy.bind_task(db, detect_task)
    got = sorted(strategy.run(db, query, {"detect": detect_task}).rows)

    # Reference computation straight from the generated tables.
    fabric = tiny_dataset.tables["fabric"]
    video = tiny_dataset.tables["video"]
    lo, hi = tiny_dataset.date_bounds_for_selectivity(
        min(1.0, 0.9 / 0.25)
    )
    lo_ord = datetime.date.fromisoformat(lo).toordinal()
    hi_ord = datetime.date.fromisoformat(hi).toordinal()

    fabric_rows = {}
    for i in range(fabric.num_rows):
        row = dict(zip(fabric.schema.column_names, fabric.row(i)))
        if (
            row["humidity"] > 50
            and row["temperature"] > 25
            and lo_ord <= row["printdate"] < hi_ord
        ):
            fabric_rows.setdefault(row["transID"], []).append(row)

    expected = []
    for i in range(video.num_rows):
        row = dict(zip(video.schema.column_names, video.row(i)))
        if not (lo_ord <= row["date"] < hi_ord):
            continue
        for fabric_row in fabric_rows.get(row["transID"], []):
            if detect_task.predict_value(np.asarray(row["keyframe"])) is False:
                expected.append(
                    (fabric_row["patternID"], fabric_row["transID"])
                )
    assert got == sorted(expected)
