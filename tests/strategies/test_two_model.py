"""The paper's two-model query: conjunct ordering by nUDF selectivity.

Section II: "When the detect model predicts that 95% of the original data
records are irrelevant, and the classify model predicts that more than
60% ... are relevant, it would be more efficient to execute the detect
model before the classify model."
"""

import numpy as np
import pytest

from repro.engine import BatchUdf, Database
from repro.storage.schema import DataType
from repro.strategies import LooseStrategy, TightStrategy
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


def _counting_udf(name, passes, selectivity_true, counter):
    def fn(values):
        counter[name] = counter.get(name, 0) + len(values)
        return np.asarray([passes(v) for v in values], dtype=bool)

    return BatchUdf(
        name=name,
        fn=fn,
        return_dtype=DataType.BOOL,
        is_neural=True,
        selectivity_of=lambda label: (
            selectivity_true if label in (True, "TRUE", "true") else
            1.0 - selectivity_true
        ),
    )


class TestConjunctOrdering:
    def test_selective_model_runs_first(self):
        """The 5%-selective detect model must gate the 60%-selective
        classify model, not the other way around."""
        db = Database()
        db.create_table_from_dict("t", {"x": [float(i) for i in range(100)]})
        counter: dict[str, int] = {}
        db.register_udf(
            _counting_udf("nUDF_detect", lambda v: v < 5, 0.05, counter)
        )
        db.register_udf(
            _counting_udf("nUDF_classify", lambda v: v % 2 == 0, 0.6, counter)
        )
        db.query(
            "SELECT x FROM t WHERE nUDF_classify(x) = TRUE "
            "AND nUDF_detect(x) = TRUE"
        )
        # detect saw all 100 rows, classify only detect's 5 survivors —
        # despite classify being written first.
        assert counter["nUDF_detect"] == 100
        assert counter["nUDF_classify"] == 5

    def test_written_order_kept_without_histograms(self):
        db = Database()
        db.create_table_from_dict("t", {"x": [float(i) for i in range(10)]})
        counter: dict[str, int] = {}
        first = _counting_udf("nUDF_a", lambda v: v < 5, 0.5, counter)
        second = _counting_udf("nUDF_b", lambda v: True, 0.5, counter)
        first.selectivity_of = None
        second.selectivity_of = None
        db.register_udf(first)
        db.register_udf(second)
        db.query("SELECT x FROM t WHERE nUDF_a(x) = TRUE AND nUDF_b(x) = TRUE")
        assert counter["nUDF_a"] == 10
        assert counter["nUDF_b"] == 5  # written order preserved

    def test_negated_comparison_flips_selectivity(self):
        """`nUDF(x) = FALSE` with Pr(TRUE)=0.95 is highly selective and
        must run before a 50/50 model."""
        db = Database()
        db.create_table_from_dict("t", {"x": [float(i) for i in range(100)]})
        counter: dict[str, int] = {}
        db.register_udf(
            _counting_udf("nUDF_detect", lambda v: v >= 5, 0.95, counter)
        )
        db.register_udf(
            _counting_udf("nUDF_classify", lambda v: v % 2 == 0, 0.5, counter)
        )
        db.query(
            "SELECT x FROM t WHERE nUDF_classify(x) = TRUE "
            "AND nUDF_detect(x) = FALSE"
        )
        assert counter["nUDF_detect"] == 100
        assert counter["nUDF_classify"] == 5


class TestTwoModelWorkload:
    def test_strategies_agree(self, tiny_dataset, tiny_repository):
        bench = QueryBenchmark(tiny_dataset, tiny_repository)
        query = QueryGenerator(tiny_dataset).make_two_model_query(0.9)
        assert query.udf_roles == ("detect", "classify")
        from repro.strategies import IndependentStrategy

        results = {}
        for strategy in (
            IndependentStrategy(),
            LooseStrategy(),
            TightStrategy(),
            TightStrategy(optimized=True),
        ):
            db = bench.fresh_database()
            tasks = {}
            for role in query.udf_roles:
                task = tiny_repository.pick(role)
                strategy.bind_task(db, task)
                tasks[role] = task
            outcome = strategy.run(db, query, tasks)
            results[strategy.name] = sorted(map(tuple, outcome.rows))
        assert len(set(map(tuple, results.values()))) == 1

    def test_more_selective_task_gates_the_other(
        self, tiny_dataset, tiny_repository
    ):
        bench = QueryBenchmark(tiny_dataset, tiny_repository)
        query = QueryGenerator(tiny_dataset).make_two_model_query(1.0)
        db = bench.fresh_database()
        strategy = LooseStrategy()
        detect = tiny_repository.pick("detect")
        classify = tiny_repository.pick("classify")
        strategy.bind_task(db, detect)
        strategy.bind_task(db, classify)
        db.udfs.reset_stats()
        strategy.run(db, query, {"detect": detect, "classify": classify})
        detect_rows = db.udfs.get("nUDF_detect").stats.rows
        classify_rows = db.udfs.get("nUDF_classify").stats.rows
        # Whichever model the histograms rank more selective ran first and
        # saw at least as many rows as the other.
        assert detect_rows != classify_rows
        first_selectivity = detect.selectivity().selectivity_equals(True)
        second_selectivity = classify.selectivity().selectivity_equals(
            "Floral Pattern"
        )
        if first_selectivity < second_selectivity:
            assert detect_rows > classify_rows
        else:
            assert classify_rows > detect_rows
