"""DL2SQL / DL2SQL-OP strategy specifics."""

import pytest

from repro.core.hints import HintAwareCostModel
from repro.strategies import QueryType, TightStrategy
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


@pytest.fixture()
def setup(tiny_dataset, tiny_repository):
    bench = QueryBenchmark(tiny_dataset, tiny_repository)
    db = bench.fresh_database()
    generator = QueryGenerator(tiny_dataset)
    return bench, db, generator


class TestBinding:
    def test_bind_loads_model_tables(self, setup, detect_task):
        _, db, _ = setup
        strategy = TightStrategy()
        strategy.bind_task(db, detect_task)
        for table in detect_task.compiled.static_tables:
            assert db.catalog.has(table.name)
        assert "nUDF_detect" in db.udfs

    def test_calibrated_cost_per_row(self, setup, detect_task):
        """Binding measures one SQL inference and records it as the UDF's
        per-row cost — the knowledge DL2SQL has that DB-UDF lacks."""
        _, db, _ = setup
        strategy = TightStrategy()
        strategy.bind_task(db, detect_task)
        assert db.udfs.get("nUDF_detect").cost_per_row > 0

    def test_op_config_installed(self, setup, detect_task):
        _, db, _ = setup
        strategy = TightStrategy(optimized=True)
        strategy.bind_task(db, detect_task)
        assert db.optimizer_config.use_hints
        assert isinstance(db.optimizer_config.cost_model, HintAwareCostModel)
        assert (
            db.optimizer_config.cost_model.selectivity_for("nUDF_detect")
            is not None
        )

    def test_plain_config_has_no_hints(self, setup, detect_task):
        _, db, _ = setup
        strategy = TightStrategy(optimized=False)
        strategy.bind_task(db, detect_task)
        assert not db.optimizer_config.use_hints

    def test_unbind_drops_model_tables(self, setup, detect_task):
        _, db, _ = setup
        strategy = TightStrategy()
        strategy.bind_task(db, detect_task)
        strategy.unbind_task(db, detect_task)
        assert "nUDF_detect" not in db.udfs
        leftovers = [
            n
            for n in db.catalog.table_names()
            if n.startswith(detect_task.compiled.table_prefix)
        ]
        assert leftovers == []

    def test_names(self):
        assert TightStrategy().name == "DL2SQL"
        assert TightStrategy(optimized=True).name == "DL2SQL-OP"


class TestHintEffect:
    def test_op_infers_fewer_rows(self, setup, detect_task, tiny_dataset):
        bench, _, generator = setup
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.4)

        def inferred(strategy):
            db = bench.fresh_database()
            strategy.bind_task(db, detect_task)
            result = strategy.run(db, query, {"detect": detect_task})
            return result.details["inferred_rows"], result.rows

        plain_rows, plain_result = inferred(TightStrategy())
        op_rows, op_result = inferred(TightStrategy(optimized=True))
        assert op_rows < plain_rows
        assert sorted(op_result) == sorted(plain_result)

    def test_no_cross_system_io(self, setup, detect_task):
        """Tight integration's defining property: everything runs in one
        database — the result's details carry no transfer bytes."""
        _, db, generator = setup
        strategy = TightStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.5)
        result = strategy.run(db, query, {"detect": detect_task})
        assert "transfer_bytes" not in result.details

    def test_inference_counts_in_breakdown(self, setup, detect_task):
        _, db, generator = setup
        strategy = TightStrategy()
        strategy.bind_task(db, detect_task)
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.8)
        result = strategy.run(db, query, {"detect": detect_task})
        if result.details["inferred_rows"] > 0:
            assert result.breakdown.inference > 0


class TestGpuMode:
    def test_gpu_offload_cuts_inference_adds_transfer(
        self, setup, detect_task
    ):
        from repro.hardware import SERVER_GPU
        from repro.workload.benchmark import QueryBenchmark

        bench, _, generator = setup
        query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, 0.8)

        def run(use_gpu):
            db = bench.fresh_database()
            strategy = TightStrategy(profile=SERVER_GPU, use_gpu=use_gpu)
            strategy.bind_task(db, detect_task)
            return strategy.run(db, query, {"detect": detect_task})

        cpu = run(False)
        gpu = run(True)
        if gpu.details["inferred_rows"] > 0:
            assert gpu.breakdown.inference < cpu.breakdown.inference
        assert gpu.breakdown.loading >= cpu.breakdown.loading
