"""Strategy-phase span trees: decompose/transfer/inference across strategies."""

import pytest

from repro.strategies import (
    IndependentStrategy,
    LooseStrategy,
    QueryType,
    TightStrategy,
)
from repro.workload.benchmark import QueryBenchmark
from repro.workload.queries import QueryGenerator


@pytest.fixture()
def setup(tiny_dataset, tiny_repository):
    bench = QueryBenchmark(tiny_dataset, tiny_repository)
    db = bench.fresh_database()
    generator = QueryGenerator(tiny_dataset)
    return db, generator


def _run(db, generator, strategy, detect_task, selectivity=0.5):
    strategy.bind_task(db, detect_task)
    query = generator.make_query(QueryType.LEARNING_DEPENDS_ON_DB, selectivity)
    db.tracer.enable()
    db.tracer.reset()  # drop bind-time traces; keep only the run
    strategy.run(db, query, {"detect": detect_task})
    return db.tracer.last_trace()


class TestIndependentSpans:
    def test_phase_spans_in_order(self, setup, detect_task):
        db, generator = setup
        root = _run(db, generator, IndependentStrategy(), detect_task)
        assert root.name == "strategy:DB-PyTorch"
        names = [c.name for c in root.children]
        assert names[0] == "decompose"
        assert "db_subquery" in names
        assert "inference" in names
        assert names[-1] == "assemble"
        # DB->DL export precedes inference; DL->DB import follows it.
        transfers = root.find_all("transfer")
        directions = [s.attributes["direction"] for s in transfers]
        assert directions == ["db_to_dl", "dl_to_db"]

    def test_transfer_bytes_attributes(self, setup, detect_task):
        db, generator = setup
        root = _run(db, generator, IndependentStrategy(), detect_task)
        for span in root.find_all("transfer"):
            assert span.attributes["transfer_bytes"] > 0
            assert span.attributes["rows"] > 0
        total = sum(
            s.attributes["transfer_bytes"] for s in root.find_all("transfer")
        )
        assert root.attributes["transfer_bytes"] == total

    def test_inference_span_has_rows(self, setup, detect_task):
        db, generator = setup
        root = _run(db, generator, IndependentStrategy(), detect_task)
        inference = root.find("inference")
        assert inference.attributes["rows"] > 0
        assert inference.attributes["role"] == "detect"


class TestInDatabaseSpans:
    def test_loose_runs_entirely_in_database(self, setup, detect_task):
        db, generator = setup
        root = _run(db, generator, LooseStrategy(), detect_task)
        assert root.name == "strategy:DB-UDF"
        assert root.attributes["transfer_bytes"] == 0
        subquery = root.find("db_subquery")
        # The in-database query nests the full engine lifecycle.
        assert subquery.find("query") is not None
        assert subquery.find("query").find("execute") is not None

    def test_tight_nests_inference_inside_operators(self, setup, detect_task):
        db, generator = setup
        root = _run(db, generator, TightStrategy(), detect_task)
        assert root.name == "strategy:DL2SQL"
        assert root.attributes["transfer_bytes"] == 0
        assert root.attributes["inferred_rows"] > 0
        # DL2SQL inference happens inside the query's UDF evaluation.
        assert root.find("inference") is not None
