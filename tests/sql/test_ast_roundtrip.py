"""AST -> SQL -> AST stability, including a hypothesis generator.

``to_sql()`` output must re-parse to the same rendered text (the DL2SQL
compiler and the independent-strategy rewriter both rely on this).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    combine_conjuncts,
    referenced_columns,
    split_conjuncts,
    walk_expression,
)
from repro.sql.parser import parse_statement

ROUNDTRIP_CASES = [
    "SELECT a FROM t",
    "SELECT a AS x, b + 1 AS y FROM t WHERE a > 2 AND b < 3",
    "SELECT count(*) FROM t GROUP BY g HAVING count(*) > 1",
    "SELECT a FROM t ORDER BY a DESC LIMIT 3",
    "SELECT sum(a * b) FROM t INNER JOIN s ON t.k = s.k",
    "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT a FROM (SELECT a FROM t) d WHERE a IN (1, 2)",
    "SELECT (SELECT max(v) FROM s) FROM t",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b IS NOT NULL",
    "INSERT INTO t VALUES (1, 'x')",
    "UPDATE t SET a = 0 WHERE a < 0",
    "CREATE TEMP TABLE x AS SELECT a FROM t",
    "CREATE VIEW v AS SELECT a FROM t",
    "DROP TABLE IF EXISTS t",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_CASES)
def test_to_sql_reparses_to_fixed_point(sql):
    once = parse_statement(sql).to_sql()
    twice = parse_statement(once).to_sql()
    assert once == twice


# ----------------------------------------------------------------------
# Hypothesis: random expression trees survive render -> parse -> render.
# ----------------------------------------------------------------------
_literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(Literal),
    st.booleans().map(Literal),
    st.text(
        alphabet="abc XYZ019", min_size=0, max_size=6
    ).map(Literal),
)
_columns = st.sampled_from(
    [ColumnRef("a"), ColumnRef("b", table="T"), ColumnRef("Value")]
)


def _expressions(depth: int = 2) -> st.SearchStrategy[Expression]:
    base = st.one_of(_literals, _columns)
    if depth == 0:
        return base
    sub = _expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "="]), sub, sub).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["abs", "sqrt", "nUDF_detect"]), sub).map(
            lambda t: FunctionCall(t[0], (t[1],))
        ),
    )


@given(expression=_expressions())
@settings(max_examples=200, deadline=None)
def test_expression_roundtrip(expression):
    sql = f"SELECT {expression.to_sql()}"
    reparsed = parse_statement(sql)
    assert reparsed.items[0].expression.to_sql() == expression.to_sql()


# ----------------------------------------------------------------------
# AST utilities
# ----------------------------------------------------------------------
class TestAstUtilities:
    def test_split_and_combine_conjuncts(self):
        statement = parse_statement(
            "SELECT 1 FROM t WHERE a = 1 AND b = 2 AND c = 3"
        )
        conjuncts = split_conjuncts(statement.where)
        assert len(conjuncts) == 3
        recombined = combine_conjuncts(conjuncts)
        assert split_conjuncts(recombined) == conjuncts

    def test_split_none(self):
        assert split_conjuncts(None) == []
        assert combine_conjuncts([]) is None

    def test_or_not_split(self):
        statement = parse_statement("SELECT 1 FROM t WHERE a = 1 OR b = 2")
        assert len(split_conjuncts(statement.where)) == 1

    def test_referenced_columns(self):
        statement = parse_statement(
            "SELECT 1 FROM t WHERE f(a) + T.b = 2"
        )
        names = {c.to_sql() for c in referenced_columns(statement.where)}
        assert names == {"a", "T.b"}

    def test_walk_expression_counts(self):
        statement = parse_statement("SELECT a + b * c FROM t")
        nodes = list(walk_expression(statement.items[0].expression))
        assert len(nodes) == 5  # +, a, *, b, c
