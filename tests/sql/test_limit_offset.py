"""LIMIT ... OFFSET: parsing, execution, round-trip, and rejection."""

import pytest

from repro.engine import Database
from repro.errors import ParseError, SemanticError
from repro.sql.parser import parse_statement as parse


@pytest.fixture()
def db():
    database = Database()
    database.create_table_from_dict("t", {"a": list(range(10))})
    return database


class TestParsing:
    def test_offset_parsed(self):
        statement = parse("SELECT a FROM t LIMIT 3 OFFSET 4")
        assert statement.limit == 3
        assert statement.offset == 4

    def test_offset_absent_is_none(self):
        statement = parse("SELECT a FROM t LIMIT 3")
        assert statement.offset is None

    def test_to_sql_round_trip(self):
        sql = "SELECT a FROM t LIMIT 3 OFFSET 4"
        assert parse(parse(sql).to_sql()).to_sql() == parse(sql).to_sql()

    def test_offset_requires_limit(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t OFFSET 4")

    def test_offset_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 3 OFFSET 'x'")

    @pytest.mark.parametrize(
        "sql,clause",
        [
            ("SELECT a FROM t LIMIT -3", "LIMIT"),
            ("SELECT a FROM t LIMIT 3 OFFSET -1", "OFFSET"),
        ],
    )
    def test_negative_is_spanned_semantic_error(self, sql, clause):
        with pytest.raises(SemanticError) as info:
            parse(sql)
        assert info.value.code == "S013"
        assert clause in str(info.value)
        span = info.value.span
        assert sql[span.start:span.end].startswith("-")


class TestExecution:
    def test_offset_skips_rows(self, db):
        assert db.query("SELECT a FROM t ORDER BY a LIMIT 3 OFFSET 4") == [
            (4,), (5,), (6,),
        ]

    def test_offset_past_end_is_empty(self, db):
        assert db.query("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 20") == []

    def test_offset_truncates_tail(self, db):
        assert db.query("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 8") == [
            (8,), (9,),
        ]

    def test_offset_zero_equals_plain_limit(self, db):
        assert db.query("SELECT a FROM t ORDER BY a LIMIT 3 OFFSET 0") == (
            db.query("SELECT a FROM t ORDER BY a LIMIT 3")
        )

    def test_explain_shows_offset(self, db):
        rows = db.query("EXPLAIN SELECT a FROM t LIMIT 3 OFFSET 4")
        assert any("Limit 3 OFFSET 4" in r[0] for r in rows)
