"""Tokenizer behaviour."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_uppercased(self):
        tokens = tokenize("select from")
        assert tokens[0].value == "SELECT"
        assert tokens[1].value == "FROM"

    def test_identifiers_preserve_case(self):
        assert values("nUDF_detect MatrixID") == ["nUDF_detect", "MatrixID"]

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("a")[-1].type is TokenType.EOF

    def test_punctuation_and_operators(self):
        assert values("(a, b) + c.d") == ["(", "a", ",", "b", ")", "+", "c", ".", "d"]


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]

    def test_float(self):
        assert values("3.25") == [3.25]

    def test_leading_dot(self):
        assert values(".5") == [0.5]

    def test_scientific(self):
        assert values("1e3 2.5E-2") == [1000.0, 0.025]

    def test_epsilon_literal_from_q4(self):
        assert values("0.00005") == [5e-05]


class TestStrings:
    def test_simple(self):
        assert values("'Floral Pattern'") == ["Floral Pattern"]

    def test_escaped_quote(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated(self):
        with pytest.raises(LexerError):
            tokenize("'oops")


class TestOperators:
    def test_two_char(self):
        assert values("a <= b >= c != d <> e") == [
            "a", "<=", "b", ">=", "c", "!=", "d", "<>", "e",
        ]


class TestComments:
    def test_line_comment(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(LexerError):
            tokenize("a /* oops")


class TestQuotedIdentifiers:
    def test_backtick(self):
        tokens = tokenize("`weird name`")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "weird name"


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("a # b")
        assert excinfo.value.position == 2
