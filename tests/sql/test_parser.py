"""Parser coverage, including every query shape the paper prints."""

import pytest

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    CreateIndex,
    CreateTable,
    CreateView,
    DerivedTable,
    DropStatement,
    FunctionCall,
    InList,
    InsertStatement,
    Join,
    Literal,
    NamedTable,
    ScalarSubquery,
    SelectStatement,
    Star,
    UnaryOp,
    UpdateStatement,
)
from repro.sql.parser import parse_statement, parse_statements


def select(sql) -> SelectStatement:
    statement = parse_statement(sql)
    assert isinstance(statement, SelectStatement)
    return statement


class TestSelectBasics:
    def test_simple(self):
        statement = select("SELECT a, b FROM t")
        assert len(statement.items) == 2
        assert isinstance(statement.from_clause, NamedTable)

    def test_star(self):
        statement = select("SELECT * FROM t")
        assert isinstance(statement.items[0].expression, Star)

    def test_qualified_star(self):
        statement = select("SELECT T.* FROM t")
        assert statement.items[0].expression == Star(table="T")

    def test_alias_with_and_without_as(self):
        statement = select("SELECT a AS x, b y FROM t")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"

    def test_distinct(self):
        assert select("SELECT DISTINCT a FROM t").distinct

    def test_limit(self):
        assert select("SELECT a FROM t LIMIT 5").limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            select("SELECT a FROM t LIMIT 1.5")

    def test_order_by(self):
        statement = select("SELECT a FROM t ORDER BY a DESC, b")
        assert not statement.order_by[0].ascending
        assert statement.order_by[1].ascending

    def test_group_by_having(self):
        statement = select(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_no_from(self):
        statement = select("SELECT 1 + 2")
        assert statement.from_clause is None


class TestFromClause:
    def test_comma_join(self):
        statement = select("SELECT 1 FROM a, b, c")
        assert len(statement.cross_tables) == 2

    def test_inner_join_on(self):
        statement = select("SELECT 1 FROM a INNER JOIN b ON a.x = b.x")
        assert isinstance(statement.from_clause, Join)
        assert statement.from_clause.join_type == "INNER"

    def test_bare_join(self):
        statement = select("SELECT 1 FROM a JOIN b ON a.x = b.x")
        assert isinstance(statement.from_clause, Join)

    def test_derived_table(self):
        statement = select("SELECT 1 FROM (SELECT x FROM t) AS d")
        assert isinstance(statement.from_clause, DerivedTable)
        assert statement.from_clause.alias == "d"

    def test_derived_table_alias_without_as(self):
        statement = select("SELECT 1 FROM (SELECT x FROM t) d")
        assert statement.from_clause.alias == "d"


class TestExpressions:
    def test_precedence_and_or(self):
        statement = select("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        where = statement.where
        assert isinstance(where, BinaryOp) and where.op == "OR"

    def test_precedence_arithmetic(self):
        statement = select("SELECT 1 + 2 * 3")
        expression = statement.items[0].expression
        assert isinstance(expression, BinaryOp) and expression.op == "+"

    def test_comparison_normalizes_ne(self):
        statement = select("SELECT 1 FROM t WHERE a <> b")
        assert statement.where.op == "!="

    def test_not(self):
        statement = select("SELECT 1 FROM t WHERE NOT a = 1")
        assert isinstance(statement.where, UnaryOp)

    def test_in_list(self):
        statement = select("SELECT 1 FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(statement.where, InList)
        assert len(statement.where.items) == 3

    def test_not_in(self):
        statement = select("SELECT 1 FROM t WHERE a NOT IN (1)")
        assert statement.where.negated

    def test_between(self):
        statement = select("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(statement.where, Between)

    def test_is_null(self):
        statement = select("SELECT 1 FROM t WHERE a IS NOT NULL")
        assert statement.where.negated

    def test_case(self):
        statement = select(
            "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t"
        )
        assert isinstance(statement.items[0].expression, CaseExpression)

    def test_scalar_subquery(self):
        statement = select("SELECT (SELECT max(v) FROM s) FROM t")
        assert isinstance(statement.items[0].expression, ScalarSubquery)

    def test_unary_minus(self):
        statement = select("SELECT -a FROM t")
        assert isinstance(statement.items[0].expression, UnaryOp)

    def test_booleans_and_null(self):
        statement = select("SELECT TRUE, FALSE, NULL")
        assert statement.items[0].expression == Literal(True)
        assert statement.items[1].expression == Literal(False)
        assert statement.items[2].expression == Literal(None)

    def test_function_distinct(self):
        statement = select("SELECT count(DISTINCT a) FROM t")
        call = statement.items[0].expression
        assert isinstance(call, FunctionCall) and call.distinct

    def test_count_star(self):
        call = select("SELECT count(*) FROM t").items[0].expression
        assert isinstance(call.args[0], Star)


class TestDdlDml:
    def test_create_table_columns(self):
        statement = parse_statement("CREATE TABLE t (a Int64, b String)")
        assert isinstance(statement, CreateTable)
        assert len(statement.columns) == 2

    def test_create_temp_table_as_select(self):
        statement = parse_statement("CREATE TEMP TABLE t AS SELECT 1")
        assert statement.temp and statement.as_select is not None

    def test_create_table_clickhouse_paren_form(self):
        # The paper writes CREATE TEMP TABLE t (SELECT ...).
        statement = parse_statement(
            "CREATE TEMP TABLE t (SELECT a FROM s)"
        )
        assert isinstance(statement, CreateTable)
        assert statement.as_select is not None

    def test_create_or_replace(self):
        statement = parse_statement("CREATE OR REPLACE TABLE t AS SELECT 1")
        assert statement.replace

    def test_create_view(self):
        statement = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(statement, CreateView)

    def test_create_view_paren_form(self):
        statement = parse_statement("CREATE VIEW v (SELECT a FROM t)")
        assert isinstance(statement, CreateView)

    def test_create_index(self):
        statement = parse_statement("CREATE INDEX i ON t(a)")
        assert isinstance(statement, CreateIndex)
        assert (statement.table_name, statement.column_name) == ("t", "a")

    def test_insert_values(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, InsertStatement)
        assert len(statement.rows) == 2

    def test_insert_with_columns(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert statement.columns == ("a", "b")

    def test_insert_select(self):
        statement = parse_statement("INSERT INTO t SELECT a FROM s")
        assert statement.from_select is not None

    def test_update(self):
        statement = parse_statement("UPDATE t SET a = 0 WHERE a < 0")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments[0][0] == "a"

    def test_drop(self):
        statement = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropStatement)
        assert statement.if_exists

    def test_drop_view(self):
        assert parse_statement("DROP VIEW v").object_type == "VIEW"


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_statements("SELECT 1; SELECT 2; ;")
        assert len(statements) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 garbage extra ,")


class TestPaperQueries:
    """Every SQL snippet printed in the paper must parse."""

    def test_intro_query(self):
        select(
            "SELECT patternID, transID FROM FABRIC F, Video V "
            "WHERE F.humidity > 80 and F.temperature > 30 "
            "and F.printdate > '2021-01-01' and F.printdate < '2021-1-31' "
            "and F.transID = V.transID "
            "and V.date > '2021-01-01' and V.date < '2021-1-31' "
            "and nUDF_detect(V.keyframe) = FALSE"
        )

    def test_type4_double_model_query(self):
        select(
            "SELECT patternID, transID FROM FABRIC F, Video V "
            "WHERE F.transID = V.transID and nUDF_detect(V.keyframe) = TRUE "
            "and nUDF_classify(V.keyframe) = 'Floral Pattern'"
        )

    def test_q1_convolution(self):
        parse_statement(
            "CREATE TEMP TABLE Layer_Output("
            "SELECT MatrixID as TupleID, SUM(A.Value * B.Value) as Value "
            "FROM FeatureMap A INNER JOIN Kernel B "
            "ON A.OrderID = B.OrderID GROUP BY KernelID, MatrixID)"
        )

    def test_q2_view(self):
        parse_statement(
            "CREATE View FeatureMap("
            "SELECT MatrixID, OrderID, Value "
            "FROM Layer_Output A, Kernel_Mapping B "
            "WHERE A.TupleID = B.TupleID)"
        )

    def test_q3_pooling(self):
        parse_statement(
            "CREATE TEMP TABLE Pooling_Output("
            "SELECT MatrixID as TupleID, MAX(A.Value) as Value "
            "FROM FeatureMap A GROUP BY MatrixID)"
        )

    def test_q4_batch_norm(self):
        parse_statement(
            "CREATE TEMP TABLE feature_cbshortcut_conv_bn AS "
            "SELECT MatrixID, OrderID, ((Value - "
            "(SELECT AVG(Value) FROM feature_cbshortcut_conv)) / "
            "((SELECT stddevSamp(Value) FROM feature_cbshortcut_conv) "
            "+ 0.00005)) as Value FROM feature_cbshortcut_conv"
        )

    def test_q5_residual(self):
        statements = parse_statements(
            "CREATE TEMP TABLE cb_output("
            "SELECT A.MatrixID, A.OrderID, A.Value + B.Value as Value "
            "FROM feature_cbshortcut_conv_bn A, feature_cb3_conv_bn B "
            "WHERE A.MatrixID = B.MatrixID);"
            "UPDATE cb_output SET Value = 0 where Value < 0;"
        )
        assert len(statements) == 2

    def test_table1_type2(self):
        select(
            "SELECT patternID, count(nUDF_detect(V.keyframe)=TRUE)/sum(meter) "
            "FROM FABRIC F, Video V "
            "WHERE F.printdate>'2021-01-01' and F.printdate<'2021-1-31' "
            "and F.transID=V.transID "
            "and V.date>'2021-01-01' and V.date<'2021-1-31' "
            "GROUP BY patternID"
        )
