"""Span nesting, timing, rendering, and the zero-overhead guarantee."""

import repro.obs.trace as trace_module
from repro.engine import Database
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    format_span_tree,
    trace_to_json,
)


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpanNesting:
    def test_children_follow_the_stack(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query") as query:
            with tracer.span("parse"):
                pass
            with tracer.span("execute") as execute:
                with tracer.span("operator:scan"):
                    pass
        assert [c.name for c in query.children] == ["parse", "execute"]
        assert [c.name for c in execute.children] == ["operator:scan"]
        assert tracer.traces == [query]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer(enabled=True)
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_find_and_walk(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query") as query:
            with tracer.span("execute"):
                with tracer.span("operator:scan"):
                    pass
                with tracer.span("operator:scan"):
                    pass
        assert query.find("execute").name == "execute"
        assert query.find("missing") is None
        assert len(query.find_all("operator:scan")) == 2
        assert [s.name for s in query.walk()] == [
            "query", "execute", "operator:scan", "operator:scan",
        ]

    def test_exception_is_recorded_and_stack_unwinds(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("query") as query:
                raise ValueError("boom")
        except ValueError:
            pass
        assert query.attributes["error"] == "ValueError"
        assert tracer.current is None
        assert tracer.last_trace() is query

    def test_max_traces_keeps_newest(self):
        tracer = Tracer(enabled=True, max_traces=3)
        for i in range(5):
            with tracer.span(f"q{i}"):
                pass
        assert [s.name for s in tracer.traces] == ["q2", "q3", "q4"]


class TestSpanTiming:
    def test_duration_from_clock(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=1.0))
        with tracer.span("query") as query:
            pass
        # Enter reads t=0, exit reads t=1.
        assert query.duration == 1.0

    def test_self_duration_subtracts_children(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(enabled=True, clock=clock)
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        # Reads: parent enter(0), child enter(1), child exit(2),
        # parent exit(3): parent=3s, child=1s, self=2s.
        assert parent.duration == 3.0
        assert child.duration == 1.0
        assert parent.self_duration == 2.0

    def test_open_span_reports_zero(self):
        tracer = Tracer(enabled=True)
        span = tracer.span("open")
        span.__enter__()
        assert span.duration == 0.0
        span.__exit__(None, None, None)
        assert span.duration > 0.0


class TestAttributes:
    def test_set_and_add(self):
        tracer = Tracer(enabled=True)
        with tracer.span("transfer", direction="db_to_dl") as span:
            span.set("rows", 10)
            span.add("transfer_bytes", 100)
            span.add("transfer_bytes", 50)
        assert span.attributes == {
            "direction": "db_to_dl", "rows": 10, "transfer_bytes": 150,
        }


class TestDisabledTracer:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.span("other", rows=1) is NULL_SPAN
        with tracer.span("x") as span:
            span.set("ignored", 1)
            span.add("ignored", 2)
        assert tracer.traces == []

    def test_disabled_tracing_allocates_no_spans(self, monkeypatch):
        """Regression: a default Database must never instantiate a Span."""
        instantiated = []
        original_init = Span.__init__

        def spy_init(self, *args, **kwargs):
            instantiated.append(self)
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(trace_module.Span, "__init__", spy_init)
        db = Database()
        db.create_table_from_dict("t", {"a": [1, 2, 3], "b": [4, 5, 6]})
        db.execute("SELECT a, sum(b) FROM t WHERE a > 1 GROUP BY a")
        db.execute("EXPLAIN ANALYZE SELECT count(*) FROM t")
        assert instantiated == []

    def test_enable_disable_toggle(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.enable()
        with tracer.span("q"):
            pass
        tracer.disable()
        assert tracer.span("r") is NULL_SPAN
        assert len(tracer.traces) == 1


class TestRendering:
    def test_format_span_tree(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=0.001))
        with tracer.span("query", sql="SELECT 1") as query:
            with tracer.span("execute") as execute:
                execute.set("rows", 7)
        text = format_span_tree(query)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "sql=SELECT 1" in lines[0]
        assert lines[1].startswith("  execute")
        assert "rows=7" in lines[1]
        assert "ms" in lines[0]

    def test_long_attribute_is_truncated(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query", sql="x" * 100) as span:
            pass
        assert "..." in format_span_tree(span)

    def test_to_dict_and_json(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query") as query:
            with tracer.span("parse") as parse:
                parse.set("cached", False)
        data = query.to_dict()
        assert data["name"] == "query"
        assert data["children"][0]["name"] == "parse"
        assert data["children"][0]["attributes"] == {"cached": False}
        assert "duration_ms" in data
        assert '"name": "query"' in trace_to_json(query)


class TestDatabaseIntegration:
    def test_query_lifecycle_spans(self):
        tracer = Tracer(enabled=True)
        db = Database(tracer=tracer)
        db.create_table_from_dict("t", {"a": [1, 2, 3]})
        db.execute("SELECT sum(a) FROM t WHERE a > 1")
        root = tracer.last_trace()
        assert root.name == "query"
        stages = [c.name for c in root.children]
        assert stages == [
            "parse", "analyze", "plan", "fold", "optimize", "prune", "execute",
        ]
        execute = root.find("execute")
        assert execute.attributes["rows"] == 1
        assert root.find("operator:scan") is not None

    def test_parse_cache_attribute(self):
        tracer = Tracer(enabled=True)
        db = Database(tracer=tracer)
        db.create_table_from_dict("t", {"a": [1]})
        db.execute("SELECT a FROM t")
        db.execute("SELECT a FROM t")
        first, second = tracer.traces[-2:]
        assert first.find("parse").attributes["cached"] is False
        assert second.find("parse").attributes["cached"] is True

    def test_operator_spans_carry_rows(self):
        tracer = Tracer(enabled=True)
        db = Database(tracer=tracer)
        db.create_table_from_dict("t", {"a": list(range(10))})
        db.execute("SELECT a FROM t WHERE a >= 5")
        root = tracer.last_trace()
        scan = root.find("operator:scan")
        filter_span = root.find("operator:filter")
        assert scan.attributes["rows"] == 10
        assert filter_span.attributes["rows"] == 5
