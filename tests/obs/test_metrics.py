"""Counters, gauges, histogram bucketing, and exporter formats."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_inc(self):
        counter = Counter("queries")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        counter = Counter("queries")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0


class TestHistogramBucketing:
    def test_upper_bounds_are_inclusive(self):
        histogram = Histogram("h", buckets=(1, 10, 100))
        histogram.observe(1)      # le=1
        histogram.observe(5)      # le=10
        histogram.observe(10)     # le=10
        histogram.observe(99)     # le=100
        histogram.observe(1000)   # +Inf
        assert histogram.counts == [1, 2, 1, 1]
        assert histogram.cumulative_counts() == [1, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == 1115

    def test_buckets_sorted_on_construction(self):
        histogram = Histogram("h", buckets=(100, 1, 10))
        assert histogram.buckets == (1.0, 10.0, 100.0)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_size_buckets_cover_batches(self):
        histogram = Histogram("batch", buckets=DEFAULT_SIZE_BUCKETS)
        histogram.observe(64)
        histogram.observe(65)
        # 64 is an exact bound; 65 falls in the next (le=128) bucket.
        index_64 = histogram.buckets.index(64)
        assert histogram.counts[index_64] == 1
        assert histogram.counts[index_64 + 1] == 1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("queries", "help text")
        b = registry.counter("queries")
        assert a is b
        assert a.help == "help text"

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")
        with pytest.raises(TypeError):
            registry.histogram("m")

    def test_reset_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        registry.reset()
        assert registry.names() == []
        assert registry.get("a") is None

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter("queries_total", "Queries executed").inc(3)
        registry.gauge("cache_entries").set(7)
        histogram = registry.histogram("latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_json_shape(self):
        registry = self._populated()
        data = json.loads(registry.to_json())
        assert data["queries_total"] == {"type": "counter", "value": 3}
        assert data["cache_entries"] == {"type": "gauge", "value": 7.0}
        latency = data["latency"]
        assert latency["type"] == "histogram"
        assert latency["count"] == 3
        assert latency["buckets"]["0.1"] == 1
        assert latency["buckets"]["1.0"] == 2
        assert latency["buckets"]["+Inf"] == 3

    def test_prometheus_format(self):
        text = self._populated().to_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_queries_total Queries executed" in lines
        assert "# TYPE repro_queries_total counter" in lines
        assert "repro_queries_total 3" in lines
        assert "# TYPE repro_cache_entries gauge" in lines
        assert "repro_cache_entries 7" in lines
        assert "# TYPE repro_latency histogram" in lines
        assert 'repro_latency_bucket{le="0.1"} 1' in lines
        assert 'repro_latency_bucket{le="1"} 2' in lines
        assert 'repro_latency_bucket{le="+Inf"} 3' in lines
        assert "repro_latency_sum 5.55" in lines
        assert "repro_latency_count 3" in lines
        assert text.endswith("\n")

    def test_empty_registry_exports_empty(self):
        registry = MetricsRegistry()
        assert registry.to_dict() == {}
        assert registry.to_prometheus() == ""


class TestDatabaseMetrics:
    def test_query_counters_and_plan_cache(self):
        from repro.engine import Database

        registry = MetricsRegistry()
        db = Database(metrics=registry)
        db.create_table_from_dict("t", {"a": [1, 2, 3]})
        sql = "SELECT sum(a) FROM t"
        db.execute(sql)
        db.execute(sql)
        assert registry.get("queries_executed_total").value == 2
        assert registry.get("plan_cache_misses_total").value == 1
        assert registry.get("plan_cache_hits_total").value == 1
        assert registry.get("rows_scanned_total").value == 6

    def test_subquery_scans_attributed(self):
        from repro.engine import Database

        registry = MetricsRegistry()
        db = Database(metrics=registry)
        db.create_table_from_dict("t", {"a": [1, 2, 3, 4]})
        db.execute("SELECT count(*) FROM t WHERE a > (SELECT min(a) FROM t)")
        # Outer scan (4 rows) and subquery scan (4 rows) both count.
        assert registry.get("rows_scanned_total").value == 8

    def test_udf_batch_histogram(self):
        import numpy as np

        from repro.engine import Database
        from repro.engine.udf import BatchUdf
        from repro.storage.schema import DataType

        registry = MetricsRegistry()
        db = Database(metrics=registry)
        db.create_table_from_dict("t", {"a": [1.0, 2.0, 3.0]})
        db.register_udf(
            BatchUdf("double_it", lambda a: a * 2, DataType.FLOAT64)
        )
        db.execute("SELECT double_it(a) FROM t")
        histogram = registry.get("udf_batch_rows")
        assert histogram.count == 1
        assert histogram.sum == 3

    def test_no_metrics_by_default(self):
        from repro.engine import Database

        db = Database()
        assert db.metrics is None
