"""Logger naming, setup idempotence, and the optimizer's DEBUG output."""

import io
import logging

from repro.obs.log import ROOT_NAME, get_logger, level_for, setup_logging


class TestGetLogger:
    def test_prefixes_under_root(self):
        assert get_logger("engine.optimizer").name == "repro.engine.optimizer"

    def test_already_prefixed_name_unchanged(self):
        assert get_logger("repro.core.hints").name == "repro.core.hints"

    def test_empty_name_is_root(self):
        assert get_logger().name == ROOT_NAME

    def test_silent_by_default(self):
        root = logging.getLogger(ROOT_NAME)
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )


class TestLevelFor:
    def test_mapping(self):
        assert level_for(0) == logging.WARNING
        assert level_for(1) == logging.INFO
        assert level_for(2) == logging.DEBUG
        assert level_for(5) == logging.DEBUG


class TestSetupLogging:
    def test_idempotent(self):
        root = setup_logging(0)
        before = len(root.handlers)
        setup_logging(1)
        setup_logging(2)
        assert len(root.handlers) == before

    def test_writes_to_stream(self):
        stream = io.StringIO()
        setup_logging(2, stream=stream)
        try:
            get_logger("test.module").debug("hello %s", "world")
            output = stream.getvalue()
            assert "repro.test.module" in output
            assert "hello world" in output
            assert output.startswith("DEBUG")
        finally:
            setup_logging(0)  # restore quiet default


class TestDecisionLogs:
    def test_hint_placement_logged_at_debug(self, tiny_dataset, detect_task):
        """Hint rule 1's eager/lazy decision surfaces at -vv."""
        from repro.core.hints import make_op_config
        from repro.engine import Database
        from repro.strategies.loose import LooseStrategy
        from repro.strategies.base import QueryType
        from repro.workload.queries import QueryGenerator

        stream = io.StringIO()
        setup_logging(2, stream=stream)
        try:
            db = Database()
            tiny_dataset.install(db)
            strategy = LooseStrategy()
            strategy.bind_task(db, detect_task)
            db.optimizer_config = make_op_config(
                db.udfs, {detect_task.udf_name(): detect_task.selectivity()}
            )
            query = QueryGenerator(tiny_dataset).make_query(
                QueryType.LEARNING_DEPENDS_ON_DB, 0.3
            )
            db.execute(query.sql)
        finally:
            setup_logging(0)
        output = stream.getvalue()
        assert "hint rule 1" in output
        assert "placement" in output
        assert "eager_cost=" in output

    def test_selectivity_fallback_logged(self):
        from repro.core.hints import HintAwareCostModel
        from repro.engine.udf import UdfRegistry
        from repro.sql.parser import parse_statement

        stream = io.StringIO()
        setup_logging(2, stream=stream)
        try:
            model = HintAwareCostModel(UdfRegistry())
            statement = parse_statement(
                "SELECT 1 FROM t WHERE nUDF_detect(x) = true"
            )
            model.udf_predicate_selectivity(statement.where)
        finally:
            setup_logging(0)
        output = stream.getvalue()
        assert "falling back to default" in output
