"""Shared fixtures: a tiny dataset, tasks, and databases.

Session-scoped where construction is expensive (dataset generation,
model distillation, DL2SQL compilation) — tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database
from repro.workload.dataset import DatasetConfig, generate_dataset
from repro.workload.models_repo import ModelRepository, build_task


TINY_CONFIG = DatasetConfig(scale=1, keyframe_shape=(1, 8, 8), seed=7)


@pytest.fixture(scope="session")
def tiny_dataset():
    return generate_dataset(TINY_CONFIG)


@pytest.fixture(scope="session")
def detect_task(tiny_dataset):
    return build_task(tiny_dataset, "detect", task_index=0,
                      calibration_samples=24)


@pytest.fixture(scope="session")
def classify_task(tiny_dataset):
    return build_task(tiny_dataset, "classify", task_index=1,
                      calibration_samples=24)


@pytest.fixture(scope="session")
def recog_task(tiny_dataset):
    return build_task(tiny_dataset, "recog", task_index=2,
                      calibration_samples=24)


@pytest.fixture(scope="session")
def tiny_repository(detect_task, classify_task, recog_task):
    return ModelRepository(tasks=[detect_task, classify_task, recog_task])


@pytest.fixture()
def db():
    """A fresh, empty database per test."""
    return Database()


@pytest.fixture()
def workload_db(tiny_dataset):
    """A fresh database with the tiny IoT dataset installed."""
    database = Database()
    tiny_dataset.install(database)
    return database


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
