"""Table VI driver at tiny scale (the full sweep runs in benchmarks)."""

import pytest

from repro.experiments import exp_depth
from repro.hardware import SERVER_CPU
from repro.workload.dataset import DatasetConfig, generate_dataset


@pytest.fixture(scope="module")
def depth_rows():
    dataset = generate_dataset(
        DatasetConfig(scale=1, keyframe_shape=(1, 8, 8), seed=3)
    )
    return exp_depth.run(
        dataset, depths=(5, 8), selectivity=0.3, profile=SERVER_CPU
    )


def test_all_strategies_reported(depth_rows):
    strategies = {r.strategy for r in depth_rows}
    assert strategies == {"DL2SQL", "DL2SQL-OP", "DB-UDF", "DB-PyTorch"}


def test_parameters_grow_with_depth(depth_rows):
    params = {r.depth: r.parameters for r in depth_rows}
    assert params[8] > params[5]


def test_dl2sql_loading_dominates_and_grows(depth_rows):
    by = {(r.depth, r.strategy): r for r in depth_rows}
    # Relational model loading costs orders of magnitude more than the
    # file-based loading of DB-PyTorch at every depth...
    for depth in (5, 8):
        assert by[(depth, "DL2SQL-OP")].loading > (
            5 * by[(depth, "DB-PyTorch")].loading
        )
    # ...and grows with depth.
    assert by[(8, "DL2SQL-OP")].loading > by[(5, "DL2SQL-OP")].loading


def test_build_depth_task_uses_raw_resnet():
    dataset = generate_dataset(
        DatasetConfig(scale=1, keyframe_shape=(1, 8, 8), seed=3)
    )
    task = exp_depth.build_depth_task(dataset, depth=5)
    assert task.teacher is None
    assert task.student.name.endswith("resnet5")
    assert sum(task.histogram.values()) == 16
