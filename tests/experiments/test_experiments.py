"""Smoke + shape tests for every table/figure driver.

Each experiment runs at reduced scale and the *qualitative* reproduction
claims of DESIGN.md are asserted (orderings, monotonicity, dominance) —
not absolute numbers.
"""

import pytest

from repro.core.compiler import PreJoin
from repro.hardware import SERVER_CPU
from repro.experiments import (
    exp_blocks,
    exp_cost_model,
    exp_hints,
    exp_overall,
    exp_prejoin,
    exp_selectivity,
    exp_sql_profile,
    exp_storage,
)
from repro.experiments.reporting import format_series, format_table


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(
            ["a", "bb"], [[1, 2.5], [10, 0.00001]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("x", [1, 2], {"y": [0.1, 0.2]})
        assert "0.1" in text and "0.2" in text


class TestStorage:
    def test_table4_shape(self):
        rows = exp_storage.run(depths=(5, 8, 11), input_shape=(1, 8, 8))
        for row in rows:
            # DL2SQL's relational storage exceeds both file formats; the
            # heavier-compressed UDF binary is the smallest.
            assert row.dl2sql_kb > row.db_pytorch_kb >= row.db_udf_kb
        sizes = [r.dl2sql_kb for r in rows]
        assert sizes == sorted(sizes)  # grows with depth


class TestBlocks:
    def test_fig9_convs_dominate(self, tiny_dataset):
        rows = exp_blocks.run(tiny_dataset, num_keyframes=2)
        shares = {r.block: r.share for r in rows}
        conv_share = sum(v for k, v in shares.items() if k.startswith("Conv"))
        assert conv_share > 0.4
        assert abs(sum(shares.values()) - 1.0) < 1e-6


class TestSqlProfile:
    def test_fig10_join_groupby_dominate(self, tiny_dataset):
        rows = exp_sql_profile.run(tiny_dataset, num_keyframes=2)
        shares = {r.clause: r.share for r in rows}
        assert shares.get("groupby", 0) + shares.get("join", 0) > 0.5


class TestPrejoin:
    def test_fig11_prejoins_not_slower(self, tiny_dataset):
        rows = exp_prejoin.run(tiny_dataset, num_keyframes=6)
        totals = exp_prejoin.totals_by_strategy(rows)
        # At test scale the strategies differ by single milliseconds of
        # wall clock, so this test asserts the deterministic structure
        # (FOLD removes the mapping-join statements) plus a loose sanity
        # band; the strict runtime ordering is asserted at benchmark scale
        # in benchmarks/bench_prejoin.py.
        assert set(totals) == {p.value for p in PreJoin}
        assert totals[PreJoin.FOLD.value] < totals[PreJoin.NONE.value] * 1.5
        assert totals[PreJoin.KERNEL.value] < totals[PreJoin.NONE.value] * 1.5

        from repro.core.compiler import compile_model
        from repro.tensor.resnet import build_student_cnn

        model = build_student_cnn(
            input_shape=tiny_dataset.config.keyframe_shape, num_classes=4,
            seed=3,
        )
        none_steps = len(compile_model(model, prejoin=PreJoin.NONE).steps)
        fold_steps = len(compile_model(model, prejoin=PreJoin.FOLD).steps)
        assert fold_steps < none_steps


class TestCostModel:
    def test_fig12a_default_overestimates_growing_with_kernel(self):
        rows = exp_cost_model.run_kernel_sweep(kernels=(2, 4), feature_size=10)
        for row in rows:
            assert row.default_seconds > row.custom_seconds
        ratio_small = rows[0].default_seconds / max(rows[0].actual_seconds, 1e-9)
        ratio_big = rows[-1].default_seconds / max(rows[-1].actual_seconds, 1e-9)
        assert ratio_big > ratio_small

    def test_fig12b_custom_tracks_actual_better(self):
        # Sizes where real work dominates fixed per-statement overheads.
        # Estimates are deterministic; only `actual` is wall-clock, so the
        # robust claims are (a) default over-estimates custom and (b) the
        # customized estimate stays within an order of magnitude of actual
        # while the default drifts beyond it at the larger size.
        rows = exp_cost_model.run_feature_sweep(sizes=(12, 16), kernel=3)
        for row in rows:
            assert row.default_seconds > row.custom_seconds
            assert row.custom_seconds < 10 * row.actual_seconds
        assert rows[-1].default_seconds > 3 * rows[-1].actual_seconds

    def test_fig13_operator_estimates(self):
        rows = exp_cost_model.run_operator_sweep(size=8)
        by_name = {r.setting: r for r in rows}
        assert by_name["conv"].default_seconds > by_name["conv"].custom_seconds


class TestHints:
    def test_fig14_speedup_decreases_with_selectivity(self, tiny_dataset,
                                                      tiny_repository):
        from repro.workload.models_repo import ModelRepository

        repo = ModelRepository(tasks=tiny_repository.by_role("detect"))
        rows = exp_hints.run(
            tiny_dataset, repo,
            selectivities=(0.05, 0.9), profile=SERVER_CPU,
        )
        assert rows[0].with_hints <= rows[0].without_hints
        assert rows[0].inferred_with <= rows[0].inferred_without
        # The advantage at low selectivity exceeds the one at high.
        assert rows[0].speedup >= rows[1].speedup * 0.8


class TestOverall:
    def test_fig8_edge_ordering(self, tiny_dataset, tiny_repository):
        from repro.hardware import EDGE_ARM

        rows = exp_overall.run(
            tiny_dataset,
            tiny_repository,
            selectivity=0.2,
            hardware=((EDGE_ARM, False),),
        )
        totals = {r.strategy: r.total for r in rows}
        # The headline claim: DL2SQL-OP wins on the edge device.
        assert totals["DL2SQL-OP"] == min(totals.values())

    def test_fig8_gpu_cuts_inference_not_loading(self, tiny_dataset,
                                                 tiny_repository):
        from repro.hardware import SERVER_GPU

        rows = exp_overall.run(
            tiny_dataset,
            tiny_repository,
            selectivity=0.2,
            hardware=((SERVER_GPU, False), (SERVER_GPU, True)),
        )
        cpu = {r.strategy: r for r in rows if r.hardware.endswith("cpu")}
        gpu = {r.strategy: r for r in rows if r.hardware.endswith("gpu")}
        assert gpu["DB-PyTorch"].inference < cpu["DB-PyTorch"].inference
        # Loading comparisons are wall-clock (bind + pickle) and noisy at
        # test scale; allow slack, the bench asserts the strict version.
        assert gpu["DB-PyTorch"].loading >= cpu["DB-PyTorch"].loading * 0.5


class TestSelectivitySweep:
    def test_table5_op_always_wins(self, tiny_dataset, tiny_repository):
        from repro.hardware import EDGE_ARM

        # Table V is an edge-device experiment; on the server profile the
        # cheap DL runtime lets DB-UDF win at times (as in Fig. 8).
        rows = exp_selectivity.run(
            tiny_dataset,
            tiny_repository,
            selectivities=(0.1, 0.5),
            profile=EDGE_ARM,
        )
        for selectivity in (0.1, 0.5):
            subset = {
                r.strategy: r.total
                for r in rows
                if r.selectivity == selectivity
            }
            assert subset["DL2SQL-OP"] == min(subset.values())
