"""Fig. 10 — runtime distribution across SQL clauses."""

from repro.experiments import exp_sql_profile
from repro.experiments.reporting import print_table


def test_fig10_sql_profile(benchmark, bench_dataset):
    rows = benchmark.pedantic(
        lambda: exp_sql_profile.run(bench_dataset, num_keyframes=8),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["Clause", "Seconds/keyframe", "Share", "Rows"],
        [(r.clause, r.seconds, f"{r.share:.1%}", r.rows) for r in rows],
        title="Fig. 10: Costs of Different SQL Clauses",
    )
    shares = {r.clause: r.share for r in rows}
    # The paper: "the relatively expensive operations are Join and GroupBy".
    assert shares.get("groupby", 0) + shares.get("join", 0) > 0.5
    assert shares.get("groupby", 0) > shares.get("scan", 0)
