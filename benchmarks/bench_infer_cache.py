"""Inference-cache ablation: cold vs warm nUDF invocation cost.

The content-hashed cache (:mod:`repro.engine.infer_cache`) short-circuits
repeated model invocations on previously-seen rows.  This bench measures
the cold-run/warm-run asymmetry — the acceptance bar is a warm run doing
at least 5x fewer model invocations than the cold one with bit-identical
results — and the morsel-parallel dispatch knob
(``Database(udf_workers=...)``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchUdf, Database
from repro.storage.schema import DataType

#: The stand-in "model": a few vectorized passes so a batch costs more
#: than a hash lookup, deterministic so cached results can be compared
#: bit-for-bit.
_PASSES = 6


def _model(batch: np.ndarray) -> np.ndarray:
    out = np.asarray(batch, dtype=np.float64)
    for _ in range(_PASSES):
        out = np.tanh(out * 0.5 + 0.25)
    return out


def _make_db(
    counter: list,
    *,
    cache_bytes: int,
    workers: int = 1,
    num_rows: int,
    num_distinct: int,
) -> Database:
    db = Database(udf_cache_bytes=cache_bytes, udf_workers=workers)
    rng = np.random.default_rng(11)
    values = rng.integers(0, num_distinct, num_rows).astype(np.float64)
    db.create_table_from_dict("readings", {"value": values})

    def fn(batch: np.ndarray) -> np.ndarray:
        counter.append(len(batch))  # list.append is thread-safe
        return _model(batch)

    db.register_udf(
        BatchUdf(name="score", fn=fn, return_dtype=DataType.FLOAT64)
    )
    return db


_SQL = "SELECT score(value) FROM readings"


def test_cold_vs_warm_cache(benchmark, quick_mode):
    num_rows = 2_000 if quick_mode else 20_000
    counter: list[int] = []
    db = _make_db(
        counter,
        cache_bytes=64 * 1024 * 1024,
        num_rows=num_rows,
        num_distinct=max(64, num_rows // 50),
    )
    try:
        cold_rows_result = db.query(_SQL)
        cold_model_rows = sum(counter)

        warm_rows_result = benchmark.pedantic(
            lambda: db.query(_SQL), rounds=3, iterations=1
        )
        warm_model_rows = (sum(counter) - cold_model_rows) / 3

        print(
            f"\nmodel rows: cold={cold_model_rows} "
            f"warm(avg)={warm_model_rows:.0f} "
            f"cache={db.infer_cache.stats_dict()}"
        )
        # Acceptance bar: the warm run invokes the model on at least 5x
        # fewer rows than the cold run, and results are bit-identical.
        assert cold_model_rows == num_rows
        assert warm_model_rows * 5 <= cold_model_rows
        assert warm_rows_result == cold_rows_result
    finally:
        db.close()


def test_cold_run_with_duplicates_still_exact(quick_mode):
    """Heavy duplication doesn't change results, only model work."""
    num_rows = 1_000 if quick_mode else 8_000
    cached_counter: list[int] = []
    plain_counter: list[int] = []
    cached = _make_db(
        cached_counter,
        cache_bytes=64 * 1024 * 1024,
        num_rows=num_rows,
        num_distinct=32,
    )
    plain = _make_db(
        plain_counter,
        cache_bytes=0,
        num_rows=num_rows,
        num_distinct=32,
    )
    try:
        assert cached.query(_SQL) == plain.query(_SQL)
        assert sum(plain_counter) == num_rows
        # Second cached pass hits for every row.
        cached.query(_SQL)
        assert sum(cached_counter) == num_rows
    finally:
        cached.close()
        plain.close()


def test_worker_scaling(benchmark, quick_mode):
    """1 vs N morsel workers: identical output, timings printed."""
    num_rows = 2_000 if quick_mode else 20_000
    worker_counts = (1, 4)
    results = {}

    def sweep():
        import time

        for workers in worker_counts:
            counter: list[int] = []
            db = _make_db(
                counter,
                cache_bytes=0,  # isolate dispatch cost from caching
                workers=workers,
                num_rows=num_rows,
                num_distinct=num_rows,
            )
            try:
                started = time.perf_counter()
                rows = db.query(_SQL)
                elapsed = time.perf_counter() - started
            finally:
                db.close()
            results[workers] = (rows, elapsed, sum(counter))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nworkers -> seconds (model rows):")
    baseline_rows = results[worker_counts[0]][0]
    for workers in worker_counts:
        rows, elapsed, model_rows = results[workers]
        print(f"  {workers:>2}: {elapsed:.4f}s ({model_rows} rows)")
        assert model_rows == num_rows
        # Morsel dispatch must not change results or their order.
        assert rows == baseline_rows


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "--benchmark-only", "-s"])
