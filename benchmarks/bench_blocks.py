"""Fig. 9 — per-CNN-block runtime of DL2SQL inference."""

from repro.experiments import exp_blocks
from repro.experiments.reporting import print_table


def test_fig9_blocks(benchmark, bench_dataset):
    rows = benchmark.pedantic(
        lambda: exp_blocks.run(bench_dataset, num_keyframes=8),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["Block", "Seconds/keyframe", "Share"],
        [(r.block, r.seconds, f"{r.share:.1%}") for r in rows],
        title="Fig. 9: Costs of CNN Blocks in DL2SQL (student model)",
    )
    shares = {r.block: r.share for r in rows}
    conv_share = sum(
        v for k, v in shares.items() if k.startswith(("Conv", "Reshape"))
    )
    # Convolution machinery dominates the student's inference time.
    assert conv_share > 0.6
