"""Fig. 12a/12b/13 — cost-model estimation accuracy."""

from repro.engine import Database
from repro.experiments import exp_cost_model
from repro.experiments.reporting import print_table


def _print(rows, title):
    print_table(
        ["Setting", "Default est.(s)", "Customized est.(s)", "Actual(s)"],
        [
            (r.setting, r.default_seconds, r.custom_seconds, r.actual_seconds)
            for r in rows
        ],
        title=title,
    )


def test_fig12a_kernel_sweep(benchmark):
    db = Database()
    rows = benchmark.pedantic(
        lambda: exp_cost_model.run_kernel_sweep(
            kernels=(1, 2, 3, 4, 5), feature_size=12, db=db
        ),
        rounds=1,
        iterations=1,
    )
    _print(rows, "Fig. 12a: Varying CNN Kernel Size")
    # Default over-estimates, and its error grows with kernel size.
    for row in rows[1:]:
        assert row.default_seconds > row.custom_seconds
    first_gap = rows[1].default_seconds / max(rows[1].actual_seconds, 1e-9)
    last_gap = rows[-1].default_seconds / max(rows[-1].actual_seconds, 1e-9)
    assert last_gap > first_gap


def test_fig12b_feature_sweep(benchmark):
    db = Database()
    rows = benchmark.pedantic(
        lambda: exp_cost_model.run_feature_sweep(
            sizes=(8, 12, 16, 20), kernel=3, db=db
        ),
        rounds=1,
        iterations=1,
    )
    _print(rows, "Fig. 12b: Varying Input Feature Size")
    for row in rows[1:]:
        assert row.default_seconds > row.custom_seconds
        # The customized model tracks actual cost within roughly an order
        # of magnitude; the default model drifts far beyond it.
        assert row.custom_seconds < 20 * row.actual_seconds


def test_fig13_operator_sweep(benchmark):
    db = Database()
    rows = benchmark.pedantic(
        lambda: exp_cost_model.run_operator_sweep(size=12, db=db),
        rounds=1,
        iterations=1,
    )
    _print(rows, "Fig. 13: Estimation per Neural Operator")
    by_name = {r.setting: r for r in rows}
    for operator in ("conv", "bn"):
        row = by_name[operator]
        default_error = abs(row.default_seconds - row.actual_seconds)
        custom_error = abs(row.custom_seconds - row.actual_seconds)
        assert custom_error <= default_error
