"""TPC-H benchmark: larger-than-budget execution and zone-map pruning.

Two scenarios back the partitioned-storage acceptance criteria:

* ``suite_under_budget`` runs the whole query suite with
  ``query_memory_bytes`` set to a quarter of ``lineitem``'s resident
  size — no monolithic materialization of the fact table can fit, so
  the suite only completes because large joins take the grace-spill
  path.  The sidecar records per-query wall time plus the spill and
  pruning counters attributed to each query.
* ``zone_map_pruning`` contrasts the near-full scan (Q1) with the
  selective date-range scan (Q6) on an unbudgeted database: Q6 must
  touch measurably fewer partitions, and the skip counts land in the
  sidecar as evidence.

``--quick`` (CI) runs at SF 0.01; the full run uses SF 0.1 (~600k
``lineitem`` rows).  The committed ``BENCH_tpch.json`` holds the
numbers from the last local full run.
"""

import json
import os
import pathlib

import pytest

from repro.engine import Database
from repro.obs.metrics import MetricsRegistry
from repro.workload.tpch import (
    SUITE_COUNTERS,
    TPCH_QUERIES,
    TpchConfig,
    generate_tpch,
    run_suite,
)

#: The memory budget is lineitem's resident size divided by this.
BUDGET_FRACTION = 4

BENCH_SIDECAR = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_tpch.json"
)


def _record_scenario(name: str, payload: dict) -> None:
    data: dict = {}
    if BENCH_SIDECAR.exists():
        try:
            data = json.loads(BENCH_SIDECAR.read_text())
        except (ValueError, OSError):
            data = {}
    data["cpus"] = os.cpu_count()
    data.setdefault("scenarios", {})[name] = payload
    BENCH_SIDECAR.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def dataset(quick_mode):
    scale_factor = 0.01 if quick_mode else 0.1
    return generate_tpch(TpchConfig(scale_factor=scale_factor))


def test_suite_under_budget(dataset):
    lineitem_bytes = dataset.tables["lineitem"].nbytes()
    budget = lineitem_bytes // BUDGET_FRACTION
    db = Database(metrics=MetricsRegistry(), query_memory_bytes=budget)
    dataset.install(db)

    report = run_suite(db)

    totals = {
        counter: sum(entry[counter] for entry in report.values())
        for counter in SUITE_COUNTERS
    }
    # The budget cannot hold the fact table, so at least one join must
    # have gone through the spill path for the suite to complete.
    assert totals["join_spill_partitions_total"] > 0
    assert totals["join_spill_bytes_total"] > 0
    _record_scenario(
        "suite_under_budget",
        {
            "scale_factor": dataset.config.scale_factor,
            "lineitem_rows": dataset.tables["lineitem"].num_rows,
            "lineitem_resident_bytes": lineitem_bytes,
            "query_memory_bytes": budget,
            "queries": report,
            "totals": totals,
        },
    )


def test_zone_map_pruning(dataset):
    metrics = MetricsRegistry()
    db = Database(metrics=metrics)
    dataset.install(db)

    def scanned_after(sql: str) -> float:
        before = metrics.get("partitions_scanned_total")
        start = before.value if before else 0.0
        db.query(sql)
        return metrics.get("partitions_scanned_total").value - start

    full_scan = scanned_after(TPCH_QUERIES["q1"])
    selective_scan = scanned_after(TPCH_QUERIES["q6"])
    pruned = metrics.get("partitions_pruned_total")

    # Q6's one-year shipdate window must skip most of the clustered
    # lineitem partitions that Q1's near-full scan touches.
    assert selective_scan < full_scan
    assert pruned is not None and pruned.value > 0
    _record_scenario(
        "zone_map_pruning",
        {
            "scale_factor": dataset.config.scale_factor,
            "lineitem_partitions": dataset.tables["lineitem"].num_partitions,
            "full_scan_partitions": full_scan,
            "selective_scan_partitions": selective_scan,
            "partitions_pruned": pruned.value,
        },
    )
