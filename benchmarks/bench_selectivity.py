"""Table V — performance vs relational selectivity on the edge profile."""

from repro.experiments import exp_selectivity
from repro.experiments.reporting import print_table


def test_table5_selectivity(benchmark, bench_dataset, bench_repository):
    selectivities = (0.01, 0.05, 0.1, 0.2, 0.4, 0.6)
    rows = benchmark.pedantic(
        lambda: exp_selectivity.run(
            bench_dataset, bench_repository, selectivities=selectivities
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["Selectivity", "Strategy", "Inference(s)", "Loading(s)", "All(s)",
         "InferredRows"],
        [
            (r.selectivity, r.strategy, r.inference, r.loading, r.total,
             r.inferred_rows)
            for r in rows
        ],
        title="Table V: Performance vs Selectivity (edge profile)",
    )
    by_selectivity = {}
    for row in rows:
        by_selectivity.setdefault(row.selectivity, {})[row.strategy] = row

    # DL2SQL-OP consistently lowest; its lead narrows as selectivity grows.
    # The very first point is excluded from the narrowing check: at 0.01
    # almost nothing is inferred and fixed loading dominates every
    # strategy, compressing the ratios.
    ratios = []
    for selectivity in selectivities:
        subset = by_selectivity[selectivity]
        totals = {name: r.total for name, r in subset.items()}
        assert totals["DL2SQL-OP"] == min(totals.values())
        others = min(v for k, v in totals.items() if k != "DL2SQL-OP")
        ratios.append(others / totals["DL2SQL-OP"])
    assert ratios[1] > ratios[-1]
