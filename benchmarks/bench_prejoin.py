"""Fig. 11 — pre-join strategies' effect on CNN block runtime."""

from repro.core.compiler import PreJoin
from repro.experiments import exp_prejoin
from repro.experiments.reporting import print_table


def test_fig11_prejoin(benchmark, bench_dataset):
    rows = benchmark.pedantic(
        lambda: exp_prejoin.run(bench_dataset, num_keyframes=48),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["PreJoin", "Block", "Seconds/keyframe"],
        [(r.strategy, r.block, r.seconds) for r in rows],
        title="Fig. 11: Effect of Pre-Join Strategies on CNN Blocks",
    )
    totals = exp_prejoin.totals_by_strategy(rows)
    print_table(
        ["PreJoin", "Total seconds/keyframe"],
        sorted(totals.items()),
        title="Fig. 11 (totals)",
    )
    # In the paper's setting (statements re-planned per inference —
    # exp_prejoin runs with the prepared-plan cache off), folding the
    # mapping join away improves block runtime; the offline kernel
    # pre-join trades its saved join for an OC-times-larger probe table
    # and lands slightly above NONE at our channel counts.
    assert totals[PreJoin.FOLD.value] < totals[PreJoin.NONE.value] * 1.05
    assert totals[PreJoin.KERNEL.value] < totals[PreJoin.NONE.value] * 1.3
