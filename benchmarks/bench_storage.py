"""Table IV — storage overheads with different model depths."""

from repro.experiments import exp_storage


def test_table4_storage(benchmark):
    rows = benchmark.pedantic(
        lambda: exp_storage.run(depths=(5, 10, 15, 20, 25, 30, 35, 40)),
        rounds=1,
        iterations=1,
    )
    exp_storage.print_table(
        ["Depth", "Parameters", "DL2SQL(KB)", "DB-PyTorch(KB)", "DB-UDF(KB)",
         "Mappings(KB)"],
        [
            (r.depth, r.parameters, r.dl2sql_kb, r.db_pytorch_kb,
             r.db_udf_kb, r.dl2sql_mappings_kb)
            for r in rows
        ],
        title="Table IV: Storage Overheads with Different Model Depths",
    )
    # Reproduction shape: DL2SQL > DB-PyTorch >= DB-UDF, monotone in depth.
    for row in rows:
        assert row.dl2sql_kb > row.db_pytorch_kb >= row.db_udf_kb
    assert [r.dl2sql_kb for r in rows] == sorted(r.dl2sql_kb for r in rows)
