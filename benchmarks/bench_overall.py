"""Fig. 8 — overall performance across strategies and hardware."""

import json
import os
import pathlib

from repro.experiments import exp_overall
from repro.experiments.reporting import print_table

#: Repo-root sidecar with the regenerated Fig. 8 numbers, diffable
#: across commits (same spirit as ``BENCH_engine.json``).
BENCH_SIDECAR = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_overall.json"
)


def test_fig8_overall(benchmark, bench_dataset, bench_repository):
    rows = benchmark.pedantic(
        lambda: exp_overall.run(
            bench_dataset, bench_repository, selectivity=0.05
        ),
        rounds=1,
        iterations=1,
    )
    BENCH_SIDECAR.write_text(
        json.dumps(
            {
                "figure": "fig8_overall",
                "cpus": os.cpu_count(),
                "rows": [
                    {
                        "hardware": r.hardware,
                        "strategy": r.strategy,
                        "loading_seconds": r.loading,
                        "inference_seconds": r.inference,
                        "relational_seconds": r.relational,
                        "total_seconds": r.total,
                    }
                    for r in rows
                ],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print_table(
        ["Hardware", "Strategy", "Loading(s)", "Inference(s)",
         "Relational(s)", "Total(s)"],
        [
            (r.hardware, r.strategy, r.loading, r.inference, r.relational,
             r.total)
            for r in rows
        ],
        title="Fig. 8: Overall Evaluation Results (avg per query)",
    )
    edge = {r.strategy: r.total for r in rows if r.hardware.startswith("edge")}
    # Headline: DL2SQL-OP wins on the edge; plain DL2SQL beats both
    # cross-system strategies there.
    assert edge["DL2SQL-OP"] == min(edge.values())
    assert edge["DL2SQL"] < edge["DB-UDF"]
    assert edge["DL2SQL"] < edge["DB-PyTorch"]
