"""Fig. 14 — effectiveness of the hint rules vs selectivity."""

from repro.experiments import exp_hints
from repro.experiments.reporting import print_table
from repro.workload.models_repo import ModelRepository


def test_fig14_hints(benchmark, bench_dataset, bench_repository):
    repo = ModelRepository(tasks=bench_repository.by_role("detect"))
    selectivities = (0.02, 0.05, 0.1, 0.25, 0.5, 1.0)
    rows = benchmark.pedantic(
        lambda: exp_hints.run(
            bench_dataset, repo, selectivities=selectivities
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["Selectivity", "DL2SQL(s)", "DL2SQL-OP(s)", "Speedup",
         "Inferred (plain)", "Inferred (hints)"],
        [
            (r.selectivity, r.without_hints, r.with_hints,
             f"{r.speedup:.2f}x", r.inferred_without, r.inferred_with)
            for r in rows
        ],
        title="Fig. 14: Effect of Hints for Collaborative Queries",
    )
    # Hints prune inference everywhere and shine at low selectivity.  The
    # very lowest point is loading-dominated (a handful of frames), so the
    # peak advantage sits at the low-but-nonzero selectivities.
    for row in rows:
        assert row.inferred_with <= row.inferred_without
        assert row.with_hints <= row.without_hints * 1.05
    assert max(r.speedup for r in rows[:3]) > rows[-1].speedup
