"""Engine micro-benchmarks + the vectorization ablation.

DESIGN.md's design decision 1: the engine evaluates expressions over
numpy column vectors (ClickHouse-style).  ``test_vectorized_vs_row_at_a_time``
ablates this against a straightforward Python row interpreter running the
same filter+aggregate workload — the vectorized engine must win by a wide
margin, which is what makes SQL-side inference competitive at all.
"""

import numpy as np
import pytest

from repro.engine import Database


ROWS = 50_000


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(0)
    database = Database()
    database.create_table_from_dict(
        "t",
        {
            "k": rng.integers(0, 1000, ROWS),
            "v": rng.normal(size=ROWS),
            "g": rng.integers(0, 50, ROWS),
        },
    )
    database.create_table_from_dict(
        "s", {"k": np.arange(1000), "w": rng.normal(size=1000)}
    )
    return database


def test_filter_scan(benchmark, db):
    result = benchmark(lambda: db.execute("SELECT count(*) FROM t WHERE v > 0.5"))
    assert result.scalar() > 0


def test_hash_join(benchmark, db):
    result = benchmark(
        lambda: db.execute(
            "SELECT count(*) FROM t, s WHERE t.k = s.k"
        )
    )
    assert result.scalar() == ROWS


def test_group_by(benchmark, db):
    result = benchmark(
        lambda: db.execute("SELECT g, sum(v), count(*) FROM t GROUP BY g")
    )
    assert result.num_rows == 50


def test_sort_limit(benchmark, db):
    result = benchmark(
        lambda: db.execute("SELECT k FROM t ORDER BY v DESC LIMIT 10")
    )
    assert result.num_rows == 10


def _interpret(expression, row):
    """A tuple-at-a-time (Volcano-style) expression interpreter: what the
    engine would do per row without vectorization."""
    from repro.sql.ast_nodes import BinaryOp, ColumnRef, Literal

    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return row[expression.name]
    if isinstance(expression, BinaryOp):
        left = _interpret(expression.left, row)
        right = _interpret(expression.right, row)
        op = expression.op
        if op == ">":
            return left > right
        if op == "+":
            return left + right
        raise NotImplementedError(op)
    raise NotImplementedError(type(expression))


def _row_at_a_time_filter_sum(rows, predicate):
    total = 0.0
    count = 0
    for row in rows:
        if _interpret(predicate, row):
            total += row["v"]
            count += 1
    return total, count


def test_vectorized_vs_row_at_a_time(benchmark, db):
    """The vectorized engine must beat a Python row interpreter by >5x."""
    import time

    from repro.sql.parser import parse_statement

    table = db.table("t")
    names = table.schema.column_names
    rows = [dict(zip(names, row)) for row in table.iter_rows()]
    predicate = parse_statement("SELECT 1 FROM t WHERE v > 0.5").where

    started = time.perf_counter()
    _row_at_a_time_filter_sum(rows, predicate)
    row_seconds = time.perf_counter() - started

    def vectorized():
        return db.execute(
            "SELECT sum(v), count(*) FROM t WHERE v > 0.5"
        )

    result = benchmark(vectorized)
    assert result.num_rows == 1
    vector_seconds = benchmark.stats.stats.mean
    print(
        f"\nablation: row-at-a-time={row_seconds * 1e3:.1f}ms, "
        f"vectorized={vector_seconds * 1e3:.1f}ms, "
        f"speedup={row_seconds / vector_seconds:.1f}x"
    )
    assert vector_seconds * 5 < row_seconds


def test_dl2sql_single_inference(benchmark, bench_dataset):
    """Microbenchmark: one SQL forward pass of the student model."""
    from repro.core import Dl2SqlModel, PreJoin, compile_model
    from repro.tensor import build_student_cnn

    model = build_student_cnn(
        input_shape=bench_dataset.config.keyframe_shape, num_classes=4
    )
    compiled = compile_model(model, prejoin=PreJoin.FOLD)
    database = Database()
    runner = Dl2SqlModel(compiled)
    runner.load(database)
    keyframe = bench_dataset.sample_keyframes(1)[0]

    result = benchmark(lambda: runner.infer(database, keyframe))
    assert result.probabilities.sum() == pytest.approx(1.0)


def test_tensor_single_inference(benchmark, bench_dataset):
    """The numpy forward pass, for comparison with the SQL pathway."""
    from repro.tensor import build_student_cnn

    model = build_student_cnn(
        input_shape=bench_dataset.config.keyframe_shape, num_classes=4
    )
    keyframe = bench_dataset.sample_keyframes(1)[0]
    out = benchmark(lambda: model.forward(keyframe))
    assert out.shape == (4,)
