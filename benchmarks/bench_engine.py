"""Engine micro-benchmarks + the vectorization ablation.

DESIGN.md's design decision 1: the engine evaluates expressions over
numpy column vectors (ClickHouse-style).  ``test_vectorized_vs_row_at_a_time``
ablates this against a straightforward Python row interpreter running the
same filter+aggregate workload — the vectorized engine must win by a wide
margin, which is what makes SQL-side inference competitive at all.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.engine import Database


ROWS = 50_000

#: Machine-readable sidecar at the repo root recording the morsel
#: parallelism scenarios (workers=1 vs workers=4 on identical data).
#: CI regenerates it on every run (``--quick``); the committed copy
#: holds the numbers from the last local full run.
BENCH_SIDECAR = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_engine.json"
)


def _record_scenario(name: str, payload: dict) -> None:
    data: dict = {}
    if BENCH_SIDECAR.exists():
        try:
            data = json.loads(BENCH_SIDECAR.read_text())
        except (ValueError, OSError):
            data = {}
    data["cpus"] = os.cpu_count()
    data.setdefault("scenarios", {})[name] = payload
    BENCH_SIDECAR.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(0)
    database = Database()
    database.create_table_from_dict(
        "t",
        {
            "k": rng.integers(0, 1000, ROWS),
            "v": rng.normal(size=ROWS),
            "g": rng.integers(0, 50, ROWS),
        },
    )
    database.create_table_from_dict(
        "s", {"k": np.arange(1000), "w": rng.normal(size=1000)}
    )
    return database


def test_filter_scan(benchmark, db):
    result = benchmark(lambda: db.execute("SELECT count(*) FROM t WHERE v > 0.5"))
    assert result.scalar() > 0


def test_hash_join(benchmark, db):
    result = benchmark(
        lambda: db.execute(
            "SELECT count(*) FROM t, s WHERE t.k = s.k"
        )
    )
    assert result.scalar() == ROWS


def test_group_by(benchmark, db):
    result = benchmark(
        lambda: db.execute("SELECT g, sum(v), count(*) FROM t GROUP BY g")
    )
    assert result.num_rows == 50


def test_sort_limit(benchmark, db):
    result = benchmark(
        lambda: db.execute("SELECT k FROM t ORDER BY v DESC LIMIT 10")
    )
    assert result.num_rows == 10


def _parallel_pair(tables: dict, **kwargs) -> tuple[Database, Database]:
    serial = Database(workers=1, **kwargs)
    parallel = Database(workers=4, **kwargs)
    for db in (serial, parallel):
        for name, columns in tables.items():
            db.create_table_from_dict(name, dict(columns))
    return serial, parallel


def test_parallel_relational_pipeline(quick_mode):
    """Workers=4 vs workers=1 over the same filter/join/group pipeline.

    On a single-core host numpy morsels cannot overlap, so no speedup
    floor is asserted here — the recorded number documents the host.
    Result equality across worker counts IS asserted (the contract the
    differential suite pins at small scale).
    """
    rows = 30_000 if quick_mode else 200_000
    rng = np.random.default_rng(1)
    tables = {
        "t": {
            "k": rng.integers(0, 1000, rows),
            "v": rng.normal(size=rows),
            "g": rng.integers(0, 50, rows),
        },
        "s": {"k": np.arange(1000), "w": rng.normal(size=1000)},
    }
    serial, parallel = _parallel_pair(tables)
    sql = (
        "SELECT g, count(*), sum(v) FROM t, s "
        "WHERE t.k = s.k AND v > -1.0 GROUP BY g"
    )

    def rounded(rows):
        # Partial-aggregate merges re-associate float addition, so sums
        # agree to rounding (the differential suite's comparison), not
        # to the last ulp.
        return sorted(
            tuple(
                round(float(value), 6)
                if isinstance(value, (float, np.floating))
                else int(value)
                for value in row
            )
            for row in rows
        )

    assert rounded(serial.query(sql)) == rounded(parallel.query(sql))
    serial_s = _best_of(3, lambda: serial.execute(sql))
    parallel_s = _best_of(3, lambda: parallel.execute(sql))
    _record_scenario(
        "relational_pipeline",
        {
            "rows": rows,
            "sql": sql,
            "workers1_seconds": serial_s,
            "workers4_seconds": parallel_s,
            "speedup": serial_s / parallel_s,
            "identical_results": True,
        },
    )
    parallel.close()
    serial.close()


def test_parallel_udf_latency_bound(quick_mode):
    """The >=2x scenario: a latency-bound UDF (per-row stall, GIL
    released) overlaps across morsel workers even on one core.

    This is the regime the paper's DB-UDF strategy lives in — per-batch
    model inference dominated by accelerator/IO latency rather than
    Python compute — and where 4 workers must beat 1 by >=2x."""
    from repro.engine.udf import BatchUdf
    from repro.storage.schema import DataType

    rows = 800 if quick_mode else 2000
    per_row_sleep = 5e-5

    def stall_udf():
        def fn(values):
            time.sleep(len(values) * per_row_sleep)
            return values * 2.0

        return BatchUdf(
            name="stall", fn=fn, return_dtype=DataType.FLOAT64
        )

    tables = {"t": {"x": [float(i) for i in range(rows)]}}
    serial, parallel = _parallel_pair(tables, udf_morsel_rows=64)
    serial.register_udf(stall_udf())
    parallel.register_udf(stall_udf())
    sql = "SELECT sum(stall(x)) FROM t"
    assert serial.execute(sql).scalar() == parallel.execute(sql).scalar()
    serial_s = _best_of(2, lambda: serial.execute(sql))
    parallel_s = _best_of(2, lambda: parallel.execute(sql))
    speedup = serial_s / parallel_s
    _record_scenario(
        "udf_latency_bound",
        {
            "rows": rows,
            "per_row_stall_seconds": per_row_sleep,
            "sql": sql,
            "workers1_seconds": serial_s,
            "workers4_seconds": parallel_s,
            "speedup": speedup,
            "identical_results": True,
        },
    )
    parallel.close()
    serial.close()
    assert speedup >= 2.0, f"latency-bound morsels only reached {speedup:.2f}x"


def test_mask_free_kernels(quick_mode):
    """Dataflow-proven NULL-free columns skip per-batch mask derivation.

    For float columns without an explicit validity mask the engine
    otherwise derives NULL positions with an ``np.isnan`` scan per
    column per batch; when statistics prove the column NULL-free the
    folding pass annotates plan nodes and the fused kernels read the
    data array directly.  Folding on vs ``fold_constants=False`` over
    identical all-non-null data isolates exactly that saving."""
    from repro.engine.logical import walk_plan

    rows = 100_000 if quick_mode else 2_000_000
    rng = np.random.default_rng(7)
    columns = {"a": rng.normal(size=rows), "b": rng.normal(size=rows)}
    folded = Database()
    unfolded = Database(fold_constants=False)
    for db in (folded, unfolded):
        db.create_table_from_dict("m", dict(columns))
    # Filter-dominated: the per-batch mask derivation is a fixed share
    # of the full-column scan, so this is where skipping it shows up.
    sql = "SELECT a + b FROM m WHERE a > 2.0"

    plan = folded.explain(sql).plan
    annotated = {
        pair
        for node in walk_plan(plan)
        for pair in getattr(node, "nonnull_columns", ())
    }
    assert ("m", "a") in annotated, "fold pass did not prove a NULL-free"

    def rounded(result):
        return sorted(round(float(value), 9) for (value,) in result.rows())

    assert rounded(folded.execute(sql)) == rounded(unfolded.execute(sql))
    fold_on_s = _best_of(7, lambda: folded.execute(sql))
    fold_off_s = _best_of(7, lambda: unfolded.execute(sql))
    _record_scenario(
        "mask_free_kernels",
        {
            "rows": rows,
            "sql": sql,
            "fold_on_seconds": fold_on_s,
            "fold_off_seconds": fold_off_s,
            "speedup": fold_off_s / fold_on_s,
            "identical_results": True,
        },
    )
    print(
        f"\nmask-free: fold_on={fold_on_s * 1e3:.2f}ms, "
        f"fold_off={fold_off_s * 1e3:.2f}ms, "
        f"speedup={fold_off_s / fold_on_s:.2f}x"
    )
    folded.close()
    unfolded.close()


def _interpret(expression, row):
    """A tuple-at-a-time (Volcano-style) expression interpreter: what the
    engine would do per row without vectorization."""
    from repro.sql.ast_nodes import BinaryOp, ColumnRef, Literal

    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return row[expression.name]
    if isinstance(expression, BinaryOp):
        left = _interpret(expression.left, row)
        right = _interpret(expression.right, row)
        op = expression.op
        if op == ">":
            return left > right
        if op == "+":
            return left + right
        raise NotImplementedError(op)
    raise NotImplementedError(type(expression))


def _row_at_a_time_filter_sum(rows, predicate):
    total = 0.0
    count = 0
    for row in rows:
        if _interpret(predicate, row):
            total += row["v"]
            count += 1
    return total, count


def test_vectorized_vs_row_at_a_time(benchmark, db):
    """The vectorized engine must beat a Python row interpreter by >5x."""
    import time

    from repro.sql.parser import parse_statement

    table = db.table("t")
    names = table.schema.column_names
    rows = [dict(zip(names, row)) for row in table.iter_rows()]
    predicate = parse_statement("SELECT 1 FROM t WHERE v > 0.5").where

    started = time.perf_counter()
    _row_at_a_time_filter_sum(rows, predicate)
    row_seconds = time.perf_counter() - started

    def vectorized():
        return db.execute(
            "SELECT sum(v), count(*) FROM t WHERE v > 0.5"
        )

    result = benchmark(vectorized)
    assert result.num_rows == 1
    vector_seconds = benchmark.stats.stats.mean
    print(
        f"\nablation: row-at-a-time={row_seconds * 1e3:.1f}ms, "
        f"vectorized={vector_seconds * 1e3:.1f}ms, "
        f"speedup={row_seconds / vector_seconds:.1f}x"
    )
    assert vector_seconds * 5 < row_seconds


def test_dl2sql_single_inference(benchmark, bench_dataset):
    """Microbenchmark: one SQL forward pass of the student model."""
    from repro.core import Dl2SqlModel, PreJoin, compile_model
    from repro.tensor import build_student_cnn

    model = build_student_cnn(
        input_shape=bench_dataset.config.keyframe_shape, num_classes=4
    )
    compiled = compile_model(model, prejoin=PreJoin.FOLD)
    database = Database()
    runner = Dl2SqlModel(compiled)
    runner.load(database)
    keyframe = bench_dataset.sample_keyframes(1)[0]

    result = benchmark(lambda: runner.infer(database, keyframe))
    assert result.probabilities.sum() == pytest.approx(1.0)


def test_tensor_single_inference(benchmark, bench_dataset):
    """The numpy forward pass, for comparison with the SQL pathway."""
    from repro.tensor import build_student_cnn

    model = build_student_cnn(
        input_shape=bench_dataset.config.keyframe_shape, num_classes=4
    )
    keyframe = bench_dataset.sample_keyframes(1)[0]
    out = benchmark(lambda: model.forward(keyframe))
    assert out.shape == (4,)
