"""Table VI — performance vs ResNet depth on the edge profile."""

from repro.experiments import exp_depth
from repro.experiments.reporting import print_table


def test_table6_depth(benchmark, small_dataset, quick_mode):
    depths = (5, 8) if quick_mode else (5, 8, 11, 14)
    rows = benchmark.pedantic(
        lambda: exp_depth.run(small_dataset, depths=depths),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["Depth", "Parameters", "Strategy", "Inference(s)", "Loading(s)",
         "Total(s)"],
        [
            (r.depth, r.parameters, r.strategy, r.inference, r.loading,
             r.total)
            for r in rows
        ],
        title="Table VI: Performance vs Model Depth (edge profile)",
    )
    by_depth = {}
    for row in rows:
        by_depth.setdefault(row.depth, {})[row.strategy] = row

    # DL2SQL-OP wins at the shallow end...
    shallow = {k: v.total for k, v in by_depth[depths[0]].items()}
    assert shallow["DL2SQL-OP"] == min(shallow.values())
    # ...but its loading (relational model tables) grows faster than
    # DB-PyTorch's file-based loading, shrinking the advantage with depth.
    op_lead_shallow = (
        by_depth[depths[0]]["DB-PyTorch"].total
        / by_depth[depths[0]]["DL2SQL-OP"].total
    )
    op_lead_deep = (
        by_depth[depths[-1]]["DB-PyTorch"].total
        / by_depth[depths[-1]]["DL2SQL-OP"].total
    )
    if not quick_mode:  # narrow depth spread makes ratios noisy
        assert op_lead_deep < op_lead_shallow
    loading_growth_op = (
        by_depth[depths[-1]]["DL2SQL-OP"].loading
        / max(by_depth[depths[0]]["DL2SQL-OP"].loading, 1e-9)
    )
    loading_growth_pt = (
        by_depth[depths[-1]]["DB-PyTorch"].loading
        / max(by_depth[depths[0]]["DB-PyTorch"].loading, 1e-9)
    )
    if not quick_mode:
        assert loading_growth_op > loading_growth_pt
