"""Ablation: batched vs per-sample DL2SQL inference.

The paper runs nUDFs "in a batch manner".  This bench quantifies what the
batched compilation buys on this engine — and where it doesn't: fixed
per-statement costs (dispatch, catalog ops, output materialization)
amortize over the batch, so batching wins when those dominate (small
models); for larger per-frame workloads the vectorized engine is already
batch-efficient sample by sample (the plan cache removes re-optimization),
and the extra BatchID grouping key roughly cancels the savings.  The
crossover itself is the reproduced insight.
"""

import time

import numpy as np
import pytest

from repro.core import (
    BatchedDl2SqlModel,
    Dl2SqlModel,
    PreJoin,
    compile_model,
    compile_model_batched,
)
from repro.engine import Database
from repro.experiments.reporting import print_table
from repro.tensor import build_student_cnn


def _per_frame_costs(model, frames, batch_sizes=(1, 8, 32)):
    per_sample = compile_model(model, prejoin=PreJoin.FOLD)
    batched = compile_model_batched(model, prejoin=PreJoin.FOLD)

    db1 = Database()
    sample_runner = Dl2SqlModel(per_sample)
    sample_runner.load(db1)
    sample_runner.infer(db1, frames[0])          # warm plan caches
    started = time.perf_counter()
    for frame in frames:
        sample_runner.infer(db1, frame)
    per_sample_each = (time.perf_counter() - started) / len(frames)

    db2 = Database()
    batch_runner = BatchedDl2SqlModel(batched)
    batch_runner.load(db2)
    batch_runner.infer_batch(db2, frames[:1])    # warm plan caches
    rows = []
    for batch_size in batch_sizes:
        started = time.perf_counter()
        batch_runner.infer_batch(db2, frames[:batch_size])
        rows.append(
            (
                batch_size,
                (time.perf_counter() - started) / batch_size,
                per_sample_each,
            )
        )
    return rows


def test_batched_amortization_small_model(benchmark, quick_mode):
    """Small model: per-statement overhead dominates -> batching wins."""
    model = build_student_cnn(
        input_shape=(1, 8, 8), num_classes=3, channels=(3, 3, 3), seed=1
    )
    frames = [
        np.random.default_rng(i).normal(size=(1, 8, 8)) for i in range(32)
    ]
    rows = benchmark.pedantic(
        lambda: _per_frame_costs(model, frames), rounds=1, iterations=1
    )
    print_table(
        ["Batch size", "Batched s/frame", "Per-sample s/frame"],
        rows,
        title="Batched vs per-sample (small model, 8x8)",
    )
    # At full batch, batching beats the per-sample loop per frame.
    # (Timing comparison; skipped under --quick where load spikes on
    # shared CI runners make it flaky.)
    if not quick_mode:
        assert rows[-1][1] < rows[-1][2]


def test_batched_crossover_larger_model(benchmark, bench_dataset, quick_mode):
    """Larger per-frame work: vectorized per-sample execution is already
    efficient; batching must stay within ~2x (not collapse), and the bench
    records the observed crossover."""
    model = build_student_cnn(
        input_shape=bench_dataset.config.keyframe_shape, num_classes=4
    )
    frames = bench_dataset.sample_keyframes(32)
    rows = benchmark.pedantic(
        lambda: _per_frame_costs(model, frames), rounds=1, iterations=1
    )
    print_table(
        ["Batch size", "Batched s/frame", "Per-sample s/frame"],
        rows,
        title="Batched vs per-sample (12x12 model)",
    )
    if not quick_mode:  # timing comparison, flaky on loaded runners
        assert rows[-1][1] < rows[-1][2] * 2.0


def test_batched_parity_at_scale(benchmark, bench_dataset):
    model = build_student_cnn(
        input_shape=bench_dataset.config.keyframe_shape, num_classes=4
    )
    frames = bench_dataset.sample_keyframes(16)
    batched = compile_model_batched(model, prejoin=PreJoin.FOLD)
    db = Database()
    runner = BatchedDl2SqlModel(batched)
    runner.load(db)

    result = benchmark.pedantic(
        lambda: runner.infer_batch(db, frames), rounds=1, iterations=1
    )
    expected = model.forward_batch(frames)
    assert np.allclose(result.probabilities, expected, atol=1e-8)
