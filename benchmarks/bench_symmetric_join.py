"""Ablation: symmetric hash join under memory pressure (hint rule 3).

The paper's third hint maintains both hash tables in memory with a
bucket-based LRU policy; this bench measures how the cache-miss/reload
counters respond to the buffer budget, and that the join's output stays
exact regardless of pressure.
"""

import numpy as np
import pytest

from repro.engine.expressions import FunctionRegistry
from repro.engine.physical import (
    ExecutionContext,
    _match_numeric_keys,
    _symmetric_hash_join,
)
from repro.engine.profiler import Profiler
from repro.engine.udf import UdfRegistry
from repro.storage.catalog import Catalog


def _ctx(budget):
    return ExecutionContext(
        catalog=Catalog(),
        functions=FunctionRegistry(),
        udfs=UdfRegistry(),
        profiler=Profiler(),
        symmetric_join_memory=budget,
    )


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(7)
    return (
        rng.integers(0, 5000, 20_000),
        rng.integers(0, 5000, 20_000),
    )


def test_symmetric_join_unconstrained(benchmark, keys):
    left, right = keys
    ctx = _ctx(64 * 1024 * 1024)
    out = benchmark.pedantic(
        lambda: _symmetric_hash_join([left], [right], ctx),
        rounds=1,
        iterations=1,
    )
    assert ctx.last_symmetric_stats["cache_misses"] == 0
    assert len(out[0]) == len(_match_numeric_keys(left, right)[0])


def test_symmetric_join_memory_pressure(benchmark, keys):
    left, right = keys
    budgets = (4096, 16 * 1024, 256 * 1024)
    results = {}

    def sweep():
        for budget in budgets:
            ctx = _ctx(budget)
            pairs = _symmetric_hash_join([left], [right], ctx)
            results[budget] = (ctx.last_symmetric_stats, len(pairs[0]))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    expected_pairs = len(_match_numeric_keys(left, right)[0])
    print("\nbudget -> cache misses / bucket reloads:")
    for budget in budgets:
        stats, pairs = results[budget]
        print(
            f"  {budget:>8} B: misses={stats['cache_misses']:>6} "
            f"reloads={stats['bucket_reloads']:>7} pairs={pairs}"
        )
        # Results are exact regardless of pressure.
        assert pairs == expected_pairs
    # Tighter budgets force more LRU evictions and reloads.
    misses = [results[b][0]["cache_misses"] for b in budgets]
    assert misses[0] > misses[-1]
