"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures: each bench times the
experiment with pytest-benchmark and prints the regenerated artifact
(visible with ``pytest benchmarks/ --benchmark-only -s``).

Every benchmark test also writes a machine-readable JSON sidecar
(``benchmarks/.observations/<test_id>.json``) through the metrics/trace
hooks: wall-clock duration plus whatever the process-wide metrics
registry accumulated during the test.  Downstream tooling can diff these
across commits without parsing pytest-benchmark's own output.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.obs.metrics import get_registry
from repro.workload.dataset import DatasetConfig, generate_dataset
from repro.workload.models_repo import build_repository

OBSERVATIONS_DIR = pathlib.Path(__file__).parent / ".observations"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "shrink benchmark datasets/iterations for CI smoke runs "
            "(timings are not representative)"
        ),
    )


@pytest.fixture(scope="session")
def quick_mode(request) -> bool:
    """True when ``--quick`` was passed (CI smoke mode)."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(autouse=True)
def benchmark_observations(request):
    """Emit one JSON sidecar per benchmark test (metrics + duration)."""
    registry = get_registry()
    registry.reset()
    started = time.perf_counter()
    yield
    duration = time.perf_counter() - started
    OBSERVATIONS_DIR.mkdir(exist_ok=True)
    safe_id = (
        request.node.nodeid.replace("/", "_")
        .replace("::", ".")
        .replace(".py", "")
    )
    sidecar = {
        "test": request.node.nodeid,
        "duration_seconds": duration,
        "metrics": registry.to_dict(),
    }
    path = OBSERVATIONS_DIR / f"{safe_id}.json"
    path.write_text(json.dumps(sidecar, indent=2, sort_keys=True))


@pytest.fixture(scope="session")
def bench_dataset(quick_mode):
    """The benchmark-scale dataset (larger than the unit-test one)."""
    scale = 1 if quick_mode else 2
    return generate_dataset(
        DatasetConfig(scale=scale, keyframe_shape=(1, 12, 12))
    )


@pytest.fixture(scope="session")
def bench_repository(bench_dataset, quick_mode):
    calibration = 8 if quick_mode else 32
    return build_repository(
        bench_dataset, num_tasks=4, calibration_samples=calibration
    )


@pytest.fixture(scope="session")
def small_dataset():
    """A smaller dataset for the heavy depth sweep."""
    return generate_dataset(DatasetConfig(scale=1, keyframe_shape=(1, 8, 8)))
