"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures: each bench times the
experiment with pytest-benchmark and prints the regenerated artifact
(visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations

import pytest

from repro.workload.dataset import DatasetConfig, generate_dataset
from repro.workload.models_repo import build_repository


@pytest.fixture(scope="session")
def bench_dataset():
    """The benchmark-scale dataset (larger than the unit-test one)."""
    return generate_dataset(DatasetConfig(scale=2, keyframe_shape=(1, 12, 12)))


@pytest.fixture(scope="session")
def bench_repository(bench_dataset):
    return build_repository(bench_dataset, num_tasks=4, calibration_samples=32)


@pytest.fixture(scope="session")
def small_dataset():
    """A smaller dataset for the heavy depth sweep."""
    return generate_dataset(DatasetConfig(scale=1, keyframe_shape=(1, 8, 8)))
