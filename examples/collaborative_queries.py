"""Run all four collaborative-query types (Table I) under every strategy.

Generates the synthetic Alibaba-IoT-style dataset, builds a small model
repository (teacher -> distilled student per task), then executes one
query of each type with DB-PyTorch, DB-UDF, DL2SQL and DL2SQL-OP,
printing rows and the loading/inference/relational breakdown.

Run:  python examples/collaborative_queries.py
"""

from repro.experiments.reporting import print_table
from repro.strategies import (
    IndependentStrategy,
    LooseStrategy,
    QueryType,
    TightStrategy,
)
from repro.workload import (
    DatasetConfig,
    QueryBenchmark,
    QueryGenerator,
    build_repository,
    generate_dataset,
)

def main() -> None:
    dataset = generate_dataset(
        DatasetConfig(scale=2, keyframe_shape=(1, 10, 10))
    )
    print("dataset tables:",
          {name: t.num_rows for name, t in dataset.tables.items()})

    repository = build_repository(
        dataset, num_tasks=4, calibration_samples=32
    )
    print(f"model repository: {len(repository)} tasks "
          f"({[t.name for t in repository.tasks]})")

    bench = QueryBenchmark(dataset, repository)
    generator = QueryGenerator(dataset)
    strategies = [
        IndependentStrategy(),
        LooseStrategy(),
        TightStrategy(),
        TightStrategy(optimized=True),
    ]

    for query_type in QueryType:
        query = generator.make_query(query_type, selectivity=0.3)
        print(f"\n=== Type {int(query_type)} "
              f"({query_type.difficulty}): {query.description}")
        print(f"    {query.sql}")
        rows = []
        for strategy in strategies:
            summary = bench.run_strategy(strategy, [query])
            average = summary.average()
            rows.append(
                (
                    strategy.name,
                    summary.result_rows,
                    summary.inferred_rows,
                    average.loading,
                    average.inference,
                    average.relational,
                    average.total,
                )
            )
        print_table(
            ["Strategy", "Rows", "Inferred", "Loading(s)", "Inference(s)",
             "Relational(s)", "Total(s)"],
            rows,
        )
        assert len({r[1] for r in rows}) == 1, "strategies must agree"

if __name__ == "__main__":
    main()
