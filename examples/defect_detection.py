"""The paper's motivating scenario: textile printing fault detection.

Reproduces the introduction's workflow end to end:

1. a teacher ResNet is "trained" for defect detection and distilled into
   a 3-block student (logit-matching on calibration keyframes);
2. the class histogram of the student is calibrated (Eq. 10) — this is
   what gives the optimizer the nUDF's selectivity;
3. the intro's fault-detection query runs under DL2SQL-OP, and we watch
   the hint rules prune inference work.

Run:  python examples/defect_detection.py
"""

import numpy as np

from repro.core.selectivity import NudfSelectivity
from repro.strategies import CollaborativeQuery, QueryType, TightStrategy
from repro.workload import DatasetConfig, build_task, generate_dataset
from repro.workload.benchmark import QueryBenchmark
from repro.workload.models_repo import ModelRepository

def main() -> None:
    dataset = generate_dataset(
        DatasetConfig(scale=2, keyframe_shape=(1, 10, 10))
    )

    # 1 + 2: teacher -> student distillation + histogram calibration.
    task = build_task(dataset, "detect", calibration_samples=48)
    estimator = task.selectivity()
    print(f"task {task.name}: teacher={task.teacher.name} "
          f"({task.teacher.num_parameters()} params) -> "
          f"student={task.student.name} "
          f"({task.student.num_parameters()} params)")
    print(f"calibrated histogram: {task.histogram}")
    print(f"Pr(Defect) = {estimator.selectivity_equals(True):.3f}  "
          f"Pr(Not Found) = {estimator.selectivity_equals(False):.3f}")

    # 3: the introduction's query (adapted to the generated schema).
    lo, hi = dataset.date_bounds_for_selectivity(0.4)
    query = CollaborativeQuery(
        sql=(
            "SELECT F.patternID, F.transID "
            "FROM fabric F, video V "
            "WHERE F.humidity > 50 AND F.temperature > 25 "
            f"AND F.printdate >= '{lo}' AND F.printdate < '{hi}' "
            "AND F.transID = V.transID "
            f"AND V.date >= '{lo}' AND V.date < '{hi}' "
            "AND nUDF_detect(V.keyframe) = FALSE"
        ),
        query_type=QueryType.LEARNING_DEPENDS_ON_DB,
        description="printing transactions with no detected fault",
        udf_roles=("detect",),
    )
    print(f"\ncollaborative query:\n  {query.sql}")

    repository = ModelRepository(tasks=[task])
    bench = QueryBenchmark(dataset, repository)
    total_videos = dataset.tables["video"].num_rows

    for strategy in (TightStrategy(), TightStrategy(optimized=True)):
        summary = bench.run_strategy(strategy, [query])
        average = summary.average()
        print(f"\n{strategy.name}:")
        print(f"  result rows      : {summary.result_rows}")
        print(f"  inferred frames  : {summary.inferred_rows} "
              f"of {total_videos} videos")
        print(f"  loading          : {average.loading:.3f} s")
        print(f"  inference        : {average.inference:.3f} s")
        print(f"  relational       : {average.relational:.3f} s")
        print(f"  total            : {average.total:.3f} s")

    print("\nThe hint rules (Section IV-B) defer nUDF_detect until after "
          "the joins and cheap predicates, which is why DL2SQL-OP runs "
          "the model on far fewer keyframes.")

if __name__ == "__main__":
    main()
