"""Batched DL2SQL: one SQL program classifies a whole keyframe batch.

The paper notes the nUDF "is performed in a batch manner (a batch of
feature maps are fed to the model together)".  This example compiles the
student CNN in batch mode — every generated statement carries a BatchID
partition — runs 16 keyframes through a single program execution, and
compares per-frame cost against the per-sample runner.

Run:  python examples/batched_inference.py
"""

import time

import numpy as np

from repro.core import (
    BatchedDl2SqlModel,
    Dl2SqlModel,
    PreJoin,
    compile_model,
    compile_model_batched,
)
from repro.engine import Database
from repro.tensor import build_student_cnn

def main() -> None:
    model = build_student_cnn(
        input_shape=(1, 8, 8),
        num_classes=4,
        channels=(3, 3, 3),
        class_labels=["Floral", "Striped", "Checked", "Solid"],
    )
    rng = np.random.default_rng(3)
    frames = [rng.normal(size=(1, 8, 8)) for _ in range(16)]

    batched = compile_model_batched(model, prejoin=PreJoin.FOLD)
    print("a batched statement (note the BatchID partitioning):")
    print(" ", batched.steps[0].sql[:150], "...\n")

    db = Database()
    runner = BatchedDl2SqlModel(batched)
    runner.load(db)
    runner.infer_batch(db, frames[:1])          # warm plan caches
    started = time.perf_counter()
    result = runner.infer_batch(db, frames)
    batched_seconds = time.perf_counter() - started

    expected = model.forward_batch(frames)
    assert np.allclose(result.probabilities, expected, atol=1e-8)
    print(f"batch of {result.batch_size}: labels = {result.labels[:8]} ...")
    print(f"parity with numpy forward passes: OK")
    print(f"batched   : {batched_seconds / len(frames) * 1e3:6.2f} ms/frame")

    per_sample = compile_model(model, prejoin=PreJoin.FOLD)
    db2 = Database()
    sample_runner = Dl2SqlModel(per_sample)
    sample_runner.load(db2)
    sample_runner.infer(db2, frames[0])         # warm plan caches
    started = time.perf_counter()
    for frame in frames:
        sample_runner.infer(db2, frame)
    loop_seconds = time.perf_counter() - started
    print(f"per-sample: {loop_seconds / len(frames) * 1e3:6.2f} ms/frame")
    print(f"\nbatching amortizes the fixed per-statement costs "
          f"({loop_seconds / batched_seconds:.1f}x here).")

if __name__ == "__main__":
    main()
