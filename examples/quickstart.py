"""Quickstart: compile a CNN to SQL and run inference inside the database.

This walks the paper's core idea end to end in ~40 lines of user code:

1. build a small CNN (the "student" architecture of the paper);
2. compile it with DL2SQL — the model becomes relational tables plus a
   SQL program (Q1/Q2-style statements);
3. load the tables into the columnar database and run a forward pass by
   executing SQL;
4. check the result against the native numpy forward pass.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Dl2SqlModel, PreJoin, compile_model
from repro.engine import Database
from repro.tensor import build_student_cnn

def main() -> None:
    # 1. A 3-block Conv+BN+ReLU student CNN classifying 16x16 images.
    model = build_student_cnn(
        input_shape=(1, 16, 16),
        num_classes=4,
        class_labels=["Floral", "Striped", "Checked", "Solid"],
    )
    print(f"model: {model}")

    # 2. Compile to SQL.  The FOLD pre-join strategy composes the mapping
    # join into the convolution statement (Fig. 11, strategy 2).
    compiled = compile_model(model, prejoin=PreJoin.FOLD)
    print(f"compiled into {len(compiled.steps)} SQL statements and "
          f"{len(compiled.static_tables)} relational tables "
          f"({compiled.static_bytes() / 1024:.0f} KB)")
    print("\nfirst generated statement (the paper's Q1 shape):")
    print(" ", compiled.steps[0].sql[:160], "...")

    # 3. Load into a database and infer through SQL.
    db = Database()
    runner = Dl2SqlModel(compiled)
    load_seconds = runner.load(db)
    print(f"\nloaded model tables in {load_seconds * 1e3:.1f} ms")

    image = np.random.default_rng(7).normal(size=(1, 16, 16))
    result = runner.infer(db, image)
    print(f"SQL inference: label={result.label!r} "
          f"probabilities={np.round(result.probabilities, 4)} "
          f"({result.exec_seconds * 1e3:.1f} ms)")

    # 4. The SQL pathway is bit-for-bit the numpy forward pass.
    expected = model.forward(image)
    assert np.allclose(result.probabilities, expected, atol=1e-9)
    print("matches the native forward pass: OK")

    print("\nper-block cost (Fig. 9's breakdown):")
    for block, seconds in result.block_seconds.items():
        print(f"  {block:<16} {seconds * 1e3:7.2f} ms")

if __name__ == "__main__":
    main()
