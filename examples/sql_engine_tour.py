"""A tour of the columnar SQL engine (the ClickHouse substitute).

The paper's contribution sits on a real database: this example shows the
substrate on its own — DDL/DML, joins, aggregation, views, indexes, the
optimizer's EXPLAIN output, UDFs, and the per-clause profiler behind
Fig. 10.

Run:  python examples/sql_engine_tour.py
"""

import numpy as np

from repro.engine import BatchUdf, Database
from repro.storage.schema import DataType

def main() -> None:
    db = Database()

    # DDL + bulk loading.
    db.execute("CREATE TABLE sensors (deviceID Int64, temp Float64, d Date)")
    db.execute(
        "INSERT INTO sensors VALUES "
        "(1, 21.5, '2021-01-03'), (1, 35.0, '2021-02-10'), "
        "(2, 18.0, '2021-01-20'), (2, 40.5, '2021-03-01'), "
        "(3, 25.0, '2021-02-14')"
    )
    rng = np.random.default_rng(0)
    db.create_table_from_dict(
        "readings",
        {
            "deviceID": rng.integers(1, 4, 10_000),
            "value": rng.normal(25.0, 10.0, 10_000),
        },
    )

    # Joins + aggregation + dates.
    rows = db.query(
        "SELECT s.deviceID, count(*), avg(r.value) "
        "FROM sensors s, readings r "
        "WHERE s.deviceID = r.deviceID AND s.d < '2021-02-01' "
        "GROUP BY s.deviceID ORDER BY s.deviceID"
    )
    print("per-device averages (devices first seen before February):")
    for device, count, average in rows:
        print(f"  device {device}: {count} readings, avg {average:.2f}")

    # Views + EXPLAIN.
    db.execute(
        "CREATE VIEW hot AS SELECT deviceID, value FROM readings "
        "WHERE value > 40"
    )
    print(f"\nhot readings: {db.execute('SELECT count(*) FROM hot').scalar()}")
    explained = db.explain(
        "SELECT s.deviceID FROM sensors s, readings r "
        "WHERE s.deviceID = r.deviceID AND r.value > 40"
    )
    print("\nEXPLAIN (note the pushdown below the hash join):")
    print(explained.text)
    print(f"estimated rows: {explained.estimated_rows:.0f}, "
          f"cost: {explained.estimated_cost:.0f} units")

    # UDFs: batched, with the registry accounting the paper needs.
    def fahrenheit(values: np.ndarray) -> np.ndarray:
        return values * 9.0 / 5.0 + 32.0

    db.register_udf(
        BatchUdf(name="toF", fn=fahrenheit, return_dtype=DataType.FLOAT64)
    )
    rows = db.query("SELECT deviceID, toF(temp) FROM sensors ORDER BY deviceID LIMIT 3")
    print("\nUDF in a projection:", rows)

    # The profiler behind Fig. 10.
    db.profiler.reset()
    db.query(
        "SELECT s.deviceID, sum(r.value) FROM sensors s, readings r "
        "WHERE s.deviceID = r.deviceID GROUP BY s.deviceID"
    )
    print("\nper-clause time share of that query:")
    for clause, share in sorted(
        db.profiler.breakdown().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {clause:<12} {share:6.1%}")

if __name__ == "__main__":
    main()
