"""A tour of the customized cost model (Section IV-A, Fig. 12/13).

Shows, for a single convolution layer:

* the paper's closed-form quantities (Eqs. 3-8): T_in, S_J, T_out,
  C_join, C_total;
* how the default DBMS estimator, costing the same generated SQL ahead
  of execution, over-estimates — and how the error compounds when layers
  stack;
* the normalization ratio r = seq_time / seq_scan_cost that converts
  cost units to seconds.

Run:  python examples/cost_model_tour.py
"""

from repro.core import CustomCostModel, Dl2SqlModel, compile_model
from repro.core.cost_model import (
    estimate_layers,
    estimate_script_cost,
)
from repro.engine import Database
from repro.engine.cost import DefaultCostModel
from repro.experiments.exp_cost_model import calibrate_ratio
from repro.experiments.reporting import print_table
from repro.tensor import Conv2d, Model

def stacked_conv_model(layers: int, size: int = 12, channels: int = 4) -> Model:
    convs = [Conv2d(1, channels, 3, padding=1, name="c0")]
    convs += [
        Conv2d(channels, channels, 3, padding=1, name=f"c{i}")
        for i in range(1, layers)
    ]
    return Model(f"stack{layers}", (1, size, size), convs)

def main() -> None:
    db = Database()
    ratio = calibrate_ratio(db)
    print(f"calibration: 1 cost unit ~= {ratio * 1e9:.1f} ns "
          "(r = seq_time / seq_scan_cost)\n")

    # Closed-form per-layer quantities (Eqs. 3-8).
    model = stacked_conv_model(1)
    compiled = compile_model(model)
    print_table(
        ["Layer", "k_in", "S_J (Eq.4)", "T_in", "T_out (Eq.5)",
         "C_join (Eq.6)", "C_total (Eq.7)"],
        [
            (e.layer_name, e.k_in, f"{e.join_selectivity:.4f}", e.t_in,
             e.t_out, e.c_join, e.c_total)
            for e in estimate_layers(compiled)
        ],
        title="Per-layer quantities of the customized cost model",
    )

    # Whole-script estimation: default vs customized, stacking layers.
    rows = []
    for depth in (1, 2, 3, 4):
        model = stacked_conv_model(depth)
        compiled = compile_model(model)
        runner = Dl2SqlModel(compiled)
        runner.load(db)
        default = estimate_script_cost(compiled, db, DefaultCostModel())
        custom = estimate_script_cost(compiled, db, CustomCostModel())
        rows.append(
            (
                depth,
                default.total_cost * ratio,
                custom.total_cost * ratio,
                f"{default.total_cost / custom.total_cost:.0f}x",
            )
        )
        runner.unload(db)
    print_table(
        ["Conv layers", "Default est.(s)", "Customized est.(s)",
         "Over-estimation"],
        rows,
        title=(
            "Default vs customized estimates — the error compounds "
            "exponentially with depth (Section IV)"
        ),
    )
    print("The default model lacks statistics for the intermediate "
          "feature-map tables, falls back to System-R's magic join "
          "selectivity, and the error multiplies layer over layer.  The "
          "customized model installs the compiler's exact cardinalities "
          "and stays calibrated.")

if __name__ == "__main__":
    main()
