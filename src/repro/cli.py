"""Command-line interface: experiments, a demo, and an interactive shell.

Usage::

    python -m repro list                     # show available experiments
    python -m repro run fig8 [fig14 ...]     # regenerate paper artifacts
    python -m repro demo                     # quickstart parity demo
    python -m repro shell [--scale N]        # SQL shell on the IoT dataset
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.errors import ReproError

#: Experiment registry: id -> (description, runner factory).
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "table4": ("Table IV: storage overheads", "exp_storage"),
    "fig8": ("Fig. 8: overall performance", "exp_overall"),
    "table5": ("Table V: selectivity sweep", "exp_selectivity"),
    "table6": ("Table VI: model-depth sweep", "exp_depth"),
    "fig9": ("Fig. 9: CNN block costs", "exp_blocks"),
    "fig10": ("Fig. 10: SQL clause costs", "exp_sql_profile"),
    "fig11": ("Fig. 11: pre-join strategies", "exp_prejoin"),
    "fig12": ("Fig. 12/13: cost model accuracy", "exp_cost_model"),
    "fig14": ("Fig. 14: hint effectiveness", "exp_hints"),
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Comparative Study of in-Database Inference "
            "Approaches' (ICDE 2022)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument("ids", nargs="+", choices=sorted(EXPERIMENTS))

    subparsers.add_parser("demo", help="compile a CNN to SQL and verify parity")

    shell_parser = subparsers.add_parser(
        "shell", help="interactive SQL shell over the generated IoT dataset"
    )
    shell_parser.add_argument("--scale", type=int, default=2)
    shell_parser.add_argument("--seed", type=int, default=42)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "shell":
        return _cmd_shell(args.scale, args.seed)
    return 2  # pragma: no cover - argparse guards this


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        description, module = EXPERIMENTS[key]
        print(f"{key:<{width}}  {description}  (repro.experiments.{module})")
    return 0


def _cmd_run(ids: Sequence[str]) -> int:
    import importlib

    for experiment_id in ids:
        _, module_name = EXPERIMENTS[experiment_id]
        module = importlib.import_module(f"repro.experiments.{module_name}")
        print(f"== {experiment_id} ==")
        module.main()
    return 0


def _cmd_demo() -> int:
    import numpy as np

    from repro.core import Dl2SqlModel, PreJoin, compile_model
    from repro.engine import Database
    from repro.tensor import build_student_cnn

    model = build_student_cnn(input_shape=(1, 12, 12), num_classes=4)
    compiled = compile_model(model, prejoin=PreJoin.FOLD)
    db = Database()
    runner = Dl2SqlModel(compiled)
    runner.load(db)
    image = np.random.default_rng(0).normal(size=(1, 12, 12))
    result = runner.infer(db, image)
    expected = model.forward(image)
    ok = np.allclose(result.probabilities, expected, atol=1e-9)
    print(f"model: {model}")
    print(f"SQL statements: {len(compiled.steps)}, "
          f"tables: {len(compiled.static_tables)}")
    print(f"SQL inference  : {np.round(result.probabilities, 5)}")
    print(f"numpy forward  : {np.round(expected, 5)}")
    print(f"parity: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_shell(scale: int, seed: int) -> int:
    from repro.engine import Database
    from repro.experiments.reporting import print_table
    from repro.workload.dataset import DatasetConfig, generate_dataset

    dataset = generate_dataset(DatasetConfig(scale=scale, seed=seed))
    db = Database()
    dataset.install(db)
    print(
        "IoT dataset loaded:",
        {name: t.num_rows for name, t in dataset.tables.items()},
    )
    print("Enter SQL (exit/quit to leave, \\d to list tables).")
    return run_shell(db, input_fn=input, output_fn=print)


def run_shell(
    db,
    input_fn: Callable[[str], str],
    output_fn: Callable[[str], None],
    max_rows: int = 40,
) -> int:
    """The shell loop, injectable for tests."""
    while True:
        try:
            line = input_fn("sql> ").strip()
        except (EOFError, KeyboardInterrupt):
            output_fn("")
            return 0
        if not line:
            continue
        if line.lower() in ("exit", "quit", "\\q"):
            return 0
        if line == "\\d":
            output_fn("tables: " + ", ".join(db.catalog.table_names()))
            output_fn("views : " + ", ".join(db.catalog.view_names()))
            continue
        try:
            result = db.execute(line.rstrip(";"))
        except ReproError as exc:
            output_fn(f"error: {exc}")
            continue
        if result.has_rows:
            rows = result.rows()
            shown = rows[:max_rows]
            from repro.experiments.reporting import format_table

            output_fn(format_table(result.column_names, shown))
            if len(rows) > max_rows:
                output_fn(f"... ({len(rows) - max_rows} more rows)")
        else:
            output_fn(result.message or f"ok ({result.affected_rows} rows)")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
