"""Command-line interface: experiments, a demo, and an interactive shell.

Usage::

    python -m repro list                     # show available experiments
    python -m repro run fig8 [fig14 ...]     # regenerate paper artifacts
    python -m repro demo                     # quickstart parity demo
    python -m repro shell [--scale N]        # SQL shell on the IoT dataset
    python -m repro trace [--strategy S]     # span tree of one traced query
    python -m repro stats [--format F]       # metrics after a sample workload
    python -m repro lint QUERY_OR_FILE ...   # static analysis, no execution
    python -m repro chaos [--quick]          # seeded fault-injection report
    python -m repro serve [--port P]         # line-JSON SQL server
    python -m repro loadgen [--quick]        # serving-layer load benchmark
    python -m repro tpch [--scale-factor F]  # TPC-H suite under a budget

``-v``/``-vv`` raises log verbosity (INFO/DEBUG) for any subcommand.

Exit codes are uniform across subcommands: 0 on success, 1 on runtime
failures (and on lint warnings under ``--strict``), 2 on parse or
semantic errors in the input SQL.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.errors import ReproError, SemanticError, SqlError
from repro.obs.log import setup_logging

#: Experiment registry: id -> (description, runner factory).
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "table4": ("Table IV: storage overheads", "exp_storage"),
    "fig8": ("Fig. 8: overall performance", "exp_overall"),
    "table5": ("Table V: selectivity sweep", "exp_selectivity"),
    "table6": ("Table VI: model-depth sweep", "exp_depth"),
    "fig9": ("Fig. 9: CNN block costs", "exp_blocks"),
    "fig10": ("Fig. 10: SQL clause costs", "exp_sql_profile"),
    "fig11": ("Fig. 11: pre-join strategies", "exp_prejoin"),
    "fig12": ("Fig. 12/13: cost model accuracy", "exp_cost_model"),
    "fig14": ("Fig. 14: hint effectiveness", "exp_hints"),
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Comparative Study of in-Database Inference "
            "Approaches' (ICDE 2022)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v for INFO, -vv for DEBUG logging",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument("ids", nargs="+", choices=sorted(EXPERIMENTS))

    subparsers.add_parser("demo", help="compile a CNN to SQL and verify parity")

    shell_parser = subparsers.add_parser(
        "shell", help="interactive SQL shell over the generated IoT dataset"
    )
    shell_parser.add_argument("--scale", type=int, default=2)
    shell_parser.add_argument("--seed", type=int, default=42)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run one query with tracing enabled and print its span tree",
    )
    trace_parser.add_argument(
        "--sql",
        default=None,
        help="SQL to trace (default: a representative join+aggregate)",
    )
    trace_parser.add_argument(
        "--strategy",
        choices=("sql", "independent", "loose", "tight", "tight-op"),
        default="sql",
        help=(
            "'sql' traces a plain query; the other values run one "
            "collaborative query under that strategy"
        ),
    )
    trace_parser.add_argument(
        "--type",
        dest="query_type",
        type=int,
        choices=(1, 2, 3, 4),
        default=3,
        help="collaborative query type (Table I) for strategy traces",
    )
    trace_parser.add_argument("--selectivity", type=float, default=0.2)
    trace_parser.add_argument("--scale", type=int, default=1)
    trace_parser.add_argument("--seed", type=int, default=42)

    stats_parser = subparsers.add_parser(
        "stats",
        help="run a sample workload and dump the metrics registry",
    )
    stats_parser.add_argument(
        "--format", choices=("json", "prometheus"), default="json"
    )
    stats_parser.add_argument("--scale", type=int, default=1)
    stats_parser.add_argument("--seed", type=int, default=42)
    stats_parser.add_argument(
        "--udf-workers",
        type=int,
        default=1,
        help="threads for batch-UDF morsel dispatch (default 1 = inline)",
    )
    stats_parser.add_argument(
        "--udf-cache-mb",
        type=int,
        default=16,
        help=(
            "inference-cache budget in MiB for the sample workload "
            "(0 disables the cache)"
        ),
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically check SQL (text, .sql, or .py files) without executing",
    )
    lint_parser.add_argument(
        "sources",
        nargs="+",
        help=(
            "SQL text, a .sql file (';'-separated statements), or a .py "
            "file (SQL-looking string literals are extracted)"
        ),
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any warning is reported",
    )

    chaos_parser = subparsers.add_parser(
        "chaos",
        help=(
            "run the sample workload under seeded fault plans and report "
            "survived/failed/hung"
        ),
    )
    chaos_parser.add_argument(
        "--quick",
        action="store_true",
        help="first three plans, one repetition (the CI smoke mode)",
    )
    chaos_parser.add_argument(
        "--plan",
        default=None,
        help=(
            "run one fault-plan string (e.g. "
            "'seed=7; udf.batch_call:transient@0.5#3') instead of the "
            "built-in set"
        ),
    )
    chaos_parser.add_argument("--scale", type=int, default=1)
    chaos_parser.add_argument("--seed", type=int, default=42)
    chaos_parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-query deadline in seconds (default 5)",
    )
    chaos_parser.add_argument(
        "--sessions",
        type=int,
        default=1,
        help=(
            "run the workload through N concurrent server sessions "
            "instead of one embedded database (default 1)"
        ),
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the IoT dataset over a line-JSON TCP socket",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7878)
    serve_parser.add_argument("--scale", type=int, default=1)
    serve_parser.add_argument("--seed", type=int, default=42)
    serve_parser.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="query slots before admission queues (default 8)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="queued admissions before shedding R006 (default 16)",
    )

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help=(
            "run the steady + overload serving scenarios and write "
            "BENCH_serve.json"
        ),
    )
    loadgen_parser.add_argument(
        "--quick",
        action="store_true",
        help="trim to 4 sessions x 12 requests (the CI smoke mode)",
    )
    loadgen_parser.add_argument("--sessions", type=int, default=8)
    loadgen_parser.add_argument("--requests", type=int, default=30)
    loadgen_parser.add_argument("--scale", type=int, default=1)
    loadgen_parser.add_argument("--seed", type=int, default=1234)
    loadgen_parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-query deadline in seconds (default 10)",
    )
    loadgen_parser.add_argument(
        "--fault-plan",
        default=None,
        help=(
            "fault-plan string routed through every session "
            "(e.g. 'seed=7; udf.batch_call:transient@0.5#3')"
        ),
    )
    loadgen_parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="report sidecar path (default BENCH_serve.json)",
    )

    tpch_parser = subparsers.add_parser(
        "tpch",
        help=(
            "generate the TPC-H workload and run the query suite under a "
            "memory budget"
        ),
    )
    tpch_parser.add_argument(
        "--scale-factor",
        type=float,
        default=0.01,
        help="TPC-H scale factor in (0, 1] (default 0.01)",
    )
    tpch_parser.add_argument("--seed", type=int, default=7)
    tpch_parser.add_argument(
        "--memory-mb",
        type=float,
        default=None,
        help=(
            "per-query memory budget in MiB; joins too large for a "
            "quarter of it spill to disk (default: unbudgeted)"
        ),
    )
    tpch_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the per-query report as JSON instead of a table",
    )

    args = parser.parse_args(argv)
    setup_logging(args.verbose)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.ids)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "shell":
        return _cmd_shell(args.scale, args.seed)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "tpch":
        return _cmd_tpch(args)
    return 2  # pragma: no cover - argparse guards this


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        description, module = EXPERIMENTS[key]
        print(f"{key:<{width}}  {description}  (repro.experiments.{module})")
    return 0


def _cmd_run(ids: Sequence[str]) -> int:
    import importlib

    for experiment_id in ids:
        _, module_name = EXPERIMENTS[experiment_id]
        module = importlib.import_module(f"repro.experiments.{module_name}")
        print(f"== {experiment_id} ==")
        module.main()
    return 0


def _cmd_demo() -> int:
    import numpy as np

    from repro.core import Dl2SqlModel, PreJoin, compile_model
    from repro.engine import Database
    from repro.tensor import build_student_cnn

    model = build_student_cnn(input_shape=(1, 12, 12), num_classes=4)
    compiled = compile_model(model, prejoin=PreJoin.FOLD)
    db = Database()
    runner = Dl2SqlModel(compiled)
    runner.load(db)
    image = np.random.default_rng(0).normal(size=(1, 12, 12))
    result = runner.infer(db, image)
    expected = model.forward(image)
    ok = np.allclose(result.probabilities, expected, atol=1e-9)
    print(f"model: {model}")
    print(f"SQL statements: {len(compiled.steps)}, "
          f"tables: {len(compiled.static_tables)}")
    print(f"SQL inference  : {np.round(result.probabilities, 5)}")
    print(f"numpy forward  : {np.round(expected, 5)}")
    print(f"parity: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


#: Default query for ``repro trace --strategy sql``: joins two tables and
#: aggregates, so the span tree shows scan/join/groupby operators.
_TRACE_SQL = (
    "SELECT f.pattern, count(*) AS n FROM video v "
    "INNER JOIN fabric f ON v.transID = f.transID "
    "GROUP BY f.pattern ORDER BY f.pattern"
)


def _cmd_trace(args) -> int:
    from repro.engine import Database
    from repro.obs.trace import Tracer, format_span_tree
    from repro.workload.dataset import DatasetConfig, generate_dataset

    tracer = Tracer(enabled=True)
    dataset = generate_dataset(
        DatasetConfig(scale=args.scale, seed=args.seed)
    )
    db = Database(tracer=tracer)
    dataset.install(db)

    try:
        if args.strategy == "sql":
            db.execute(args.sql or _TRACE_SQL)
        else:
            _run_traced_strategy(db, dataset, args)
    except (SqlError, SemanticError) as exc:
        # Bad input SQL is exit 2 everywhere (shared with `repro lint`);
        # runtime failures below stay exit 1.
        code = getattr(exc, "code", None)
        prefix = f"error: {code}: " if code else "error: "
        print(f"{prefix}{exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    trace = tracer.last_trace()
    if trace is None:
        print("no trace recorded", file=sys.stderr)
        return 1
    print(format_span_tree(trace))
    return 0


def _run_traced_strategy(db, dataset, args) -> None:
    from repro.strategies.base import QueryType
    from repro.strategies.independent import IndependentStrategy
    from repro.strategies.loose import LooseStrategy
    from repro.strategies.tight import TightStrategy
    from repro.workload.models_repo import build_repository
    from repro.workload.queries import QueryGenerator

    strategy = {
        "independent": IndependentStrategy,
        "loose": LooseStrategy,
        "tight": TightStrategy,
        "tight-op": lambda: TightStrategy(optimized=True),
    }[args.strategy]()
    repository = build_repository(
        dataset, num_tasks=4, teacher_depth=3, calibration_samples=8
    )
    query = QueryGenerator(dataset).make_query(
        QueryType(args.query_type), args.selectivity
    )
    tasks = {}
    for role in query.udf_roles:
        task = repository.pick(role)
        strategy.bind_task(db, task)
        tasks[role] = task
    # Binding (model deserialization, DL2SQL warm-up) produces its own
    # traces; drop them so the printed tree is the query itself.
    db.tracer.reset()
    strategy.run(db, query, tasks)


def _cmd_stats(args) -> int:
    import numpy as np

    from repro.engine import BatchUdf, Database
    from repro.obs.metrics import get_registry
    from repro.storage.schema import DataType
    from repro.workload.dataset import DatasetConfig, generate_dataset

    registry = get_registry()
    registry.reset()
    dataset = generate_dataset(
        DatasetConfig(scale=args.scale, seed=args.seed)
    )
    db = Database(
        metrics=registry,
        udf_cache_bytes=args.udf_cache_mb * (1 << 20),
        udf_workers=args.udf_workers,
    )
    dataset.install(db)
    # A cheap stand-in nUDF: repeats of the same query surface the
    # inference-cache counters (udf_cache_hits / udf_cache_misses) next
    # to the plan-cache ones.
    db.register_udf(
        BatchUdf(
            name="amount_bucket",
            fn=lambda amounts: np.floor(np.asarray(amounts) / 1000.0),
            return_dtype=DataType.FLOAT64,
        )
    )
    samples = (
        _TRACE_SQL,
        "SELECT count(*) FROM video",
        "SELECT count(*) FROM orders WHERE amount > 5000",
        "SELECT d.deviceID, count(*) FROM device d "
        "INNER JOIN fabric f ON f.transID = d.transID GROUP BY d.deviceID",
        "SELECT amount_bucket(amount), count(*) FROM orders "
        "GROUP BY amount_bucket(amount)",
    )
    try:
        for sql in samples:
            for _ in range(3):  # repeats exercise the cache counters
                db.execute(sql)
    finally:
        db.close()
    _stats_fallback_demo(registry, dataset)
    if args.format == "prometheus":
        print(db.metrics.to_prometheus(), end="")
    else:
        print(db.metrics.to_json())
    return 0


def _stats_fallback_demo(registry, dataset) -> None:
    """One degraded collaborative query, so the resilience counters
    (``strategy_fallbacks_total``, breaker metrics) show up in the dump.

    Runs the loose strategy against a permanently failing nUDF (injected
    at ``udf.batch_call``); the fallback chain degrades to independent
    processing, which evaluates the model outside the database and
    therefore survives.
    """
    from repro.engine import Database
    from repro.strategies import FallbackChain, IndependentStrategy, LooseStrategy
    from repro.strategies.base import QueryType
    from repro.workload.models_repo import build_task
    from repro.workload.queries import QueryGenerator

    db = Database(metrics=registry, fault_plan="udf.batch_call:permanent")
    dataset.install(db)
    task = build_task(
        dataset, "detect", teacher_depth=3, calibration_samples=4
    )
    chain = FallbackChain([LooseStrategy(), IndependentStrategy()])
    chain.bind_task(db, task)
    query = QueryGenerator(dataset).make_query(QueryType(3), 0.2)
    try:
        chain.run(db, query, {"detect": task})
    finally:
        db.close()


#: Statement prefixes the .py extractor treats as SQL worth linting.
_SQL_PREFIXES = ("SELECT", "EXPLAIN", "CREATE", "INSERT", "UPDATE", "DROP")


def _split_sql_statements(text: str) -> list[str]:
    """Split a .sql file on top-level ``;`` using real token positions
    (a naive string split would break on ``';'`` inside literals)."""
    from repro.sql import tokenize
    from repro.sql.tokens import TokenType

    pieces: list[str] = []
    start = 0
    for token in tokenize(text):
        at_boundary = (
            token.type is TokenType.PUNCTUATION and token.value == ";"
        ) or token.type is TokenType.EOF
        if not at_boundary:
            continue
        piece = text[start : token.position].strip()
        if piece:
            pieces.append(piece)
        start = token.position + 1
    return pieces


def _extract_sql_from_python(path: str) -> list[str]:
    """String literals in ``path`` that look like SQL statements."""
    import ast as python_ast

    with open(path, encoding="utf-8") as handle:
        tree = python_ast.parse(handle.read(), filename=path)
    found: list[str] = []
    for node in python_ast.walk(tree):
        if not isinstance(node, python_ast.Constant):
            continue
        if not isinstance(node.value, str):
            continue
        text = node.value.strip()
        if text.split(" ", 1)[0].upper() in _SQL_PREFIXES:
            found.append(text)
    return found


def _cmd_lint(args) -> int:
    import json
    import os

    from repro.analysis import analyze_query
    from repro.errors import SqlError as _SqlError

    documents = []
    had_error = False
    had_warning = False
    for source in args.sources:
        lenient = False  # .py-extracted strings may be SQL fragments
        if source.endswith(".py") and os.path.exists(source):
            try:
                statements = _extract_sql_from_python(source)
            except SyntaxError as exc:
                print(f"{source}: cannot parse python: {exc}", file=sys.stderr)
                had_error = True
                continue
            lenient = True
        elif source.endswith(".sql") and os.path.exists(source):
            with open(source, encoding="utf-8") as handle:
                text = handle.read()
            try:
                statements = _split_sql_statements(text)
            except _SqlError as exc:
                documents.append(
                    {
                        "source": source,
                        "sql": text,
                        "findings": [_parse_error_entry(exc)],
                    }
                )
                had_error = True
                continue
        else:
            statements = [source]
            source = "<sql>"
        for sql in statements:
            try:
                report = analyze_query(sql)
            except _SqlError as exc:
                if lenient:
                    continue  # not actually SQL; .py extraction guessed wrong
                documents.append(
                    {
                        "source": source,
                        "sql": sql,
                        "findings": [_parse_error_entry(exc)],
                    }
                )
                had_error = True
                continue
            had_error = had_error or bool(report.errors)
            had_warning = had_warning or bool(report.warnings)
            documents.append(
                {
                    "source": source,
                    "sql": sql,
                    "findings": [f.to_dict(sql) for f in report.findings],
                    "facts": [
                        {"column": name, **fact.to_dict()}
                        for name, fact in report.column_facts
                    ],
                }
            )

    if args.format == "json":
        print(json.dumps({"documents": documents}, indent=2))
    else:
        _print_lint_text(documents)

    if had_error:
        return 2
    if had_warning and args.strict:
        return 1
    return 0


def _parse_error_entry(exc) -> dict:
    return {"code": "E000", "severity": "error", "message": str(exc)}


def _print_lint_text(documents) -> None:
    total = 0
    for document in documents:
        findings = document["findings"]
        if not findings:
            continue
        print(f"-- {document['source']}: {document['sql']}")
        for finding in findings:
            total += 1
            location = ""
            if "line" in finding:
                location = f"{finding['line']}:{finding['column']}: "
            print(
                f"  {location}{finding['severity']} "
                f"{finding['code']}: {finding['message']}"
            )
    checked = len(documents)
    print(f"{checked} statement(s) checked, {total} finding(s)")


def _cmd_chaos(args) -> int:
    from repro.faults.chaos import run_chaos
    from repro.faults.injector import FaultPlan, FaultPlanError

    plans = None
    if args.plan is not None:
        try:
            plans = (FaultPlan.parse(args.plan),)
        except FaultPlanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = run_chaos(
        plans,
        scale=args.scale,
        seed=args.seed,
        timeout_s=args.timeout,
        quick=args.quick,
        sessions=args.sessions,
    )
    print(report.to_text())
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    from repro.serve.loadgen import _install_workload
    from repro.serve.net import serve_forever
    from repro.serve.server import Server, ServerConfig

    server = Server(
        ServerConfig(
            max_concurrent=args.max_concurrent,
            max_queue=args.max_queue,
        )
    )
    _install_workload(server, args.scale, args.seed)
    serve_forever(server, host=args.host, port=args.port)
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.serve.loadgen import LoadgenConfig, run_loadgen, write_sidecar

    report = run_loadgen(
        LoadgenConfig(
            sessions=args.sessions,
            requests_per_session=args.requests,
            seed=args.seed,
            scale=args.scale,
            timeout_s=args.timeout,
            fault_plan=args.fault_plan,
            quick=args.quick,
        )
    )
    path = write_sidecar(report, args.output)
    print(json.dumps(report["scenarios"], indent=2, sort_keys=True))
    overload = report["scenarios"]["overload"]
    print(
        f"wrote {path}: steady p50 "
        f"{report['scenarios']['steady']['p50_ms']}ms, overload shed "
        f"{overload['shed']}/{overload['requests']} "
        f"({overload['untyped_errors']} untyped)"
    )
    # The overload scenario is the point: a run that never shed and never
    # surfaced an untyped error proves nothing, so fail loudly in CI.
    return 1 if overload["untyped_errors"] else 0


def _cmd_tpch(args) -> int:
    import json
    import time

    from repro.engine import Database
    from repro.obs.metrics import MetricsRegistry
    from repro.workload.tpch import (
        SUITE_COUNTERS,
        TpchConfig,
        generate_tpch,
        run_suite,
    )

    started = time.perf_counter()
    data = generate_tpch(TpchConfig(scale_factor=args.scale_factor,
                                    seed=args.seed))
    generated = time.perf_counter() - started
    budget = (
        int(args.memory_mb * 1024 * 1024)
        if args.memory_mb is not None else None
    )
    db = Database(metrics=MetricsRegistry(), query_memory_bytes=budget)
    data.install(db)
    report = run_suite(db)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    sizes = {name: t.num_rows for name, t in data.tables.items()}
    print(
        f"generated SF {args.scale_factor} in {generated:.2f}s "
        f"(lineitem: {sizes['lineitem']:,} rows, "
        f"{data.tables['lineitem'].nbytes() / 1e6:.1f} MB resident)"
    )
    if budget is not None:
        print(f"query memory budget: {budget:,} bytes")
    header = ("query", "seconds", "rows", "scanned", "pruned",
              "spill parts", "spill bytes")
    rows = [header]
    for name, entry in report.items():
        rows.append((
            name,
            f"{entry['seconds']:.3f}",
            f"{int(entry['rows'])}",
            f"{int(entry['partitions_scanned_total'])}",
            f"{int(entry['partitions_pruned_total'])}",
            f"{int(entry['join_spill_partitions_total'])}",
            f"{int(entry['join_spill_bytes_total'])}",
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for row in rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    totals = {
        counter: sum(entry[counter] for entry in report.values())
        for counter in SUITE_COUNTERS
    }
    print(
        f"total: {totals['partitions_pruned_total']:.0f} partitions pruned, "
        f"{totals['join_spill_bytes_total']:.0f} bytes spilled"
    )
    return 0


def _cmd_shell(scale: int, seed: int) -> int:
    from repro.engine import Database
    from repro.experiments.reporting import print_table
    from repro.workload.dataset import DatasetConfig, generate_dataset

    dataset = generate_dataset(DatasetConfig(scale=scale, seed=seed))
    db = Database()
    dataset.install(db)
    print(
        "IoT dataset loaded:",
        {name: t.num_rows for name, t in dataset.tables.items()},
    )
    print("Enter SQL (exit/quit to leave, \\d to list tables).")
    return run_shell(db, input_fn=input, output_fn=print)


def run_shell(
    db,
    input_fn: Callable[[str], str],
    output_fn: Callable[[str], None],
    max_rows: int = 40,
) -> int:
    """The shell loop, injectable for tests."""
    while True:
        try:
            line = input_fn("sql> ").strip()
        except (EOFError, KeyboardInterrupt):
            output_fn("")
            return 0
        if not line:
            continue
        if line.lower() in ("exit", "quit", "\\q"):
            return 0
        if line == "\\d":
            output_fn("tables: " + ", ".join(db.catalog.table_names()))
            output_fn("views : " + ", ".join(db.catalog.view_names()))
            continue
        try:
            result = db.execute(line.rstrip(";"))
        except ReproError as exc:
            output_fn(f"error: {exc}")
            continue
        if result.has_rows:
            rows = result.rows()
            if result.column_names == ["plan"]:
                # EXPLAIN output: the indentation is the tree structure,
                # so bypass the right-justifying table renderer.
                for (line,) in rows:
                    output_fn(line)
                continue
            shown = rows[:max_rows]
            from repro.experiments.reporting import format_table

            output_fn(format_table(result.column_names, shown))
            if len(rows) > max_rows:
                output_fn(f"... ({len(rows) - max_rows} more rows)")
        else:
            output_fn(result.message or f"ok ({result.affected_rows} rows)")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
