"""Plan-invariant validator.

A debug-mode pass that re-checks every optimizer rewrite against the
planner's original tree.  The optimizer is allowed to *move* work
(predicate pushdown, join reordering, nUDF placement) but never to
*change* what the query computes, so three invariants must hold between
the pre- and post-optimization plans:

1. **Conjunct preservation** — the multiset of predicate conjuncts is
   identical.  Join key pairs count as equality conjuncts (pushdown turns
   ``a.x = b.y`` filters into hash-join keys and vice versa), with the
   two sides order-normalized because join construction may swap them.
2. **Output schema equality** — the root exposes the same column names.
3. **Shape preservation** — Sort/Limit/Distinct/Aggregate parameters are
   untouched (the optimizer only rewrites the relational core).

Plus a structural check on the rewritten tree itself: every predicate's
qualified column references must be in scope under the operator that
evaluates them (a filter pushed below the scan that produces its column
would pass the three diffs above but still be wrong).

``validate_rewrite`` returns human-readable violation strings;
:class:`~repro.engine.database.Database` raises
:class:`~repro.errors.PlanValidationError` when the list is non-empty.
Enabled by default under pytest, or explicitly via
``Database(validate_plans=True)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.engine.logical import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    LogicalPlan,
    Sort,
    walk_plan,
)
from repro.engine.optimizer import _output_names
from repro.sql.ast_nodes import (
    BinaryOp,
    Expression,
    referenced_columns,
    split_conjuncts,
)


def validate_fold(
    before: LogicalPlan,
    after: LogicalPlan,
    catalog: Any,
    statistics: Any,
    report: Any = None,
) -> list[str]:
    """Re-check the dataflow folding pass (planner tree -> folded tree).

    Folding deliberately breaks the ``validate_rewrite`` invariants — it
    deletes tautological conjuncts, rewrites subexpressions to literals,
    and prunes contradicted subtrees — so it gets its own validator: the
    fold is re-derived independently from the same inputs (the pass is
    deterministic) and the applied tree must match the re-derivation
    node for node.  On top of that, the non-relational shape
    (Sort/Limit/Distinct/Aggregate) and the root output schema must be
    untouched, exactly as for any other rewrite.
    """
    from repro.engine.optimizer import fold_plan

    violations: list[str] = []
    expected, expected_report = fold_plan(before, catalog, statistics)
    expected_signature = _plan_signature(expected)
    actual_signature = _plan_signature(after)
    if expected_signature != actual_signature:
        violations.append(
            "folded plan does not match its re-derivation: "
            f"expected {expected_signature!r}, got {actual_signature!r}"
        )
    if report is not None:
        expected_actions = Counter(
            (a.kind, a.detail) for a in expected_report.actions
        )
        actual_actions = Counter((a.kind, a.detail) for a in report.actions)
        if expected_actions != actual_actions:
            gone = list((expected_actions - actual_actions).elements())
            new = list((actual_actions - expected_actions).elements())
            violations.append(
                "fold bookkeeping mismatch: "
                f"missing {gone or 'none'}, unexpected {new or 'none'}"
            )
    violations.extend(_check_output_names(before, after, catalog))
    violations.extend(_check_shape(before, after))
    violations.extend(_check_predicate_scopes(after, catalog))
    return violations


def _plan_signature(plan: LogicalPlan) -> str:
    inner = ",".join(_plan_signature(child) for child in plan.children())
    return f"{plan.describe()}({inner})"


def validate_rewrite(
    before: LogicalPlan, after: LogicalPlan, catalog: Any
) -> list[str]:
    """Check optimizer invariants between ``before`` and ``after``.

    Returns a list of violation descriptions; empty means the rewrite is
    semantics-preserving as far as the validator can tell.
    """
    violations: list[str] = []
    violations.extend(_check_conjuncts(before, after))
    violations.extend(_check_output_names(before, after, catalog))
    violations.extend(_check_shape(before, after))
    violations.extend(_check_predicate_scopes(after, catalog))
    return violations


# ----------------------------------------------------------------------
# Invariant 1: no conjunct appears or disappears
# ----------------------------------------------------------------------
def _canonical_conjunct(conjunct: Expression) -> str:
    """Order-normalized text for one conjunct.

    Equality conjuncts compare their operands as an unordered pair: the
    optimizer's join construction freely swaps ``a.x = b.y`` into
    ``b.y = a.x`` when picking build/probe sides.
    """
    if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
        left, right = sorted([conjunct.left.to_sql(), conjunct.right.to_sql()])
        return f"{left} = {right}"
    return conjunct.to_sql()


def _collect_conjuncts(plan: LogicalPlan) -> "Counter[str]":
    conjuncts: Counter[str] = Counter()
    for node in walk_plan(plan):
        if isinstance(node, Filter) and node.predicate is not None:
            for conjunct in split_conjuncts(node.predicate):
                conjuncts[_canonical_conjunct(conjunct)] += 1
        elif isinstance(node, HashJoin):
            for left_key, right_key in zip(node.left_keys, node.right_keys):
                pair = sorted([left_key.to_sql(), right_key.to_sql()])
                conjuncts[f"{pair[0]} = {pair[1]}"] += 1
            if node.residual is not None:
                for conjunct in split_conjuncts(node.residual):
                    conjuncts[_canonical_conjunct(conjunct)] += 1
    return conjuncts


def _check_conjuncts(
    before: LogicalPlan, after: LogicalPlan
) -> list[str]:
    expected = _collect_conjuncts(before)
    actual = _collect_conjuncts(after)
    if expected == actual:
        return []
    violations: list[str] = []
    for text, count in (expected - actual).items():
        violations.append(
            f"optimizer dropped predicate conjunct {text!r} (x{count})"
        )
    for text, count in (actual - expected).items():
        violations.append(
            f"optimizer invented predicate conjunct {text!r} (x{count})"
        )
    return violations


# ----------------------------------------------------------------------
# Invariant 2: same output columns at the root
# ----------------------------------------------------------------------
def _check_output_names(
    before: LogicalPlan, after: LogicalPlan, catalog: Any
) -> list[str]:
    _, expected = _output_names(before, catalog)
    _, actual = _output_names(after, catalog)
    if expected == actual:
        return []
    missing = expected - actual
    extra = actual - expected
    parts = []
    if missing:
        parts.append(f"lost output columns {sorted(missing)}")
    if extra:
        parts.append(f"gained output columns {sorted(extra)}")
    return ["optimizer changed the output schema: " + "; ".join(parts)]


# ----------------------------------------------------------------------
# Invariant 3: Sort/Limit/Distinct/Aggregate untouched
# ----------------------------------------------------------------------
def _shape_signature(plan: LogicalPlan) -> "Counter[str]":
    shape: Counter[str] = Counter()
    for node in walk_plan(plan):
        if isinstance(node, Sort):
            order = ", ".join(o.to_sql() for o in node.order_by)
            shape[f"Sort[{order}]"] += 1
        elif isinstance(node, Limit):
            shape[f"Limit[{node.count}+{node.offset}]"] += 1
        elif isinstance(node, Distinct):
            shape["Distinct"] += 1
        elif isinstance(node, Aggregate):
            keys = ", ".join(e.to_sql() for e in node.group_by)
            aggs = ", ".join(
                f"{s.slot}={s.call.to_sql()}" for s in node.aggregates
            )
            shape[f"Aggregate[{keys}][{aggs}]"] += 1
    return shape


def _check_shape(before: LogicalPlan, after: LogicalPlan) -> list[str]:
    expected = _shape_signature(before)
    actual = _shape_signature(after)
    if expected == actual:
        return []
    gone = list((expected - actual).elements())
    new = list((actual - expected).elements())
    return [
        "optimizer altered non-relational operators: "
        f"removed {gone or 'none'}, added {new or 'none'}"
    ]


# ----------------------------------------------------------------------
# Structural check: pushed predicates stay in scope
# ----------------------------------------------------------------------
def _check_predicate_scopes(after: LogicalPlan, catalog: Any) -> list[str]:
    violations: list[str] = []
    for node in walk_plan(after):
        if not isinstance(node, Filter) or node.predicate is None:
            continue
        if node.child is None:
            continue
        qualifiers, names = _output_names(node.child, catalog)
        if not qualifiers:
            # Above a Project/Aggregate the frame re-keys its columns
            # (aliases, aggregate slots); name-level checks there would
            # need planner-internal knowledge, so only the relational
            # core below is validated.
            continue
        for ref in referenced_columns(node.predicate):
            if ref.table is not None and ref.table.lower() not in qualifiers:
                violations.append(
                    f"filter {node.predicate.to_sql()!r} was placed where "
                    f"qualifier {ref.table!r} is not in scope "
                    f"(available: {sorted(qualifiers)})"
                )
            elif (
                ref.table is None
                and names
                and ref.name.lower() not in names
            ):
                violations.append(
                    f"filter {node.predicate.to_sql()!r} was placed where "
                    f"column {ref.name!r} is not in scope"
                )
    return violations
