"""Static analysis for the collaborative-query engine.

Three cooperating parts, all running *before* (or, for the validator,
*around*) the planner:

* :mod:`repro.analysis.semantic` — binder + type checker.  Wired into
  ``Database.execute()`` so malformed queries fail fast with
  :class:`~repro.errors.SemanticError` instead of deep inside execution.
* :mod:`repro.analysis.invariants` — plan-invariant validator re-checking
  every optimizer rewrite (on by default under pytest).
* :mod:`repro.analysis.lint` — advisory warnings (``repro lint``).

:func:`analyze_query` is the catalog-optional one-call API the CLI and CI
use: parse, bind leniently (or strictly when a catalog is supplied), and
lint, collecting everything into one report instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis import dataflow
from repro.analysis.invariants import validate_rewrite
from repro.analysis.lint import LINT_RULES, LintFinding, lint_statement
from repro.analysis.semantic import (
    ColumnType,
    QuerySchema,
    SemanticAnalyzer,
)
from repro.errors import SemanticError
from repro.sql import parse_statement
from repro.sql.ast_nodes import (
    CreateTable,
    CreateView,
    ExplainStatement,
    InsertStatement,
    SelectStatement,
    Statement,
)


@dataclass
class AnalysisReport:
    """Everything static analysis has to say about one statement."""

    sql: str
    schema: Optional[QuerySchema] = None
    findings: list[LintFinding] = field(default_factory=list)
    #: ``(output column name, dataflow fact)`` per select item — the
    #: derived const/range/nullability facts ``repro lint --format
    #: json`` surfaces next to the findings.
    column_facts: list[tuple[str, dataflow.Fact]] = field(
        default_factory=list
    )

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors


def _select_of(statement: Statement) -> Optional[SelectStatement]:
    """The SELECT inside ``statement``, if any (views, CTAS, EXPLAIN...)."""
    if isinstance(statement, SelectStatement):
        return statement
    if isinstance(statement, ExplainStatement):
        return statement.statement
    if isinstance(statement, CreateView):
        return statement.statement
    if isinstance(statement, CreateTable):
        return statement.as_select
    if isinstance(statement, InsertStatement):
        return statement.from_select
    return None


def analyze_query(
    sql: str,
    *,
    catalog: Any = None,
    functions: Any = None,
    udfs: Any = None,
) -> AnalysisReport:
    """Parse, semantically check, and lint one SQL statement.

    Lexer/parse errors propagate (the SQL is not analyzable at all);
    semantic errors are captured as error-severity findings so one report
    can carry both the rejection and any lint warnings.  Without a
    catalog the binder runs leniently: unknown tables and functions type
    as unknown rather than erroring, which is what ``repro lint`` wants
    when pointed at SQL files outside a live database.
    """
    statement = parse_statement(sql)
    select = _select_of(statement)
    report = AnalysisReport(sql=sql)
    if select is None:
        return report

    analyzer = SemanticAnalyzer(
        catalog, functions, udfs, strict=catalog is not None
    )
    try:
        report.schema = analyzer.analyze(select)
    except SemanticError as error:
        report.findings.append(
            LintFinding(
                code=error.code,
                message=str(error),
                span=error.span,
                severity="error",
            )
        )
    report.findings.extend(
        lint_statement(
            select, sql, catalog=catalog, functions=functions, udfs=udfs
        )
    )
    try:
        statistics = None
        if catalog is not None:
            from repro.engine.statistics import StatisticsProvider

            statistics = StatisticsProvider(catalog)
        report.column_facts = dataflow.output_facts(
            select, catalog, statistics
        )
    except Exception:
        # Facts are advisory; a catalog stand-in the dataflow layer
        # cannot read must not turn analysis into an error.
        report.column_facts = []
    return report


__all__ = [
    "AnalysisReport",
    "ColumnType",
    "LINT_RULES",
    "LintFinding",
    "QuerySchema",
    "SemanticAnalyzer",
    "analyze_query",
    "lint_statement",
    "validate_rewrite",
]
