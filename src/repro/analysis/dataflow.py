"""Abstract-interpretation dataflow over SQL expression trees.

A bottom-up abstract interpreter computes, per expression node, a *fact
triple* over three lattices:

* **constant** — ``TOP`` (unknown) or a known Python value, where
  ``None`` is a known SQL NULL (⊥ never materializes: an infeasible
  conjunction is reported as infeasibility, not as a bottom fact);
* **interval** — a numeric ``[lo, hi]`` range with open/closed bounds,
  seeded from exact per-column min/max statistics
  (:mod:`repro.engine.statistics`);
* **nullability** — definitely-never / maybe / definitely-always NULL,
  extending the semantic analyzer's per-column inference with
  statistics-backed NULL counts.

Boolean-valued nodes additionally carry a Kleene *truth* fact: the set
of three-valued outcomes (TRUE / FALSE / UNKNOWN) the node can still
produce.  Transfer functions mirror the runtime semantics of
:mod:`repro.engine.expressions` exactly — Kleene AND/OR/NOT,
NULL-propagating comparisons and arithmetic, ``x / 0 -> NULL`` on the
scalar path, ``IS [NOT] NULL`` never returning NULL — so that folding a
subtree to a literal can never change query results.

Consumers:

* the linter (L007 contradictory predicate, L008 tautology, L009
  guaranteed division by zero, L010 INT64 overflow on fold);
* the optimizer's folding pass (:func:`repro.engine.optimizer.fold_plan`),
  via :func:`fold_conjuncts`;
* the fused-kernel mask-free fast path (non-nullability proofs);
* EXPLAIN / ``repro lint --format json`` per-output-column facts,
  via :func:`output_facts`.

Soundness notes.  Intervals describe the *non-NULL* values a node can
take; statistics-seeded facts are only valid for the table version they
were computed from, so every consulted ``(table, column)`` pair is
recorded on the :class:`Env` for plan-cache staleness checks.  Interval
bounds seeded from int64 columns are widened by one ulp beyond 2**53
where ``float`` cannot represent the exact value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DerivedTable,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    NamedTable,
    ScalarSubquery,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
    split_conjuncts,
)
from repro.sql.spans import set_span, span_of
from repro.errors import StorageError
from repro.storage.schema import DataType, parse_date

if TYPE_CHECKING:  # imported for annotations only (no runtime cycle)
    from repro.engine.statistics import StatisticsProvider, TableStats
    from repro.storage.catalog import Catalog

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

#: Aggregate function names; mirrored from the engine so the analysis
#: layer treats aggregate calls as opaque (their argument text is the
#: physical slot-matching key and must never be rewritten).
AGGREGATE_NAMES = frozenset(
    {
        "sum", "count", "avg", "min", "max", "stddevsamp", "stddevpop",
        "varsamp", "varpop", "countif", "sumif", "any", "grouparray",
    }
)

_COMPARISONS = frozenset({"=", "!=", "<", "<=", ">", ">="})
_ARITHMETIC = frozenset({"+", "-", "*", "/", "%"})
_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class _Top:
    """Singleton marker for "not a known constant"."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"


TOP = _Top()


class Nullability(Enum):
    NEVER = "never"
    MAYBE = "maybe"
    ALWAYS = "always"

    def join(self, other: "Nullability") -> "Nullability":
        if self is other:
            return self
        return Nullability.MAYBE


# ----------------------------------------------------------------------
# Interval lattice
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """Numeric range; ``None`` bounds mean unbounded, flags mean open."""

    lo: Optional[float] = None
    hi: Optional[float] = None
    lo_open: bool = False
    hi_open: bool = False

    @property
    def unbounded(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_empty(self) -> bool:
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    @property
    def is_point(self) -> bool:
        return (
            self.lo is not None
            and self.lo == self.hi
            and not self.lo_open
            and not self.hi_open
        )

    @property
    def bounded(self) -> bool:
        return (
            self.lo is not None
            and self.hi is not None
            and math.isfinite(self.lo)
            and math.isfinite(self.hi)
        )

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(value, value)

    def intersect(self, other: "Interval") -> "Interval":
        lo, lo_open = self.lo, self.lo_open
        if other.lo is not None and (lo is None or other.lo > lo):
            lo, lo_open = other.lo, other.lo_open
        elif other.lo is not None and other.lo == lo:
            lo_open = lo_open or other.lo_open
        hi, hi_open = self.hi, self.hi_open
        if other.hi is not None and (hi is None or other.hi < hi):
            hi, hi_open = other.hi, other.hi_open
        elif other.hi is not None and other.hi == hi:
            hi_open = hi_open or other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def hull(self, other: "Interval") -> "Interval":
        if self.lo is None or other.lo is None:
            lo, lo_open = None, False
        elif self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi is None or other.hi is None:
            hi, hi_open = None, False
        elif self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    # -- ordering queries (∀ quantified over both operand sets) --------
    def all_lt(self, other: "Interval") -> bool:
        """True when every value here is < every value of ``other``."""
        if self.hi is None or other.lo is None:
            return False
        if self.hi < other.lo:
            return True
        return self.hi == other.lo and (self.hi_open or other.lo_open)

    def all_le(self, other: "Interval") -> bool:
        if self.hi is None or other.lo is None:
            return False
        return self.hi <= other.lo

    def disjoint(self, other: "Interval") -> bool:
        return self.all_lt(other) or other.all_lt(self)

    def excludes_zero(self) -> bool:
        if self.lo is not None and (self.lo > 0 or (self.lo == 0 and self.lo_open)):
            return True
        if self.hi is not None and (self.hi < 0 or (self.hi == 0 and self.hi_open)):
            return True
        return False

    def is_zero_point(self) -> bool:
        return self.is_point and self.lo == 0

    # -- arithmetic ----------------------------------------------------
    def neg(self) -> "Interval":
        lo = -self.hi if self.hi is not None else None
        hi = -self.lo if self.lo is not None else None
        return Interval(lo, hi, self.hi_open, self.lo_open)

    def add(self, other: "Interval") -> "Interval":
        lo = (
            self.lo + other.lo
            if self.lo is not None and other.lo is not None
            else None
        )
        hi = (
            self.hi + other.hi
            if self.hi is not None and other.hi is not None
            else None
        )
        return Interval(
            lo,
            hi,
            self.lo_open or other.lo_open if lo is not None else False,
            self.hi_open or other.hi_open if hi is not None else False,
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        if not (self.bounded and other.bounded):
            return UNBOUNDED
        assert self.lo is not None and self.hi is not None
        assert other.lo is not None and other.hi is not None
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        # Openness is dropped (closed hull): strictly wider, hence sound.
        return Interval(min(products), max(products))

    def div(self, other: "Interval") -> "Interval":
        if not (self.bounded and other.bounded and other.excludes_zero()):
            return UNBOUNDED
        assert self.lo is not None and self.hi is not None
        assert other.lo is not None and other.hi is not None
        quotients = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        return Interval(min(quotients), max(quotients))

    def render(self) -> str:
        lo = "-inf" if self.lo is None else _render_bound(self.lo)
        hi = "inf" if self.hi is None else _render_bound(self.hi)
        left = "(" if self.lo_open or self.lo is None else "["
        right = ")" if self.hi_open or self.hi is None else "]"
        return f"{left}{lo}, {hi}{right}"


UNBOUNDED = Interval()


def _render_bound(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# ----------------------------------------------------------------------
# Kleene truth lattice (sets of possible three-valued outcomes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Truth:
    """Which of TRUE / FALSE / UNKNOWN a boolean node can still yield."""

    can_true: bool = True
    can_false: bool = True
    can_null: bool = True

    @property
    def always_true(self) -> bool:
        return self.can_true and not self.can_false and not self.can_null

    @property
    def never_true(self) -> bool:
        return not self.can_true

    @staticmethod
    def of(value: Optional[bool]) -> "Truth":
        if value is None:
            return Truth(False, False, True)
        if value:
            return Truth(True, False, False)
        return Truth(False, True, False)

    @staticmethod
    def not_(a: "Truth") -> "Truth":
        return Truth(a.can_false, a.can_true, a.can_null)

    @staticmethod
    def and_(a: "Truth", b: "Truth") -> "Truth":
        return Truth(
            a.can_true and b.can_true,
            a.can_false or b.can_false,
            (a.can_null and (b.can_true or b.can_null))
            or (b.can_null and (a.can_true or a.can_null)),
        )

    @staticmethod
    def or_(a: "Truth", b: "Truth") -> "Truth":
        return Truth(
            a.can_true or b.can_true,
            a.can_false and b.can_false,
            (a.can_null and (b.can_false or b.can_null))
            or (b.can_null and (a.can_false or a.can_null)),
        )


def _const_from_truth(truth: Truth) -> Any:
    flags = (truth.can_true, truth.can_false, truth.can_null)
    if flags == (True, False, False):
        return True
    if flags == (False, True, False):
        return False
    if flags == (False, False, True):
        return None
    return TOP


# ----------------------------------------------------------------------
# The fact triple
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fact:
    """Per-node abstract state: constant, interval, nullability, truth."""

    const: Any = TOP
    interval: Interval = UNBOUNDED
    nullability: Nullability = Nullability.MAYBE
    truth: Truth = Truth()
    dtype: Optional[DataType] = None

    @property
    def is_const(self) -> bool:
        return self.const is not TOP

    @property
    def always_null(self) -> bool:
        return self.nullability is Nullability.ALWAYS

    @property
    def never_null(self) -> bool:
        return self.nullability is Nullability.NEVER

    @staticmethod
    def of_const(value: Any, dtype: Optional[DataType] = None) -> "Fact":
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return NULL_FACT if dtype is None else replace(NULL_FACT, dtype=dtype)
        if isinstance(value, bool):
            return Fact(
                const=value,
                interval=Interval.point(int(value)),
                nullability=Nullability.NEVER,
                truth=Truth.of(value),
                dtype=dtype or DataType.BOOL,
            )
        if isinstance(value, (int, float)):
            inferred = DataType.INT64 if isinstance(value, int) else DataType.FLOAT64
            return Fact(
                const=value,
                interval=Interval.point(value),
                nullability=Nullability.NEVER,
                truth=Truth(True, True, False),
                dtype=dtype or inferred,
            )
        if isinstance(value, str):
            return Fact(
                const=value,
                nullability=Nullability.NEVER,
                truth=Truth(True, True, False),
                dtype=dtype or DataType.STRING,
            )
        return Fact(dtype=dtype)

    def join(self, other: "Fact") -> "Fact":
        """Lattice join (hull) for control-flow merges (CASE branches)."""
        const = self.const if _consts_equal(self.const, other.const) else TOP
        return Fact(
            const=const,
            interval=self.interval.hull(other.interval),
            nullability=self.nullability.join(other.nullability),
            truth=Truth(
                self.truth.can_true or other.truth.can_true,
                self.truth.can_false or other.truth.can_false,
                self.truth.can_null or other.truth.can_null,
            ),
            dtype=self.dtype if self.dtype is other.dtype else None,
        )

    def contains(self, other: "Fact") -> bool:
        """True when ``other`` (a fresher seed fact) satisfies every
        assumption this fact encodes — used by plan-cache staleness
        checks: a cached plan folded under ``self`` stays valid while
        the current column facts are contained in it."""
        if self.nullability is Nullability.NEVER and not other.never_null:
            return False
        if self.nullability is Nullability.ALWAYS and not other.always_null:
            return False
        narrowed = self.interval.intersect(other.interval)
        return narrowed == other.interval

    def render(self) -> str:
        parts: list[str] = []
        if self.is_const:
            parts.append(f"const={_render_const(self.const)}")
        if not self.interval.unbounded:
            parts.append(f"range={self.interval.render()}")
        parts.append(f"nullable={_NULLABLE_TEXT[self.nullability]}")
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"nullable": _NULLABLE_TEXT[self.nullability]}
        if self.is_const:
            out["const"] = _render_const(self.const)
        if not self.interval.unbounded:
            out["range"] = [self.interval.lo, self.interval.hi]
        return out


NULL_FACT = Fact(
    const=None,
    nullability=Nullability.ALWAYS,
    truth=Truth(False, False, True),
)

_NULLABLE_TEXT = {
    Nullability.NEVER: "no",
    Nullability.MAYBE: "maybe",
    Nullability.ALWAYS: "always",
}


def _render_const(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _consts_equal(a: Any, b: Any) -> bool:
    if a is TOP or b is TOP:
        return False
    return bool(type(a) is type(b) and a == b)


def _bool_fact(truth: Truth) -> Fact:
    if not truth.can_null:
        nullability = Nullability.NEVER
    elif not truth.can_true and not truth.can_false:
        nullability = Nullability.ALWAYS
    else:
        nullability = Nullability.MAYBE
    return Fact(
        const=_const_from_truth(truth),
        nullability=nullability,
        truth=truth,
        dtype=DataType.BOOL,
    )


# ----------------------------------------------------------------------
# Diagnostics carried out of an analysis run
# ----------------------------------------------------------------------
class NoteKind(Enum):
    DIVISION_BY_ZERO = "division_by_zero"
    INT64_OVERFLOW = "int64_overflow"


@dataclass(frozen=True)
class Note:
    kind: NoteKind
    node: Expression
    detail: str


# ----------------------------------------------------------------------
# Column-fact environment
# ----------------------------------------------------------------------
@dataclass
class RelationFacts:
    """Ordered column facts of one FROM-clause relation."""

    qualifier: str
    table_name: Optional[str]
    columns: list[tuple[str, Fact]] = field(default_factory=list)


class Env:
    """Column facts keyed canonically, with statistics provenance.

    ``used`` accumulates every stats-backed ``(table, column)`` the
    analysis consulted; consumers persist these (with ``seeds``) as the
    plan's assumptions so cached plans can be revalidated after table
    mutations.  Copies made during conjunct refinement *share* the
    ``used`` set on purpose.
    """

    __slots__ = ("facts", "aliases", "table_of", "stats_tables", "used", "seeds")

    def __init__(self) -> None:
        self.facts: dict[str, Fact] = {}
        self.aliases: dict[str, str] = {}
        self.table_of: dict[str, tuple[str, str]] = {}
        self.stats_tables: dict[str, int] = {}
        self.used: set[tuple[str, str]] = set()
        self.seeds: dict[tuple[str, str], Fact] = {}

    def copy(self) -> "Env":
        out = Env.__new__(Env)
        out.facts = dict(self.facts)
        out.aliases = dict(self.aliases)
        out.table_of = self.table_of
        out.stats_tables = self.stats_tables
        out.used = self.used  # shared: provenance survives refinement
        out.seeds = self.seeds
        return out

    # -- construction --------------------------------------------------
    def add_relation(self, relation: RelationFacts) -> None:
        qualifier = relation.qualifier.lower()
        for name, fact in relation.columns:
            canon = f"{qualifier}.{name.lower()}"
            self.facts[canon] = fact
            self.aliases[canon] = canon
            if relation.table_name is not None:
                self.table_of[canon] = (relation.table_name, name.lower())
            bare = name.lower()
            if bare in self.aliases and self.aliases[bare] != canon:
                self.aliases[bare] = _AMBIGUOUS
            else:
                self.aliases.setdefault(bare, canon)

    # -- lookup / update -----------------------------------------------
    def canonical(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            key = f"{ref.table.lower()}.{ref.name.lower()}"
        else:
            key = ref.name.lower()
        canon = self.aliases.get(key)
        if canon is None or canon == _AMBIGUOUS:
            # Unknown (or ambiguous-bare) column: an ad-hoc slot still
            # lets same-named references unify within one predicate.
            canon = key
            self.aliases.setdefault(key, key)
            self.facts.setdefault(key, Fact())
        return canon

    def lookup(self, ref: ColumnRef) -> Fact:
        canon = self.canonical(ref)
        source = self.table_of.get(canon)
        if source is not None:
            self.used.add(source)
        return self.facts[canon]

    def set_fact(self, canon: str, fact: Fact) -> None:
        self.facts[canon] = fact


_AMBIGUOUS = "\x00ambiguous"


def relation_facts(
    qualifier: str,
    table_name: str,
    columns: Sequence[tuple[str, DataType]],
    stats: Optional["TableStats"],
) -> RelationFacts:
    """Seed facts for one base-table relation from exact statistics."""
    out = RelationFacts(qualifier=qualifier, table_name=table_name)
    for name, dtype in columns:
        fact = column_seed_fact(name, dtype, stats)
        out.columns.append((name, fact))
    return out


def column_seed_fact(
    name: str, dtype: DataType, stats: Optional["TableStats"]
) -> Fact:
    interval = UNBOUNDED
    nullability = Nullability.MAYBE
    if stats is not None:
        column = stats.column(name)
        if column is not None:
            null_count = column.null_count
            if null_count == 0:
                nullability = Nullability.NEVER
            elif null_count >= stats.row_count > 0:
                nullability = Nullability.ALWAYS
            if (
                dtype.is_numeric
                and column.min_value is not None
                and column.max_value is not None
                and not math.isnan(column.min_value)
                and not math.isnan(column.max_value)
            ):
                lo: float = column.min_value
                hi: float = column.max_value
                if dtype in (DataType.INT64, DataType.DATE):
                    # Exact Python-int bounds pass through untouched
                    # (int comparisons never round).  Bounds that went
                    # through float64 — legacy stats, overrides — may
                    # have rounded at or above 2**53, so widen by one
                    # ulp where rounding could bite.
                    if isinstance(lo, float) and abs(lo) >= 2**53:
                        lo = math.nextafter(lo, -math.inf)
                    if isinstance(hi, float) and abs(hi) >= 2**53:
                        hi = math.nextafter(hi, math.inf)
                interval = Interval(lo, hi)
    can_null = nullability is not Nullability.NEVER
    truth = Truth(True, True, can_null)
    if nullability is Nullability.ALWAYS:
        truth = Truth(False, False, True)
    return Fact(
        interval=interval, nullability=nullability, truth=truth, dtype=dtype
    )


def build_env(
    relations: Sequence[RelationFacts],
    *,
    stats_versions: Optional[dict[str, int]] = None,
    seeds: Optional[dict[tuple[str, str], Fact]] = None,
) -> Env:
    env = Env()
    for relation in relations:
        env.add_relation(relation)
        if relation.table_name is not None:
            for name, fact in relation.columns:
                env.seeds[(relation.table_name, name.lower())] = fact
    if stats_versions:
        env.stats_tables.update(stats_versions)
    if seeds:
        env.seeds.update(seeds)
    return env


def statement_relations(
    statement: SelectStatement,
    catalog: Optional["Catalog"],
    statistics: Optional["StatisticsProvider"],
) -> list[RelationFacts]:
    """Resolve a statement's FROM clause into seeded relations.

    Derived tables and views contribute a qualifier with no column
    facts (their outputs are treated as unknown)."""
    relations: list[RelationFacts] = []

    def visit(ref: Optional[TableRef]) -> None:
        if ref is None:
            return
        if isinstance(ref, NamedTable):
            qualifier = ref.alias or ref.name
            if (
                catalog is not None
                and catalog.has(ref.name)
                and not catalog.is_view(ref.name)
            ):
                table = catalog.get_table(ref.name)
                stats = (
                    statistics.exact_stats_for(ref.name)
                    if statistics is not None
                    else None
                )
                relations.append(
                    relation_facts(
                        qualifier,
                        table.name,
                        # Schema, not columns: reading the columns of a
                        # lazily-partitioned table materializes it.
                        [(c.name, c.dtype) for c in table.schema],
                        stats,
                    )
                )
            else:
                relations.append(RelationFacts(qualifier, None))
            return
        if isinstance(ref, DerivedTable):
            relations.append(RelationFacts(ref.alias, None))
            return
        if isinstance(ref, Join):
            visit(ref.left)
            visit(ref.right)

    visit(statement.from_clause)
    for extra in statement.cross_tables:
        visit(extra)
    return relations


def statement_env(
    statement: SelectStatement,
    catalog: Optional["Catalog"],
    statistics: Optional["StatisticsProvider"],
) -> tuple[Env, list[RelationFacts]]:
    relations = statement_relations(statement, catalog, statistics)
    versions: dict[str, int] = {}
    if statistics is not None:
        for relation in relations:
            if relation.table_name is not None:
                versions[relation.table_name] = statistics.version(
                    relation.table_name
                )
    return build_env(relations, stats_versions=versions), relations


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------
def analyze_expression(
    expression: Expression,
    env: Optional[Env] = None,
    notes: Optional[list[Note]] = None,
) -> Fact:
    """Bottom-up fact for one expression (no rewriting)."""
    target = env if env is not None else Env()
    sink = notes if notes is not None else []
    fact, _ = _eval(expression, target, sink, rewrite=False)
    return fact


def fold_expression(
    expression: Expression,
    env: Optional[Env] = None,
    notes: Optional[list[Note]] = None,
) -> tuple[Expression, Fact]:
    """Constant-fold every provably-constant subtree to a literal.

    Only rewrites whose folded value is exactly what the runtime would
    compute are performed (scalar semantics of the expression
    interpreter, including ``x / 0 -> NULL``); aggregate calls and
    scalar subqueries are opaque and never touched.
    """
    target = env if env is not None else Env()
    sink = notes if notes is not None else []
    fact, rewritten = _eval(expression, target, sink, rewrite=True)
    return rewritten, fact


@dataclass
class ConjunctOutcome:
    """One conjunct's fate under folding."""

    original: Expression
    folded: Expression
    fact: Fact
    status: str  # "keep" | "always_true" | "never_true"


@dataclass
class PredicateFold:
    outcomes: list[ConjunctOutcome]
    notes: list[Note]

    @property
    def contradiction(self) -> Optional[ConjunctOutcome]:
        for outcome in self.outcomes:
            if outcome.status == "never_true":
                return outcome
        return None

    @property
    def dropped(self) -> list[ConjunctOutcome]:
        return [o for o in self.outcomes if o.status == "always_true"]

    @property
    def changed(self) -> bool:
        return any(
            o.status != "keep" or o.folded is not o.original
            for o in self.outcomes
        )

    def surviving(self) -> list[Expression]:
        return [o.folded for o in self.outcomes if o.status == "keep"]


def fold_conjuncts(
    predicate: Expression, env: Optional[Env] = None
) -> PredicateFold:
    """Fold a conjunction left-to-right with assume-true refinement.

    Each conjunct is analyzed under the environment refined by the
    conjuncts before it, which is what catches relational
    contradictions like ``x > 5 AND x < 3`` (neither conjunct is
    constant on its own).  A conjunct whose truth set excludes TRUE
    marks the whole predicate as a contradiction; one that can only be
    TRUE is dropped.
    """
    working = (env if env is not None else Env()).copy()
    notes: list[Note] = []
    outcomes: list[ConjunctOutcome] = []
    feasible = True
    for conjunct in split_conjuncts(predicate):
        scope = working if feasible else working.copy()
        fact, folded = _eval(conjunct, scope, notes, rewrite=True)
        if fact.truth.never_true:
            status = "never_true"
        elif fact.truth.always_true:
            status = "always_true"
        else:
            status = "keep"
        outcomes.append(ConjunctOutcome(conjunct, folded, fact, status))
        if feasible and status != "never_true":
            refined = refine(working, conjunct)
            if refined is None:
                # The conjunction as a whole is infeasible even though
                # this conjunct alone still had TRUE in its truth set.
                outcomes[-1].status = "never_true"
                feasible = False
            else:
                working = refined
        elif status == "never_true":
            feasible = False
    return PredicateFold(outcomes=outcomes, notes=notes)


# ----------------------------------------------------------------------
# Core recursive evaluation (+ optional rewriting)
# ----------------------------------------------------------------------
def _eval(
    node: Expression, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    fact, rebuilt = _eval_inner(node, env, notes, rewrite)
    if rewrite:
        folded = _maybe_fold(rebuilt, fact)
        if folded is not None:
            return fact, folded
    return fact, rebuilt


def _eval_inner(
    node: Expression, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    if isinstance(node, Literal):
        return Fact.of_const(node.value), node
    if isinstance(node, ColumnRef):
        return env.lookup(node), node
    if isinstance(node, UnaryOp):
        return _eval_unary(node, env, notes, rewrite)
    if isinstance(node, BinaryOp):
        return _eval_binary(node, env, notes, rewrite)
    if isinstance(node, IsNull):
        operand_fact, operand = _eval(node.operand, env, notes, rewrite)
        rebuilt = _rebuild(node, rewrite, operand=operand)
        return _is_null_fact(operand_fact, node.negated), rebuilt
    if isinstance(node, Between):
        return _eval_between(node, env, notes, rewrite)
    if isinstance(node, InList):
        return _eval_in_list(node, env, notes, rewrite)
    if isinstance(node, FunctionCall):
        return _eval_call(node, env, notes, rewrite)
    if isinstance(node, CaseExpression):
        return _eval_case(node, env, notes, rewrite)
    if isinstance(node, (ScalarSubquery, Star)):
        return Fact(), node
    return Fact(), node


def _rebuild(node: Expression, rewrite: bool, **changes: Any) -> Expression:
    if not rewrite or all(
        getattr(node, name) is value for name, value in changes.items()
    ):
        return node
    rebuilt = replace(node, **changes)  # type: ignore[type-var]
    span = span_of(node)
    if span is not None:
        set_span(rebuilt, span)
    return rebuilt


def _maybe_fold(node: Expression, fact: Fact) -> Optional[Expression]:
    """Replace a proven-constant node with a literal, when safe."""
    if not fact.is_const or isinstance(node, (Literal, Star)):
        return None
    value = fact.const
    if isinstance(value, float) and not math.isfinite(value):
        return None  # inf has no literal spelling; NaN folds as None
    if isinstance(value, int) and not isinstance(value, bool):
        if not (INT64_MIN <= value <= INT64_MAX):
            return None
    if not isinstance(value, (bool, int, float, str)) and value is not None:
        return None
    literal = Literal(value)
    span = span_of(node)
    if span is not None:
        set_span(literal, span)
    return literal


def _eval_unary(
    node: UnaryOp, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    operand_fact, operand = _eval(node.operand, env, notes, rewrite)
    rebuilt = _rebuild(node, rewrite, operand=operand)
    op = node.op.upper()
    if op == "NOT":
        truth = Truth.not_(operand_fact.truth)
        return _bool_fact(truth), rebuilt
    if op == "-":
        const: Any = TOP
        if operand_fact.is_const:
            value = operand_fact.const
            if value is None:
                const = None
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                const = -value
        fact = Fact(
            const=const,
            interval=operand_fact.interval.neg(),
            nullability=operand_fact.nullability,
            truth=Truth(True, True, not operand_fact.never_null),
            dtype=operand_fact.dtype,
        )
        return fact, rebuilt
    return Fact(), rebuilt


def _eval_binary(
    node: BinaryOp, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    op = node.op.upper()
    if op == "AND":
        left_fact, left = _eval(node.left, env, notes, rewrite)
        branch = refine(env, left)
        right_fact, right = _eval(
            node.right, branch if branch is not None else env, notes, rewrite
        )
        truth = Truth.and_(left_fact.truth, right_fact.truth)
        if branch is None:
            # Left can never be TRUE: the conjunction cannot be TRUE.
            truth = Truth(False, truth.can_false, truth.can_null)
        return _bool_fact(truth), _rebuild(node, rewrite, left=left, right=right)
    if op == "OR":
        left_fact, left = _eval(node.left, env, notes, rewrite)
        right_fact, right = _eval(node.right, env, notes, rewrite)
        truth = Truth.or_(left_fact.truth, right_fact.truth)
        return _bool_fact(truth), _rebuild(node, rewrite, left=left, right=right)

    left_fact, left = _eval(node.left, env, notes, rewrite)
    right_fact, right = _eval(node.right, env, notes, rewrite)
    rebuilt = _rebuild(node, rewrite, left=left, right=right)
    if node.op in _COMPARISONS:
        return _compare_facts(node.op, left_fact, right_fact), rebuilt
    if node.op in _ARITHMETIC:
        return (
            _arithmetic_facts(node.op, left_fact, right_fact, node, notes),
            rebuilt,
        )
    if node.op == "||":
        return _concat_facts(left_fact, right_fact), rebuilt
    return Fact(), rebuilt


def _concat_facts(left: Fact, right: Fact) -> Fact:
    """``||``: NULL if either side is NULL, else string concatenation —
    mirroring the engine's evaluator (``str(lhs) + str(rhs)``)."""
    if left.always_null or right.always_null:
        return replace(NULL_FACT, dtype=DataType.STRING)
    const: Any = TOP
    if left.is_const and right.is_const:
        if left.const is None or right.const is None:
            const = None
        else:
            const = str(left.const) + str(right.const)
    nullability = (
        Nullability.NEVER
        if left.never_null and right.never_null
        else Nullability.MAYBE
    )
    return Fact(
        const=const,
        nullability=nullability,
        truth=Truth(True, True, nullability is not Nullability.NEVER),
        dtype=DataType.STRING,
    )


def _coerce_date_facts(left: Fact, right: Fact) -> tuple[Fact, Fact]:
    """Mirror the evaluator's DATE/STRING comparison coercion.

    The engine turns string literals into date ordinals when the other
    side is DATE data (``_coerce_date_comparison`` in expressions.py);
    without the same coercion here every ``d >= '1994-01-01'`` predicate
    is a DATE-vs-STRING comparison the transfer function must treat as
    opaque.  Unparseable literals (which raise at runtime) are left
    alone — the comparison then proves nothing, which is sound.
    """
    for a, b in ((left, right), (right, left)):
        if (
            a.dtype is DataType.DATE
            and b.dtype is DataType.STRING
            and b.is_const
            and isinstance(b.const, str)
        ):
            try:
                ordinal = parse_date(b.const)
            except StorageError:
                return left, right
            coerced = replace(
                b,
                const=ordinal,
                interval=Interval.point(ordinal),
                dtype=DataType.DATE,
            )
            return (a, coerced) if a is left else (coerced, a)
    return left, right


def _compare_facts(op: str, left: Fact, right: Fact) -> Fact:
    if left.always_null or right.always_null:
        return _bool_fact(Truth(False, False, True))
    left, right = _coerce_date_facts(left, right)
    can_null = not (left.never_null and right.never_null)

    # Constant fold, mirroring the scalar comparison path exactly.
    if left.is_const and right.is_const:
        result = _fold_comparison(op, left.const, right.const)
        if result is not TOP:
            truth = Truth.of(bool(result))
            if can_null:  # pragma: no cover - consts are non-null here
                truth = Truth(truth.can_true, truth.can_false, True)
            return _bool_fact(truth)

    # Integer semantics: an INT64 expression can never equal a
    # fractional constant (the comparison promotes to float, but every
    # integer stays integral after promotion).
    for int_side, const_side in ((left, right), (right, left)):
        if (
            op in ("=", "!=")
            and int_side.dtype in (DataType.INT64, DataType.DATE)
            and const_side.is_const
            and isinstance(const_side.const, float)
            and math.isfinite(const_side.const)
            and const_side.const != int(const_side.const)
        ):
            truth = Truth.of(op != "=")
            if can_null:
                truth = Truth(truth.can_true, truth.can_false, True)
            return _bool_fact(truth)

    always = False
    never = False
    a, b = left.interval, right.interval
    numeric = _numeric_side(left) and _numeric_side(right)
    if numeric and not a.unbounded and not b.unbounded:
        if op == "<":
            always, never = a.all_lt(b), b.all_le(a)
        elif op == "<=":
            always, never = a.all_le(b), b.all_lt(a)
        elif op == ">":
            always, never = b.all_lt(a), a.all_le(b)
        elif op == ">=":
            always, never = b.all_le(a), a.all_lt(b)
        elif op == "=":
            always = a.is_point and b.is_point and a.lo == b.lo
            never = a.disjoint(b)
        elif op == "!=":
            always = a.disjoint(b)
            never = a.is_point and b.is_point and a.lo == b.lo
    truth = Truth(not never, not always, can_null)
    return _bool_fact(truth)


def _numeric_side(fact: Fact) -> bool:
    if fact.dtype is not None:
        return fact.dtype.is_numeric or fact.dtype is DataType.BOOL
    return not isinstance(fact.const, str)


def _fold_comparison(op: str, lhs: Any, rhs: Any) -> Any:
    numeric_l = isinstance(lhs, (int, float))
    numeric_r = isinstance(rhs, (int, float))
    if not (
        (numeric_l and numeric_r)
        or (isinstance(lhs, str) and isinstance(rhs, str))
    ):
        return TOP
    if op == "=":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    return TOP


def _arithmetic_facts(
    op: str, left: Fact, right: Fact, node: Expression, notes: list[Note]
) -> Fact:
    int_inputs = left.dtype in (DataType.INT64, DataType.DATE) and right.dtype in (
        DataType.INT64,
        DataType.DATE,
    )
    dtype = (
        DataType.FLOAT64
        if op == "/"
        else (DataType.INT64 if int_inputs else DataType.FLOAT64)
    )
    if left.dtype is None or right.dtype is None:
        dtype = DataType.FLOAT64 if op == "/" else None

    divisor_zero = op in ("/", "%") and _definitely_zero(right)
    if divisor_zero:
        notes.append(
            Note(
                NoteKind.DIVISION_BY_ZERO,
                node,
                f"divisor of {op!r} is always zero"
                + (" (inf or NULL result)" if op == "/" else ""),
            )
        )
        if op == "/" and not left.is_const:
            # A column divided by zero yields ±inf for nonzero rows and
            # NULL only for zero (NaN) or NULL rows — opaque beyond the
            # dtype.  (Const/const division folds to NULL below via the
            # scalar path; ``%`` raises at runtime, so it stays opaque.)
            return Fact(
                nullability=(
                    Nullability.ALWAYS if left.always_null else Nullability.MAYBE
                ),
                truth=Truth(True, True, True),
                dtype=dtype,
            )

    if left.always_null or right.always_null:
        return replace(NULL_FACT, dtype=dtype)

    const = _fold_arithmetic(op, left, right, node, notes)
    if const is not TOP:
        fact = Fact.of_const(const)
        if const is None:
            fact = replace(fact, dtype=dtype)
        return fact

    interval = UNBOUNDED
    if op == "+":
        interval = left.interval.add(right.interval)
    elif op == "-":
        interval = left.interval.sub(right.interval)
    elif op == "*":
        interval = left.interval.mul(right.interval)
    elif op == "/":
        interval = left.interval.div(right.interval)

    if dtype is DataType.INT64 and not interval.unbounded:
        lo, hi = interval.lo, interval.hi
        if (lo is not None and lo < INT64_MIN) or (
            hi is not None and hi > INT64_MAX
        ):
            notes.append(
                Note(
                    NoteKind.INT64_OVERFLOW,
                    node,
                    f"{op!r} on INT64 operands can exceed the int64 range "
                    f"(derived range {interval.render()})",
                )
            )

    nullability = _arith_nullability(op, left, right)
    return Fact(
        interval=interval,
        nullability=nullability,
        truth=Truth(True, True, nullability is not Nullability.NEVER),
        dtype=dtype,
    )


def _definitely_zero(fact: Fact) -> bool:
    if fact.is_const and isinstance(fact.const, (int, float)):
        return fact.const == 0
    return fact.interval.is_zero_point()


def _fold_arithmetic(
    op: str, left: Fact, right: Fact, node: Expression, notes: list[Note]
) -> Any:
    if not (left.is_const and right.is_const):
        return TOP
    lhs, rhs = left.const, right.const
    if lhs is None or rhs is None:
        return None
    # bool operands take the FLOAT64 runtime path while Python would
    # produce an int — skip folding rather than change the result dtype.
    if isinstance(lhs, bool) or isinstance(rhs, bool):
        return TOP
    if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
        return TOP
    if op == "/":
        # Scalar runtime semantics: division by zero yields NaN == NULL.
        return lhs / rhs if rhs != 0 else None
    if op == "%":
        if rhs == 0:
            # The scalar interpreter raises ZeroDivisionError here;
            # folding would swallow the error, so leave it in place
            # (L009 warns about it).
            return TOP
        return lhs % rhs
    if op == "+":
        result: Any = lhs + rhs
    elif op == "-":
        result = lhs - rhs
    elif op == "*":
        result = lhs * rhs
    else:
        return TOP
    if isinstance(result, int) and not (INT64_MIN <= result <= INT64_MAX):
        notes.append(
            Note(
                NoteKind.INT64_OVERFLOW,
                node,
                f"constant fold of {op!r} overflows int64 ({result})",
            )
        )
        return TOP
    if isinstance(result, float) and math.isnan(result):
        return None
    return result


def _arith_nullability(op: str, left: Fact, right: Fact) -> Nullability:
    if not (left.never_null and right.never_null):
        if left.always_null or right.always_null:
            return Nullability.ALWAYS
        return Nullability.MAYBE
    if op in ("+", "-", "*"):
        # inf - inf (or 0 * inf) produces NaN == NULL; finite bounds or
        # integer dtypes rule infinities out.
        if _finite_operand(left) and _finite_operand(right):
            return Nullability.NEVER
        return Nullability.MAYBE
    # '/' and '%': NULL can appear via a zero (or infinite) divisor.
    if right.interval.excludes_zero() and _finite_operand(right):
        return Nullability.NEVER
    return Nullability.MAYBE


def _finite_operand(fact: Fact) -> bool:
    if fact.dtype in (DataType.INT64, DataType.DATE, DataType.BOOL):
        return True
    return fact.interval.bounded


def _is_null_fact(operand: Fact, negated: bool) -> Fact:
    if operand.never_null:
        return Fact.of_const(bool(negated))
    if operand.always_null:
        return Fact.of_const(not negated)
    return Fact(
        nullability=Nullability.NEVER,
        truth=Truth(True, True, False),
        dtype=DataType.BOOL,
    )


def _eval_between(
    node: Between, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    operand_fact, operand = _eval(node.operand, env, notes, rewrite)
    low_fact, low = _eval(node.low, env, notes, rewrite)
    high_fact, high = _eval(node.high, env, notes, rewrite)
    rebuilt = _rebuild(node, rewrite, operand=operand, low=low, high=high)
    lower = _compare_facts(">=", operand_fact, low_fact)
    upper = _compare_facts("<=", operand_fact, high_fact)
    truth = Truth.and_(lower.truth, upper.truth)
    if node.negated:
        truth = Truth.not_(truth)
    return _bool_fact(truth), rebuilt


def _eval_in_list(
    node: InList, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    operand_fact, operand = _eval(node.operand, env, notes, rewrite)
    item_facts: list[Fact] = []
    items: list[Expression] = []
    for item in node.items:
        fact, rebuilt_item = _eval(item, env, notes, rewrite)
        item_facts.append(fact)
        items.append(rebuilt_item)
    rebuilt = _rebuild(
        node,
        rewrite,
        operand=operand,
        items=tuple(items) if rewrite else node.items,
    )
    truth: Optional[Truth] = None
    for fact in item_facts:
        member = _compare_facts("=", operand_fact, fact)
        truth = member.truth if truth is None else Truth.or_(truth, member.truth)
    if truth is None:  # empty IN list: never true
        truth = Truth.of(False)
    if node.negated:
        truth = Truth.not_(truth)
    return _bool_fact(truth), rebuilt


def _eval_case(
    node: CaseExpression, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    whens: list[tuple[Expression, Expression]] = []
    result: Optional[Fact] = None
    for condition, value in node.whens:
        cond_fact, cond = _eval(condition, env, notes, rewrite)
        value_fact, val = _eval(value, env, notes, rewrite)
        whens.append((cond, val))
        # Branch reachability is not tracked: join every arm.
        result = value_fact if result is None else result.join(value_fact)
        del cond_fact
    if node.default is not None:
        default_fact, default = _eval(node.default, env, notes, rewrite)
        result = default_fact if result is None else result.join(default_fact)
    else:
        default = None
        result = NULL_FACT if result is None else result.join(NULL_FACT)
    rebuilt = _rebuild(
        node,
        rewrite,
        whens=tuple(whens) if rewrite else node.whens,
        default=default,
    )
    # Constants across merged branches are not foldable (branch choice
    # is data-dependent); keep the hull only.
    return replace(result, const=TOP), rebuilt


def _eval_call(
    node: FunctionCall, env: Env, notes: list[Note], rewrite: bool
) -> tuple[Fact, Expression]:
    name = node.name.lower()
    if name in AGGREGATE_NAMES:
        # Opaque: the call's SQL text is the aggregate slot key at
        # execution time, so neither the call nor its arguments may be
        # rewritten; its value is unknown.
        return Fact(), node
    arg_facts: list[Fact] = []
    args: list[Expression] = []
    for arg in node.args:
        fact, rebuilt_arg = _eval(arg, env, notes, rewrite)
        arg_facts.append(fact)
        args.append(rebuilt_arg)
    rebuilt = _rebuild(
        node, rewrite, args=tuple(args) if rewrite else node.args
    )
    handler = _CALL_TRANSFERS.get(name)
    if handler is None:
        return Fact(), rebuilt
    return handler(arg_facts, rebuilt, notes), rebuilt


# -- builtin transfer functions ----------------------------------------
def _call_coalesce(
    args: list[Fact], node: Expression, notes: list[Note]
) -> Fact:
    if not args:
        return Fact()
    interval = UNBOUNDED
    nullability = Nullability.ALWAYS
    first = True
    for fact in args:
        interval = fact.interval if first else interval.hull(fact.interval)
        first = False
        if fact.never_null:
            nullability = Nullability.NEVER
            break
        if not fact.always_null:
            nullability = Nullability.MAYBE
    return Fact(
        interval=interval,
        nullability=nullability,
        truth=Truth(True, True, nullability is not Nullability.NEVER),
    )


def _call_if(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
    if len(args) != 3:
        return Fact()
    condition, then, otherwise = args
    if condition.truth.always_true:
        return replace(then, const=TOP)
    if condition.truth.never_true:
        # FALSE and NULL conditions both take the else branch.
        return replace(otherwise, const=TOP)
    return replace(then.join(otherwise), const=TOP)


def _call_abs(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
    if len(args) != 1:
        return Fact()
    (operand,) = args
    iv = operand.interval
    interval = UNBOUNDED
    if iv.lo is not None and iv.hi is not None:
        if iv.lo >= 0:
            interval = Interval(iv.lo, iv.hi)
        elif iv.hi <= 0:
            interval = iv.neg()
        else:
            interval = Interval(0, max(abs(iv.lo), abs(iv.hi)))
    return Fact(
        interval=interval,
        nullability=operand.nullability,
        truth=Truth(True, True, not operand.never_null),
        dtype=DataType.FLOAT64,
    )


def _call_monotone(
    transform: Any,
) -> Any:
    def handler(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
        if len(args) != 1:
            return Fact()
        (operand,) = args
        iv = operand.interval
        lo = transform(iv.lo) if iv.lo is not None else None
        hi = transform(iv.hi) if iv.hi is not None else None
        return Fact(
            interval=Interval(lo, hi),
            nullability=operand.nullability,
            truth=Truth(True, True, not operand.never_null),
            dtype=DataType.FLOAT64,
        )

    return handler


def _call_sqrt(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
    if len(args) != 1:
        return Fact()
    (operand,) = args
    iv = operand.interval
    non_negative = iv.lo is not None and iv.lo >= 0
    hi = math.sqrt(iv.hi) if iv.hi is not None and iv.hi >= 0 else None
    lo = math.sqrt(iv.lo) if non_negative else (0.0 if hi is not None else None)
    nullability = (
        operand.nullability if non_negative else Nullability.MAYBE
    )
    return Fact(
        interval=Interval(lo, hi),
        nullability=nullability,
        truth=Truth(True, True, nullability is not Nullability.NEVER),
        dtype=DataType.FLOAT64,
    )


def _call_extreme(pick_min: bool) -> Any:
    def handler(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
        if not args:
            return Fact()
        nullability = Nullability.NEVER
        for fact in args:
            if fact.always_null:
                nullability = Nullability.ALWAYS
                break
            if not fact.never_null:
                nullability = Nullability.MAYBE
        los = [f.interval.lo for f in args]
        his = [f.interval.hi for f in args]
        if pick_min:
            lo = min((v for v in los if v is not None), default=None)
            lo = None if any(v is None for v in los) else lo
            hi_known = [v for v in his if v is not None]
            hi = min(hi_known) if hi_known else None
        else:
            hi = max((v for v in his if v is not None), default=None)
            hi = None if any(v is None for v in his) else hi
            lo_known = [v for v in los if v is not None]
            lo = max(lo_known) if lo_known else None
        return Fact(
            interval=Interval(lo, hi),
            nullability=nullability,
            truth=Truth(True, True, nullability is not Nullability.NEVER),
            dtype=DataType.FLOAT64,
        )

    return handler


def _call_int_division(op: str) -> Any:
    def handler(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
        if len(args) != 2:
            return Fact()
        left, right = args
        if _definitely_zero(right):
            notes.append(
                Note(
                    NoteKind.DIVISION_BY_ZERO,
                    node,
                    f"divisor of {op}() is always zero",
                )
            )
        if left.always_null or right.always_null:
            return replace(NULL_FACT, dtype=DataType.INT64)
        nullability = _arith_nullability("/", left, right)
        return Fact(
            nullability=nullability,
            truth=Truth(True, True, nullability is not Nullability.NEVER),
            dtype=DataType.INT64,
        )

    return handler


def _call_length(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
    if len(args) != 1:
        return Fact()
    (operand,) = args
    return Fact(
        interval=Interval(0, None),
        nullability=operand.nullability,
        truth=Truth(True, True, not operand.never_null),
        dtype=DataType.INT64,
    )


def _call_cast(dtype: DataType) -> Any:
    def handler(args: list[Fact], node: Expression, notes: list[Note]) -> Fact:
        if len(args) != 1:
            return Fact()
        (operand,) = args
        iv = operand.interval
        interval = UNBOUNDED
        if dtype.is_numeric and not iv.unbounded:
            lo = math.floor(iv.lo) if iv.lo is not None else None
            hi = math.ceil(iv.hi) if iv.hi is not None else None
            interval = (
                Interval(lo, hi)
                if dtype is DataType.INT64
                else Interval(iv.lo, iv.hi)
            )
        return Fact(
            interval=interval if dtype.is_numeric else UNBOUNDED,
            nullability=operand.nullability,
            truth=Truth(True, True, not operand.never_null),
            dtype=dtype,
        )

    return handler


def _call_nan_capable(
    args: list[Fact], node: Expression, notes: list[Note]
) -> Fact:
    return Fact(nullability=Nullability.MAYBE, dtype=DataType.FLOAT64)


_CALL_TRANSFERS: dict[str, Any] = {
    "coalesce": _call_coalesce,
    "ifnull": _call_coalesce,
    "if": _call_if,
    "abs": _call_abs,
    "floor": _call_monotone(math.floor),
    "ceil": _call_monotone(math.ceil),
    "sqrt": _call_sqrt,
    "least": _call_extreme(pick_min=True),
    "greatest": _call_extreme(pick_min=False),
    "intdiv": _call_int_division("intDiv"),
    "modulo": _call_int_division("modulo"),
    "length": _call_length,
    "tofloat64": _call_cast(DataType.FLOAT64),
    "toint64": _call_cast(DataType.INT64),
    "ln": _call_nan_capable,
    "log": _call_nan_capable,
    "pow": _call_nan_capable,
    "power": _call_nan_capable,
}


# ----------------------------------------------------------------------
# Assume-true refinement
# ----------------------------------------------------------------------
def refine(env: Env, predicate: Expression) -> Optional[Env]:
    """The environment under the assumption ``predicate`` is TRUE.

    Returns ``None`` when no row can satisfy the predicate given the
    current facts (the conjunction is infeasible)."""
    out = env.copy()
    for conjunct in split_conjuncts(predicate):
        if not _refine_one(out, conjunct):
            return None
    return out


def _refine_one(env: Env, conjunct: Expression) -> bool:
    fact = analyze_expression(conjunct, env)
    if fact.truth.never_true:
        return False
    if isinstance(conjunct, IsNull):
        if isinstance(conjunct.operand, ColumnRef):
            return _refine_nullability(
                env,
                conjunct.operand,
                Nullability.NEVER if conjunct.negated else Nullability.ALWAYS,
            )
        return True
    if isinstance(conjunct, Between) and not conjunct.negated:
        return _refine_one(
            env, BinaryOp(">=", conjunct.operand, conjunct.low)
        ) and _refine_one(env, BinaryOp("<=", conjunct.operand, conjunct.high))
    if isinstance(conjunct, BinaryOp) and conjunct.op in _COMPARISONS:
        return _refine_comparison(env, conjunct)
    return True


def _refine_nullability(
    env: Env, ref: ColumnRef, nullability: Nullability
) -> bool:
    canon = env.canonical(ref)
    fact = env.lookup(ref)
    if nullability is Nullability.NEVER:
        if fact.always_null:
            return False
        truth = Truth(fact.truth.can_true, fact.truth.can_false, False)
        env.set_fact(
            canon, replace(fact, nullability=Nullability.NEVER, truth=truth)
        )
        return True
    if fact.never_null:
        return False
    env.set_fact(
        canon,
        replace(
            fact,
            nullability=Nullability.ALWAYS,
            const=None,
            truth=Truth(False, False, True),
        ),
    )
    return True


def _refine_comparison(env: Env, node: BinaryOp) -> bool:
    # A comparison that is TRUE implies both operands are non-NULL.
    for side in (node.left, node.right):
        if isinstance(side, ColumnRef):
            if not _refine_nullability(env, side, Nullability.NEVER):
                return False
    if isinstance(node.left, ColumnRef):
        other = analyze_expression(node.right, env)
        _, other = _coerce_date_facts(env.lookup(node.left), other)
        if not _refine_bound(env, node.left, node.op, other):
            return False
    if isinstance(node.right, ColumnRef):
        other = analyze_expression(node.left, env)
        _, other = _coerce_date_facts(env.lookup(node.right), other)
        if not _refine_bound(env, node.right, _FLIPPED[node.op], other):
            return False
    return True


def _refine_bound(env: Env, ref: ColumnRef, op: str, other: Fact) -> bool:
    canon = env.canonical(ref)
    fact = env.lookup(ref)
    constraint: Optional[Interval] = None
    if op == "=":
        constraint = other.interval
        if (
            other.is_const
            and other.const is not None
            and not isinstance(other.const, str)
        ):
            fact = replace(fact, const=other.const)
        elif other.is_const and isinstance(other.const, str):
            fact = replace(fact, const=other.const)
    elif op == "<" and other.interval.hi is not None:
        constraint = Interval(None, other.interval.hi, False, True)
    elif op == "<=" and other.interval.hi is not None:
        constraint = Interval(
            None, other.interval.hi, False, other.interval.hi_open
        )
    elif op == ">" and other.interval.lo is not None:
        constraint = Interval(other.interval.lo, None, True, False)
    elif op == ">=" and other.interval.lo is not None:
        constraint = Interval(
            other.interval.lo, None, other.interval.lo_open, False
        )
    if constraint is not None and not constraint.unbounded:
        narrowed = fact.interval.intersect(constraint)
        if narrowed.is_empty:
            return False
        fact = replace(fact, interval=narrowed)
    if op == "=" and other.is_const and isinstance(fact.const, (int, float, str)):
        if not _consts_equal(fact.const, other.const):
            # Conflicting equality constraints on the same column.
            if fact.const is not TOP and other.const is not TOP:
                return False
    env.set_fact(canon, fact)
    return True


# ----------------------------------------------------------------------
# Statement-level output facts (EXPLAIN / lint --format json)
# ----------------------------------------------------------------------
def output_facts(
    statement: SelectStatement,
    catalog: Optional["Catalog"] = None,
    statistics: Optional["StatisticsProvider"] = None,
    notes: Optional[list[Note]] = None,
) -> list[tuple[str, Fact]]:
    """``(output column name, fact)`` per select item, stars expanded.

    WHERE refinement is applied first: facts describe the rows the
    query can actually produce, not the raw table contents."""
    env, relations = statement_env(statement, catalog, statistics)
    if statement.where is not None:
        refined = refine(env, statement.where)
        if refined is not None:
            env = refined
    sink = notes if notes is not None else []
    out: list[tuple[str, Fact]] = []
    for ordinal, item in enumerate(statement.items):
        expression = item.expression
        if isinstance(expression, Star):
            for relation in relations:
                if (
                    expression.table is not None
                    and relation.qualifier.lower() != expression.table.lower()
                ):
                    continue
                for name, _ in relation.columns:
                    ref = ColumnRef(name=name, table=relation.qualifier)
                    out.append((name, analyze_expression(ref, env, sink)))
            continue
        fact = analyze_expression(expression, env, sink)
        out.append((item.output_name(ordinal), fact))
    return out
