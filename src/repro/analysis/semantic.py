"""Semantic analyzer: binder + type checker for SELECT statements.

Runs between parse and plan.  Resolves every column reference against the
catalog (through aliases, joins, views and derived tables), infers a
:class:`~repro.storage.schema.DataType` for every expression, and checks
nUDF calls against their registered :class:`~repro.engine.udf.UdfSignature`.
Bad queries are rejected at ``Database.execute()`` time with
:class:`~repro.errors.SemanticError` carrying a stable code and, when the
query came from SQL text, the source span of the offending expression.

Error codes:

====  ==============================================================
S001  unknown column
S002  ambiguous column reference
S003  comparison between incompatible types
S004  arithmetic on a STRING operand
S005  aggregate function in WHERE
S006  wrong number of UDF arguments
S007  GROUP BY references a SELECT alias
S008  unknown function or UDF (:class:`UnknownFunctionError`)
S009  scalar subquery with more than one output column
S010  unknown table or view
S011  UDF argument type mismatch
S012  ``*`` outside a select list / ``count(*)``
S013  negative LIMIT or OFFSET (raised by the parser)
====  ==============================================================

In *lenient* mode (``strict=False``, used by the linter when no catalog
is supplied) unknown tables become open relations whose columns resolve
with unknown type, and unknown functions type as unknown instead of
raising — structural errors (ambiguity, arity, misplaced ``*``) are
still reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.types import (
    SCALAR_RETURNS,
    aggregate_nullable,
    aggregate_return_type,
    arithmetic_ok,
    arithmetic_result,
    comparison_ok,
)
from repro.engine.expressions import AGGREGATE_NAMES, is_aggregate_call
from repro.errors import SemanticError, UnknownFunctionError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DerivedTable,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    NamedTable,
    OrderItem,
    ScalarSubquery,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
    walk_expression,
)
from repro.sql.spans import Span, span_of
from repro.storage.schema import DataType

_COMPARISON_OPS = frozenset(("=", "!=", "<>", "<", "<=", ">", ">="))
_ARITHMETIC_OPS = frozenset(("+", "-", "*", "/", "%"))

#: Builtins that can emit NaN from definite inputs; NaN reads back as
#: NULL (the engine's float encoding), so these are always nullable.
_NAN_CAPABLE_BUILTINS = frozenset(("sqrt", "ln", "log", "pow", "power"))


@dataclass(frozen=True)
class ColumnType:
    """One output column: display name plus inferred type (None=unknown).

    ``nullable`` is the analyzer's verdict on whether the column can hold
    SQL NULL.  It is conservative: True unless the expression provably
    never yields NULL (literals, count(*), IS NULL, coalesce with a
    non-nullable argument, references to null-free base columns).
    ``render`` deliberately omits it — plan headers stay stable — use
    ``render_nullable`` when the distinction matters.
    """

    name: str
    dtype: Optional[DataType]
    nullable: bool = True

    def render(self) -> str:
        return f"{self.name} {self.dtype.value if self.dtype else '?'}"

    def render_nullable(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.render()}{suffix}"


@dataclass(frozen=True)
class QuerySchema:
    """The analyzer's verdict on a SELECT: its typed output columns."""

    columns: tuple[ColumnType, ...]

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def render(self) -> str:
        return ", ".join(c.render() for c in self.columns)


@dataclass
class _Relation:
    """One FROM-clause relation inside a scope.

    ``source_keys`` identifies where each column's data physically comes
    from — ``("table", "t", "x")`` for base tables — so a bare reference
    matching the *same* column of a self-joined table is not flagged
    ambiguous (mirroring the runtime, which accepts duplicate matches
    that share one ndarray).  Derived tables get None keys: duplicates
    there are genuinely ambiguous.
    """

    qualifier: Optional[str]
    columns: dict[str, Optional[DataType]] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    open: bool = False
    source_keys: dict[str, Optional[tuple]] = field(default_factory=dict)
    nullable: dict[str, bool] = field(default_factory=dict)

    def add(
        self,
        name: str,
        dtype: Optional[DataType],
        source_key: Optional[tuple] = None,
        nullable: bool = True,
    ) -> None:
        key = name.lower()
        if key not in self.columns:
            self.order.append(name)
        self.columns[key] = dtype
        self.source_keys[key] = source_key
        self.nullable[key] = nullable


class _Scope:
    """An ordered collection of relations plus select-alias fallbacks."""

    def __init__(self, relations: list[_Relation]) -> None:
        self.relations = relations
        self.aliases: dict[str, Optional[DataType]] = {}
        self.alias_nullable: dict[str, bool] = {}

    @property
    def has_open_relation(self) -> bool:
        return any(r.open for r in self.relations)

    def resolve(self, ref: ColumnRef) -> Optional[DataType]:
        """Type of ``ref``; raises S001/S002 when it cannot bind."""
        span = span_of(ref)
        if ref.table is not None:
            qualifier = ref.table.lower()
            candidates = [
                r for r in self.relations if r.qualifier == qualifier
            ]
            if not candidates:
                raise SemanticError(
                    f"unknown table or alias {ref.table!r} in reference "
                    f"{ref.qualified!r}",
                    code="S001",
                    span=span,
                )
            relation = candidates[0]
            key = ref.name.lower()
            if key in relation.columns:
                return relation.columns[key]
            if relation.open:
                return None
            raise SemanticError(
                f"unknown column {ref.qualified!r}"
                f"{_known_columns_hint(relation)}",
                code="S001",
                span=span,
            )

        key = ref.name.lower()
        matches = [r for r in self.relations if key in r.columns]
        if not matches:
            if self.has_open_relation:
                return None
            raise SemanticError(
                f"unknown column {ref.name!r}", code="S001", span=span
            )
        if len(matches) > 1:
            keys = {m.source_keys.get(key) for m in matches}
            if len(keys) > 1 or None in keys:
                qualifiers = ", ".join(
                    sorted(m.qualifier or "?" for m in matches)
                )
                raise SemanticError(
                    f"ambiguous column {ref.name!r} "
                    f"(matches {qualifiers}); qualify the reference",
                    code="S002",
                    span=span,
                )
        return matches[0].columns[key]

    def resolve_nullable(self, ref: ColumnRef) -> bool:
        """Whether ``ref`` can be NULL; True when resolution is unsure.

        Called only after :meth:`resolve` accepted the reference, so every
        unknown is answered conservatively instead of raised.
        """
        key = ref.name.lower()
        if ref.table is not None:
            qualifier = ref.table.lower()
            for relation in self.relations:
                if relation.qualifier == qualifier:
                    return relation.nullable.get(key, True)
            return True
        for relation in self.relations:
            if key in relation.columns:
                return relation.nullable.get(key, True)
        return True


def _known_columns_hint(relation: _Relation) -> str:
    if not relation.order:
        return ""
    return f"; {relation.qualifier or 'relation'} has {relation.order}"


class SemanticAnalyzer:
    """Binds and type-checks one SELECT statement against a catalog.

    Args:
        catalog: Table/view catalog; None means no tables are known.
        functions: Scalar-function registry (anything with ``in``);
            None means the builtin universe is unknown (lenient only).
        udfs: UDF registry; calls to registered UDFs are checked against
            their :class:`~repro.engine.udf.UdfSignature`.
        strict: Strict mode raises S008/S010 for unknown functions and
            tables; lenient mode types them as unknown instead.
        strict_functions: Override the unknown-function check alone —
            the independent strategy binds its nUDFs *outside* the
            database, so its preflight wants strict tables but lenient
            functions.  None inherits ``strict``.
    """

    def __init__(
        self,
        catalog: Any = None,
        functions: Any = None,
        udfs: Any = None,
        *,
        strict: bool = True,
        strict_functions: Optional[bool] = None,
    ) -> None:
        self._catalog = catalog
        self._functions = functions
        self._udfs = udfs
        self._strict = strict
        self._strict_functions = (
            strict if strict_functions is None else strict_functions
        )

    # -- public API ----------------------------------------------------
    def analyze(self, statement: SelectStatement) -> QuerySchema:
        scope = self._build_scope(statement)
        is_aggregate = self._is_aggregate_query(statement)

        if statement.where is not None:
            self._reject_aggregates_in_where(statement.where)
            self._infer(statement.where, scope, allow_aggregates=False)

        for expression in statement.group_by:
            self._check_group_expression(expression, scope, statement)

        output: list[ColumnType] = []
        for ordinal, item in enumerate(statement.items):
            if isinstance(item.expression, Star):
                output.extend(self._expand_star(item.expression, scope))
                continue
            dtype = self._infer(
                item.expression, scope, allow_aggregates=True
            )
            nullable = self._nullable(item.expression, scope)
            name = item.output_name(ordinal)
            output.append(ColumnType(name, dtype, nullable))
            scope.aliases[name.lower()] = dtype
            scope.alias_nullable[name.lower()] = nullable

        if statement.having is not None:
            self._infer_relaxed(statement.having, scope)
        for order_item in statement.order_by:
            self._infer_relaxed(order_item.expression, scope)

        _ = is_aggregate  # group semantics are text-matched by the planner
        return QuerySchema(tuple(output))

    # -- scope construction --------------------------------------------
    def _build_scope(self, statement: SelectStatement) -> _Scope:
        relations: list[_Relation] = []
        conditions: list[Expression] = []
        for table_ref in self._from_items(statement):
            self._collect_relations(table_ref, relations, conditions)
        scope = _Scope(relations)
        # Join conditions are checked against the *full* scope: the
        # engine accepts ON clauses referencing any FROM item, and the
        # optimizer reorders them anyway.
        for condition in conditions:
            self._infer(condition, scope, allow_aggregates=False)
        return scope

    @staticmethod
    def _from_items(statement: SelectStatement) -> list[TableRef]:
        items: list[TableRef] = []
        if statement.from_clause is not None:
            items.append(statement.from_clause)
        items.extend(statement.cross_tables)
        return items

    def _collect_relations(
        self,
        table_ref: TableRef,
        relations: list[_Relation],
        conditions: list[Expression],
    ) -> None:
        if isinstance(table_ref, Join):
            assert table_ref.left is not None and table_ref.right is not None
            self._collect_relations(table_ref.left, relations, conditions)
            self._collect_relations(table_ref.right, relations, conditions)
            if table_ref.condition is not None:
                conditions.append(table_ref.condition)
            return
        if isinstance(table_ref, NamedTable):
            relations.append(self._named_relation(table_ref))
            return
        if isinstance(table_ref, DerivedTable):
            assert table_ref.statement is not None
            schema = self.analyze(table_ref.statement)
            relation = _Relation(
                qualifier=(table_ref.alias or "").lower() or None
            )
            for column in schema.columns:
                relation.add(
                    column.name,
                    column.dtype,
                    source_key=None,
                    nullable=column.nullable,
                )
            relations.append(relation)
            return
        raise SemanticError(
            f"unsupported FROM item {type(table_ref).__name__}"
        )  # pragma: no cover - parser produces only the three above

    def _named_relation(self, table_ref: NamedTable) -> _Relation:
        qualifier = (table_ref.alias or table_ref.name).lower()
        name = table_ref.name
        catalog = self._catalog
        if catalog is not None and catalog.has(name):
            if catalog.is_view(name):
                view = catalog.get_view(name)
                schema = self.analyze(view.statement)
                relation = _Relation(qualifier=qualifier)
                for column in schema.columns:
                    relation.add(
                        column.name,
                        column.dtype,
                        source_key=("view", name.lower(), column.name.lower()),
                        nullable=column.nullable,
                    )
                return relation
            table = catalog.get_table(name)
            relation = _Relation(qualifier=qualifier)
            # Zero-row tables carry inferred (defaulted) column types with
            # no data behind them — ``from_dict`` types empty columns as
            # STRING.  Typing them as unknown keeps the checker from
            # rejecting comparisons that are fine for every actual row.
            trust_types = table.num_rows > 0
            for spec in table.schema:
                # Nullability is read off the stored data: a column with
                # no NULLs *now* is typed NOT NULL for this plan.  Like
                # ``trust_types`` this is a snapshot verdict — analysis
                # runs per plan-cache miss, so a later INSERT of NULLs is
                # seen the next time the statement is planned.
                nullable = (
                    not trust_types
                    or table.column(spec.name).null_mask() is not None
                )
                relation.add(
                    spec.name,
                    spec.dtype if trust_types else None,
                    source_key=("table", name.lower(), spec.name.lower()),
                    nullable=nullable,
                )
            return relation
        if name == "__dual__":
            return _Relation(qualifier=qualifier)
        if self._strict and self._catalog is not None:
            raise SemanticError(
                f"unknown table or view {name!r}",
                code="S010",
                span=span_of(table_ref),
            )
        return _Relation(qualifier=qualifier, open=True)

    # -- statement-level checks ----------------------------------------
    @staticmethod
    def _is_aggregate_query(statement: SelectStatement) -> bool:
        if statement.group_by or statement.having is not None:
            return True
        return any(
            is_aggregate_call(node)
            for item in statement.items
            for node in walk_expression(item.expression)
        )

    @staticmethod
    def _reject_aggregates_in_where(where: Expression) -> None:
        for node in walk_expression(where):
            if is_aggregate_call(node):
                raise SemanticError(
                    f"aggregate {node.name}() is not allowed in WHERE; "
                    "use HAVING",
                    code="S005",
                    span=span_of(node),
                )

    def _check_group_expression(
        self,
        expression: Expression,
        scope: _Scope,
        statement: SelectStatement,
    ) -> None:
        if isinstance(expression, ColumnRef) and expression.table is None:
            try:
                self._infer(expression, scope, allow_aggregates=False)
                return
            except SemanticError as error:
                if error.code != "S001":
                    raise
                aliases = {
                    item.alias.lower()
                    for item in statement.items
                    if item.alias
                }
                if expression.name.lower() in aliases:
                    raise SemanticError(
                        f"GROUP BY references SELECT alias "
                        f"{expression.name!r}; group by the underlying "
                        "expression instead",
                        code="S007",
                        span=span_of(expression),
                    ) from None
                raise
        self._infer(expression, scope, allow_aggregates=False)

    def _expand_star(
        self, star: Star, scope: _Scope
    ) -> list[ColumnType]:
        if star.table is not None:
            qualifier = star.table.lower()
            for relation in scope.relations:
                if relation.qualifier == qualifier:
                    return self._relation_columns(relation)
            raise SemanticError(
                f"unknown table or alias {star.table!r} in {star.to_sql()!r}",
                code="S001",
                span=span_of(star),
            )
        columns: list[ColumnType] = []
        for relation in scope.relations:
            columns.extend(self._relation_columns(relation))
        return columns

    @staticmethod
    def _relation_columns(relation: _Relation) -> list[ColumnType]:
        return [
            ColumnType(
                name,
                relation.columns[name.lower()],
                relation.nullable.get(name.lower(), True),
            )
            for name in relation.order
        ]

    def _infer_relaxed(
        self, expression: Expression, scope: _Scope
    ) -> Optional[DataType]:
        """HAVING / ORDER BY: select aliases resolve in addition to the
        base scope (the planner rewrites them), and aggregates are OK."""
        if (
            isinstance(expression, ColumnRef)
            and expression.table is None
            and expression.name.lower() in scope.aliases
        ):
            return scope.aliases[expression.name.lower()]
        try:
            return self._infer(expression, scope, allow_aggregates=True)
        except SemanticError as error:
            if error.code != "S001":
                raise
            for node in walk_expression(expression):
                if (
                    isinstance(node, ColumnRef)
                    and node.table is None
                    and node.name.lower() in scope.aliases
                ):
                    return None
            raise

    # -- expression nullability inference ------------------------------
    def _nullable(self, expression: Expression, scope: _Scope) -> bool:
        """Whether ``expression`` can evaluate to SQL NULL.

        Conservative: True unless the expression provably always yields a
        definite value.  Mirrors the runtime's three-valued semantics —
        NULL-propagating kernels, Kleene AND/OR, CASE without ELSE
        defaulting to NULL, aggregates over possibly-empty groups — plus
        the engine's NaN≡NULL float convention (division and NaN-capable
        math builtins are nullable even over NOT NULL inputs).
        """
        if isinstance(expression, Literal):
            return expression.value is None
        if isinstance(expression, ColumnRef):
            return scope.resolve_nullable(expression)
        if isinstance(expression, IsNull):
            return False
        if isinstance(expression, UnaryOp):
            return self._nullable(expression.operand, scope)
        if isinstance(expression, BinaryOp):
            # Division's NaN (e.g. 1/0) reads back as NULL; float modulo
            # shares the encoding.  Everything else propagates operands.
            if expression.op in ("/", "%"):
                return True
            return self._nullable(expression.left, scope) or self._nullable(
                expression.right, scope
            )
        if isinstance(expression, FunctionCall):
            return self._nullable_call(expression, scope)
        if isinstance(expression, CaseExpression):
            if expression.default is None:
                return True  # no ELSE: unmatched rows are NULL
            branches = [value for _, value in expression.whens]
            branches.append(expression.default)
            return any(self._nullable(branch, scope) for branch in branches)
        if isinstance(expression, InList):
            if self._nullable(expression.operand, scope):
                return True
            return any(self._nullable(item, scope) for item in expression.items)
        if isinstance(expression, Between):
            return any(
                self._nullable(part, scope)
                for part in (expression.operand, expression.low, expression.high)
            )
        if isinstance(expression, ScalarSubquery):
            return True  # zero-row subquery yields NULL
        return True

    def _nullable_call(self, call: FunctionCall, scope: _Scope) -> bool:
        lowered = call.name.lower()
        if lowered in AGGREGATE_NAMES:
            return aggregate_nullable(call.name)
        if lowered in ("coalesce", "ifnull"):
            return all(
                self._nullable(arg, scope)
                for arg in call.args
                if not isinstance(arg, Star)
            )
        if lowered == "if" and len(call.args) == 3:
            return self._nullable(call.args[1], scope) or self._nullable(
                call.args[2], scope
            )
        if lowered in _NAN_CAPABLE_BUILTINS:
            return True  # sqrt(-1) etc. produce NaN, which reads as NULL
        if lowered in SCALAR_RETURNS:
            return any(
                self._nullable(arg, scope)
                for arg in call.args
                if not isinstance(arg, Star)
            )
        return True  # UDFs and unknown functions may return anything

    # -- expression type inference -------------------------------------
    def _infer(
        self,
        expression: Expression,
        scope: _Scope,
        *,
        allow_aggregates: bool,
    ) -> Optional[DataType]:
        if isinstance(expression, Literal):
            return _literal_type(expression.value)
        if isinstance(expression, ColumnRef):
            return scope.resolve(expression)
        if isinstance(expression, Star):
            raise SemanticError(
                "'*' is only allowed as a select item or inside count(*)",
                code="S012",
                span=span_of(expression),
            )
        if isinstance(expression, UnaryOp):
            return self._infer_unary(expression, scope, allow_aggregates)
        if isinstance(expression, BinaryOp):
            return self._infer_binary(expression, scope, allow_aggregates)
        if isinstance(expression, FunctionCall):
            return self._infer_call(expression, scope, allow_aggregates)
        if isinstance(expression, CaseExpression):
            result: Optional[DataType] = None
            for condition, value in expression.whens:
                self._infer(
                    condition, scope, allow_aggregates=allow_aggregates
                )
                dtype = self._infer(
                    value, scope, allow_aggregates=allow_aggregates
                )
                result = result or dtype
            if expression.default is not None:
                dtype = self._infer(
                    expression.default,
                    scope,
                    allow_aggregates=allow_aggregates,
                )
                result = result or dtype
            return result
        if isinstance(expression, InList):
            operand = self._infer(
                expression.operand, scope, allow_aggregates=allow_aggregates
            )
            for item in expression.items:
                dtype = self._infer(
                    item, scope, allow_aggregates=allow_aggregates
                )
                self._check_comparison(operand, dtype, expression, "IN")
            return DataType.BOOL
        if isinstance(expression, Between):
            operand = self._infer(
                expression.operand, scope, allow_aggregates=allow_aggregates
            )
            for bound in (expression.low, expression.high):
                dtype = self._infer(
                    bound, scope, allow_aggregates=allow_aggregates
                )
                self._check_comparison(operand, dtype, expression, "BETWEEN")
            return DataType.BOOL
        if isinstance(expression, IsNull):
            self._infer(
                expression.operand, scope, allow_aggregates=allow_aggregates
            )
            return DataType.BOOL
        if isinstance(expression, ScalarSubquery):
            schema = self.analyze(expression.statement)
            if len(schema.columns) != 1:
                raise SemanticError(
                    f"scalar subquery must produce exactly one column, "
                    f"got {len(schema.columns)}",
                    code="S009",
                    span=span_of(expression),
                )
            return schema.columns[0].dtype
        return None  # pragma: no cover - all node kinds handled above

    def _infer_unary(
        self, expression: UnaryOp, scope: _Scope, allow_aggregates: bool
    ) -> Optional[DataType]:
        operand = self._infer(
            expression.operand, scope, allow_aggregates=allow_aggregates
        )
        if expression.op.upper() == "NOT":
            return DataType.BOOL
        if operand is DataType.STRING:
            raise SemanticError(
                f"cannot apply {expression.op!r} to a STRING operand "
                f"({expression.operand.to_sql()}); CAST it first",
                code="S004",
                span=span_of(expression),
            )
        if operand in (DataType.INT64, DataType.FLOAT64):
            return operand
        if operand in (DataType.BOOL, DataType.DATE):
            return DataType.INT64
        return None

    def _infer_binary(
        self, expression: BinaryOp, scope: _Scope, allow_aggregates: bool
    ) -> Optional[DataType]:
        op = expression.op.upper()
        left = self._infer(
            expression.left, scope, allow_aggregates=allow_aggregates
        )
        right = self._infer(
            expression.right, scope, allow_aggregates=allow_aggregates
        )
        if op in ("AND", "OR"):
            return DataType.BOOL
        if expression.op in _COMPARISON_OPS:
            self._check_comparison(left, right, expression, expression.op)
            return DataType.BOOL
        if expression.op in _ARITHMETIC_OPS:
            if not arithmetic_ok(left, right):
                offender = (
                    expression.left
                    if left is DataType.STRING
                    else expression.right
                )
                raise SemanticError(
                    f"cannot apply {expression.op!r} to STRING operand "
                    f"{offender.to_sql()}; CAST it to a numeric type first",
                    code="S004",
                    span=span_of(expression),
                )
            return arithmetic_result(expression.op, left, right)
        if expression.op == "||":
            return DataType.STRING
        return None

    def _check_comparison(
        self,
        left: Optional[DataType],
        right: Optional[DataType],
        expression: Expression,
        op: str,
    ) -> None:
        if comparison_ok(left, right):
            return
        raise SemanticError(
            f"cannot compare {left.value if left else '?'} with "
            f"{right.value if right else '?'} in "
            f"{expression.to_sql()}; add an explicit CAST",
            code="S003",
            span=span_of(expression),
        )

    def _infer_call(
        self, call: FunctionCall, scope: _Scope, allow_aggregates: bool
    ) -> Optional[DataType]:
        lowered = call.name.lower()

        if lowered in AGGREGATE_NAMES:
            if not allow_aggregates:
                raise SemanticError(
                    f"aggregate {call.name}() is not allowed here",
                    code="S005",
                    span=span_of(call),
                )
            return self._infer_aggregate(call, scope)

        # count(*) is the only star-accepting call; everything below
        # types its arguments, which rejects stray stars with S012.
        arg_types = [
            self._infer(arg, scope, allow_aggregates=allow_aggregates)
            for arg in call.args
        ]

        if self._udfs is not None and call.name in self._udfs:
            return self._check_udf_call(call, arg_types)

        if lowered == "if":
            return arg_types[1] if len(arg_types) >= 2 else None

        if lowered in SCALAR_RETURNS:
            return SCALAR_RETURNS[lowered]

        if self._functions is not None and call.name in self._functions:
            return None  # registered at runtime without a static type

        if self._strict_functions and (
            self._functions is not None or self._udfs is not None
        ):
            raise UnknownFunctionError(
                f"unknown function or UDF {call.name!r}",
                span=span_of(call),
            )
        return None

    def _infer_aggregate(
        self, call: FunctionCall, scope: _Scope
    ) -> Optional[DataType]:
        lowered = call.name.lower()
        arg_dtype: Optional[DataType] = None
        if call.args:
            first = call.args[0]
            if isinstance(first, Star):
                if lowered != "count":
                    raise SemanticError(
                        f"'*' is not a valid argument to {call.name}()",
                        code="S012",
                        span=span_of(first),
                    )
            else:
                # Aggregate arguments may not nest aggregates; the
                # planner already rejects that, so just type them.
                arg_dtype = self._infer(
                    first, scope, allow_aggregates=False
                )
            for extra in call.args[1:]:
                self._infer(extra, scope, allow_aggregates=False)
        return aggregate_return_type(call.name, arg_dtype)

    def _check_udf_call(
        self, call: FunctionCall, arg_types: list[Optional[DataType]]
    ) -> Optional[DataType]:
        udf = self._udfs.get(call.name)
        signature = udf.signature
        if not signature.accepts_arity(len(call.args)):
            raise SemanticError(
                f"UDF {udf.name}() takes {signature.arity_text()} "
                f"argument(s), got {len(call.args)}",
                code="S006",
                span=span_of(call),
            )
        if signature.arg_dtypes is not None:
            for position, (declared, actual) in enumerate(
                zip(signature.arg_dtypes, arg_types)
            ):
                if declared is None or actual is None:
                    continue
                if declared is actual:
                    continue
                if declared is DataType.BLOB:
                    continue  # BLOB accepts any payload
                if (
                    declared.is_numeric
                    and actual in (DataType.INT64, DataType.FLOAT64, DataType.BOOL)
                ):
                    continue  # numeric widening happens at invoke time
                raise SemanticError(
                    f"UDF {udf.name}() argument {position + 1} expects "
                    f"{declared.value}, got {actual.value}",
                    code="S011",
                    span=span_of(call.args[position]) or span_of(call),
                )
        return signature.return_dtype


def _literal_type(value: Any) -> Optional[DataType]:
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT64
    if isinstance(value, float):
        return DataType.FLOAT64
    if isinstance(value, str):
        return DataType.STRING
    return None


__all__ = [
    "ColumnType",
    "QuerySchema",
    "SemanticAnalyzer",
    "Span",
]
