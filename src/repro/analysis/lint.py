"""Query linter: advisory warnings with stable codes.

Lint findings never block execution — they flag queries that will run
but probably shouldn't be written that way.  Rules:

=====  ==============================================================
L001   implicit lossy cast: equality between an INT64 expression and a
       fractional FLOAT64 literal (always false after truncation)
L002   nUDF in the SELECT list of a LIMIT query — inference runs over
       every candidate row before the limit truncates
L003   cross join with no connecting predicate between FROM relations
L004   non-sargable predicate: builtin function wrapped around a column
       inside a comparison against a literal
L005   multiple nUDF conjuncts written in an order that contradicts
       their estimated selectivities (cheapest filter should run first)
L006   comparison against the NULL literal (``x = NULL`` / ``x != NULL``)
       — always UNKNOWN under three-valued logic, so the predicate never
       passes; the fix-it suggests ``IS [NOT] NULL``
L007   contradictory predicate: a conjunct the dataflow lattice proves
       can never be TRUE (``x > 5 AND x < 3``, or a range disjoint from
       the table's min/max statistics) — the query returns no rows
L008   tautological predicate: a conjunct that is always TRUE (``1 = 1``,
       or implied by the conjuncts before it / the table statistics)
L009   guaranteed division or modulo by zero — ``/ 0`` yields inf or
       NULL per row, ``% 0`` raises at execution time
L010   INT64 overflow risk: an integer expression whose proven value
       range exceeds the INT64 domain
=====  ==============================================================

L007–L010 are driven by the abstract-interpretation pass in
:mod:`repro.analysis.dataflow`; with a catalog they seed column facts
from exact table statistics, without one they still catch purely
relational and constant cases.

``lint_statement`` is pure analysis (no execution); when no catalog is
supplied the binder runs in lenient mode and type-dependent rules simply
see *unknown* types and stay quiet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.analysis import dataflow
from repro.analysis.semantic import SemanticAnalyzer, _Scope
from repro.analysis.types import SCALAR_RETURNS
from repro.engine.udf import parse_udf_comparison
from repro.errors import SemanticError
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    DerivedTable,
    Expression,
    FunctionCall,
    IsNull,
    Join,
    Literal,
    NamedTable,
    SelectStatement,
    TableRef,
    referenced_columns,
    split_conjuncts,
    walk_expression,
)
from repro.sql.spans import Span, line_and_column, span_of
from repro.storage.schema import DataType

#: Rule catalog: code -> one-line description (rendered by ``repro lint``).
LINT_RULES: dict[str, str] = {
    "L001": "equality against a fractional literal is an implicit lossy cast",
    "L002": "nUDF in SELECT list runs before LIMIT truncates",
    "L003": "cross join without a connecting predicate",
    "L004": "function call around a column makes the predicate non-sargable",
    "L005": "nUDF conjuncts not ordered by estimated selectivity",
    "L006": "comparison with NULL is always UNKNOWN; use IS [NOT] NULL",
    "L007": "contradictory predicate can never be TRUE; no row qualifies",
    "L008": "tautological predicate is always TRUE; drop the condition",
    "L009": "division or modulo by a divisor that is always zero",
    "L010": "integer expression can overflow the INT64 range",
}

_EQUALITY_OPS = ("=", "!=", "<>")
_COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def _is_null_literal(expression: Expression) -> bool:
    return isinstance(expression, Literal) and expression.value is None


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic."""

    code: str
    message: str
    span: Optional[Span] = None
    severity: str = "warning"

    def render(self, source: str = "") -> str:
        location = ""
        if self.span is not None and source:
            line, column = line_and_column(source, self.span.start)
            location = f"{line}:{column}: "
        return f"{location}{self.severity} {self.code}: {self.message}"

    def to_dict(self, source: str = "") -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = {"start": self.span.start, "end": self.span.end}
            if source:
                line, column = line_and_column(source, self.span.start)
                payload["line"] = line
                payload["column"] = column
                payload["snippet"] = self.span.snippet(source)
        return payload


def lint_statement(
    statement: SelectStatement,
    source: str = "",
    *,
    catalog: Any = None,
    functions: Any = None,
    udfs: Any = None,
) -> list[LintFinding]:
    """Run every lint rule over one SELECT statement."""
    linter = _Linter(statement, catalog, functions, udfs)
    findings: list[LintFinding] = []
    findings.extend(linter.check_lossy_equality())
    findings.extend(linter.check_nudf_before_limit())
    findings.extend(linter.check_cross_join())
    findings.extend(linter.check_non_sargable())
    findings.extend(linter.check_nudf_ordering())
    findings.extend(linter.check_null_comparison())
    findings.extend(linter.check_dataflow(findings))
    findings.sort(key=lambda f: (f.span.start if f.span else 1 << 30, f.code))
    return findings


class _Linter:
    def __init__(
        self,
        statement: SelectStatement,
        catalog: Any,
        functions: Any,
        udfs: Any,
    ) -> None:
        self.statement: SelectStatement = statement
        self.udfs = udfs
        self._analyzer = SemanticAnalyzer(
            catalog, functions, udfs, strict=False
        )
        try:
            self._scope: Optional[_Scope] = self._analyzer._build_scope(
                statement
            )
        except SemanticError:
            self._scope = None
        # Dataflow environment for L007-L010: seeded from exact table
        # statistics when a real catalog is available, bare otherwise.
        self._dataflow_env: Optional[dataflow.Env] = None
        try:
            statistics = None
            if catalog is not None:
                from repro.engine.statistics import StatisticsProvider

                statistics = StatisticsProvider(catalog)
            self._dataflow_env, _ = dataflow.statement_env(
                statement, catalog, statistics
            )
        except Exception:
            # Lenient callers may pass catalog stand-ins the dataflow
            # layer cannot read; the stats-free rules still apply.
            try:
                self._dataflow_env, _ = dataflow.statement_env(
                    statement, None, None
                )
            except Exception:
                self._dataflow_env = None

    # -- shared helpers -------------------------------------------------
    def _type_of(self, expression: Expression) -> Optional[DataType]:
        if self._scope is None:
            return None
        try:
            return self._analyzer._infer(
                expression, self._scope, allow_aggregates=True
            )
        except SemanticError:
            return None

    def _is_nudf(self, call: FunctionCall) -> bool:
        if self.udfs is not None and call.name in self.udfs:
            return bool(self.udfs.get(call.name).is_neural)
        return call.name.lower().startswith("nudf")

    def _all_conditions(self) -> Iterator[Expression]:
        yield from self._predicate_conditions()
        for order in self.statement.order_by:
            yield order.expression

    def _predicate_conditions(self) -> Iterator[Expression]:
        """Row-filtering conditions only (WHERE/HAVING/ON).

        ORDER BY keys are covered by :meth:`_all_conditions` for
        expression-shape rules (L001/L004/L006) but excluded here: a
        sort key that is never TRUE is suspicious, not contradictory.
        """
        if self.statement.where is not None:
            yield self.statement.where
        if self.statement.having is not None:
            yield self.statement.having
        for condition in self._join_conditions():
            yield condition

    def _join_conditions(self) -> list[Expression]:
        conditions: list[Expression] = []

        def visit(table_ref: TableRef) -> None:
            if isinstance(table_ref, Join):
                assert table_ref.left and table_ref.right
                visit(table_ref.left)
                visit(table_ref.right)
                if table_ref.condition is not None:
                    conditions.append(table_ref.condition)

        for item in self._from_items():
            visit(item)
        return conditions

    def _from_items(self) -> list[TableRef]:
        items: list[TableRef] = []
        if self.statement.from_clause is not None:
            items.append(self.statement.from_clause)
        items.extend(self.statement.cross_tables)
        return items

    # -- L001 -----------------------------------------------------------
    def check_lossy_equality(self) -> list[LintFinding]:
        findings: list[LintFinding] = []
        expressions = list(self._all_conditions())
        expressions.extend(i.expression for i in self.statement.items)
        for root in expressions:
            for node in walk_expression(root):
                if (
                    not isinstance(node, BinaryOp)
                    or node.op not in _EQUALITY_OPS
                ):
                    continue
                for literal_side, other_side in (
                    (node.right, node.left),
                    (node.left, node.right),
                ):
                    if not isinstance(literal_side, Literal):
                        continue
                    value = literal_side.value
                    if not isinstance(value, float) or value == int(value):
                        continue
                    if self._type_of(other_side) is not DataType.INT64:
                        continue
                    findings.append(
                        LintFinding(
                            "L001",
                            f"comparing INT64 expression "
                            f"{other_side.to_sql()} with fractional "
                            f"literal {value!r} can never match; CAST "
                            "one side explicitly",
                            span=span_of(node),
                        )
                    )
                    break
        return findings

    # -- L002 -----------------------------------------------------------
    def check_nudf_before_limit(self) -> list[LintFinding]:
        if self.statement.limit is None:
            return []
        findings: list[LintFinding] = []
        for item in self.statement.items:
            for node in walk_expression(item.expression):
                if isinstance(node, FunctionCall) and self._is_nudf(node):
                    findings.append(
                        LintFinding(
                            "L002",
                            f"nUDF {node.name}() in the SELECT list runs "
                            "over every qualifying row before LIMIT "
                            f"{self.statement.limit} truncates; filter "
                            "or limit in a subquery first",
                            span=span_of(node),
                        )
                    )
        return findings

    # -- L003 -----------------------------------------------------------
    def check_cross_join(self) -> list[LintFinding]:
        relations = self._count_relations()
        if relations < 2:
            return []
        if self._join_conditions():
            return []
        for root in (
            [self.statement.where] if self.statement.where else []
        ):
            for conjunct in split_conjuncts(root):
                refs = referenced_columns(conjunct)
                qualifiers = {
                    r.table.lower() for r in refs if r.table is not None
                }
                if len(qualifiers) >= 2:
                    return []  # a cross-relation predicate connects them
                if any(r.table is None for r in refs) and len(refs) >= 2:
                    return []  # bare refs may span relations; stay quiet
        span = None
        items = self._from_items()
        if items:
            span = span_of(items[-1])
        return [
            LintFinding(
                "L003",
                f"{relations} FROM relations have no connecting "
                "predicate; this is a cartesian product",
                span=span,
            )
        ]

    def _count_relations(self) -> int:
        count = 0

        def visit(table_ref: TableRef) -> None:
            nonlocal count
            if isinstance(table_ref, Join):
                assert table_ref.left and table_ref.right
                visit(table_ref.left)
                visit(table_ref.right)
            elif isinstance(table_ref, (NamedTable, DerivedTable)):
                count += 1

        for item in self._from_items():
            visit(item)
        return count

    # -- L004 -----------------------------------------------------------
    def check_non_sargable(self) -> list[LintFinding]:
        findings: list[LintFinding] = []
        for root in self._all_conditions():
            for node in walk_expression(root):
                if (
                    not isinstance(node, BinaryOp)
                    or node.op not in _COMPARISON_OPS
                ):
                    continue
                for call_side, other_side in (
                    (node.left, node.right),
                    (node.right, node.left),
                ):
                    if not isinstance(other_side, Literal):
                        continue
                    if not isinstance(call_side, FunctionCall):
                        continue
                    if call_side.name.lower() not in SCALAR_RETURNS:
                        continue  # nUDF predicates are never sargable
                    if not referenced_columns(call_side):
                        continue
                    findings.append(
                        LintFinding(
                            "L004",
                            f"{call_side.name}() around a column inside "
                            f"{node.to_sql()} prevents index use; "
                            "rewrite the comparison against the bare "
                            "column",
                            span=span_of(node),
                        )
                    )
                    break
        return findings

    # -- L006 -----------------------------------------------------------
    def check_null_comparison(self) -> list[LintFinding]:
        findings: list[LintFinding] = []
        expressions = list(self._all_conditions())
        expressions.extend(i.expression for i in self.statement.items)
        for root in expressions:
            for node in walk_expression(root):
                if (
                    not isinstance(node, BinaryOp)
                    or node.op not in _EQUALITY_OPS
                ):
                    continue
                null_side, other_side = node.right, node.left
                if not _is_null_literal(null_side):
                    null_side, other_side = node.left, node.right
                if not _is_null_literal(null_side):
                    continue
                negated = node.op in ("!=", "<>")
                suggestion = (
                    f"{other_side.to_sql()} IS "
                    f"{'NOT ' if negated else ''}NULL"
                )
                findings.append(
                    LintFinding(
                        "L006",
                        f"{node.to_sql()} is always UNKNOWN under "
                        "three-valued logic (no row ever passes); "
                        f"write {suggestion} instead",
                        span=span_of(node),
                    )
                )
        return findings

    # -- L007/L008/L009/L010 --------------------------------------------
    def check_dataflow(
        self, earlier: Optional[list[LintFinding]] = None
    ) -> list[LintFinding]:
        if self._dataflow_env is None:
            return []
        # L001 (lossy cast) and L006 (NULL equality) diagnose *why* a
        # conjunct can never pass; repeating the generic L007 on top of
        # them is noise, so contradictions whose conjunct contains one
        # of those findings are suppressed.
        covered = [
            f.span
            for f in (earlier or [])
            if f.code in ("L001", "L006") and f.span is not None
        ]
        findings: list[LintFinding] = []
        notes: list[dataflow.Note] = []
        for condition in self._predicate_conditions():
            fold = dataflow.fold_conjuncts(
                condition, self._dataflow_env.copy()
            )
            notes.extend(fold.notes)
            for outcome in fold.outcomes:
                if outcome.status == "never_true":
                    # Conjuncts after a contradiction are evaluated
                    # under an infeasible assumption; anything the
                    # lattice says about them is vacuous.  Report the
                    # first contradiction only.
                    # ``x IS NULL`` on a column whose statistics show
                    # no NULLs is a data-dependent contradiction on the
                    # *correct* idiom — the fold still prunes it, but
                    # warning would punish well-written queries.
                    if isinstance(outcome.original, IsNull):
                        break
                    span = span_of(outcome.original)
                    if span is None or not any(
                        span.start <= c.start and c.end <= span.end
                        for c in covered
                    ):
                        findings.append(
                            LintFinding(
                                "L007",
                                f"{outcome.original.to_sql()} can never "
                                "be TRUE given the surrounding "
                                "conditions and table statistics; the "
                                "query returns no rows — remove or "
                                "correct the condition",
                                span=span,
                            )
                        )
                    break
                elif outcome.status == "always_true":
                    # Same reasoning as the IS NULL case above: a
                    # statistics-proven ``IS NOT NULL`` tautology is a
                    # property of today's data, not a query mistake.
                    if isinstance(outcome.original, IsNull):
                        continue
                    findings.append(
                        LintFinding(
                            "L008",
                            f"{outcome.original.to_sql()} is always "
                            "TRUE here; drop the redundant condition",
                            span=span_of(outcome.original),
                        )
                    )
        for item in self.statement.items:
            dataflow.analyze_expression(
                item.expression, self._dataflow_env.copy(), notes
            )
        for order in self.statement.order_by:
            dataflow.analyze_expression(
                order.expression, self._dataflow_env.copy(), notes
            )
        seen: set[tuple[Any, int]] = set()
        for note in notes:
            key = (note.kind, id(note.node))
            if key in seen:
                continue
            seen.add(key)
            if note.kind is dataflow.NoteKind.DIVISION_BY_ZERO:
                findings.append(
                    LintFinding(
                        "L009",
                        f"{note.detail}; guard it, e.g. "
                        "IF(divisor != 0, ..., NULL)",
                        span=span_of(note.node),
                    )
                )
            elif note.kind is dataflow.NoteKind.INT64_OVERFLOW:
                findings.append(
                    LintFinding(
                        "L010",
                        f"{note.detail}; cast an operand to FLOAT64 or "
                        "narrow the inputs",
                        span=span_of(note.node),
                    )
                )
        return findings

    # -- L005 -----------------------------------------------------------
    def check_nudf_ordering(self) -> list[LintFinding]:
        if self.udfs is None or self.statement.where is None:
            return []
        estimates: list[tuple[Expression, str, float]] = []
        for conjunct in split_conjuncts(self.statement.where):
            parsed = parse_udf_comparison(conjunct)
            if parsed is None:
                continue
            name, label, negated = parsed
            if name not in self.udfs:
                continue
            udf = self.udfs.get(name)
            if udf.selectivity_of is None:
                continue
            selectivity = float(udf.selectivity_of(label))
            if negated:
                selectivity = 1.0 - selectivity
            estimates.append((conjunct, udf.name, selectivity))
        if len(estimates) < 2:
            return []
        findings: list[LintFinding] = []
        for position in range(len(estimates) - 1):
            conjunct, name, selectivity = estimates[position]
            _, next_name, next_selectivity = estimates[position + 1]
            if selectivity > next_selectivity + 1e-9:
                findings.append(
                    LintFinding(
                        "L005",
                        f"nUDF conjunct on {name}() (selectivity "
                        f"{selectivity:.2f}) is written before the more "
                        f"selective {next_name}() "
                        f"({next_selectivity:.2f}); evaluate the "
                        "selective predicate first",
                        span=span_of(conjunct),
                    )
                )
        return findings
