"""Query linter: advisory warnings with stable codes.

Lint findings never block execution — they flag queries that will run
but probably shouldn't be written that way.  Rules:

=====  ==============================================================
L001   implicit lossy cast: equality between an INT64 expression and a
       fractional FLOAT64 literal (always false after truncation)
L002   nUDF in the SELECT list of a LIMIT query — inference runs over
       every candidate row before the limit truncates
L003   cross join with no connecting predicate between FROM relations
L004   non-sargable predicate: builtin function wrapped around a column
       inside a comparison against a literal
L005   multiple nUDF conjuncts written in an order that contradicts
       their estimated selectivities (cheapest filter should run first)
L006   comparison against the NULL literal (``x = NULL`` / ``x != NULL``)
       — always UNKNOWN under three-valued logic, so the predicate never
       passes; the fix-it suggests ``IS [NOT] NULL``
=====  ==============================================================

``lint_statement`` is pure analysis (no execution); when no catalog is
supplied the binder runs in lenient mode and type-dependent rules simply
see *unknown* types and stay quiet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.analysis.semantic import SemanticAnalyzer, _Scope
from repro.analysis.types import SCALAR_RETURNS
from repro.engine.udf import parse_udf_comparison
from repro.errors import SemanticError
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    DerivedTable,
    Expression,
    FunctionCall,
    Join,
    Literal,
    NamedTable,
    SelectStatement,
    TableRef,
    referenced_columns,
    split_conjuncts,
    walk_expression,
)
from repro.sql.spans import Span, line_and_column, span_of
from repro.storage.schema import DataType

#: Rule catalog: code -> one-line description (rendered by ``repro lint``).
LINT_RULES: dict[str, str] = {
    "L001": "equality against a fractional literal is an implicit lossy cast",
    "L002": "nUDF in SELECT list runs before LIMIT truncates",
    "L003": "cross join without a connecting predicate",
    "L004": "function call around a column makes the predicate non-sargable",
    "L005": "nUDF conjuncts not ordered by estimated selectivity",
    "L006": "comparison with NULL is always UNKNOWN; use IS [NOT] NULL",
}

_EQUALITY_OPS = ("=", "!=", "<>")
_COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def _is_null_literal(expression: Expression) -> bool:
    return isinstance(expression, Literal) and expression.value is None


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic."""

    code: str
    message: str
    span: Optional[Span] = None
    severity: str = "warning"

    def render(self, source: str = "") -> str:
        location = ""
        if self.span is not None and source:
            line, column = line_and_column(source, self.span.start)
            location = f"{line}:{column}: "
        return f"{location}{self.severity} {self.code}: {self.message}"

    def to_dict(self, source: str = "") -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = {"start": self.span.start, "end": self.span.end}
            if source:
                line, column = line_and_column(source, self.span.start)
                payload["line"] = line
                payload["column"] = column
                payload["snippet"] = self.span.snippet(source)
        return payload


def lint_statement(
    statement: SelectStatement,
    source: str = "",
    *,
    catalog: Any = None,
    functions: Any = None,
    udfs: Any = None,
) -> list[LintFinding]:
    """Run every lint rule over one SELECT statement."""
    linter = _Linter(statement, catalog, functions, udfs)
    findings: list[LintFinding] = []
    findings.extend(linter.check_lossy_equality())
    findings.extend(linter.check_nudf_before_limit())
    findings.extend(linter.check_cross_join())
    findings.extend(linter.check_non_sargable())
    findings.extend(linter.check_nudf_ordering())
    findings.extend(linter.check_null_comparison())
    findings.sort(key=lambda f: (f.span.start if f.span else 1 << 30, f.code))
    return findings


class _Linter:
    def __init__(
        self,
        statement: SelectStatement,
        catalog: Any,
        functions: Any,
        udfs: Any,
    ) -> None:
        self.statement: SelectStatement = statement
        self.udfs = udfs
        self._analyzer = SemanticAnalyzer(
            catalog, functions, udfs, strict=False
        )
        try:
            self._scope: Optional[_Scope] = self._analyzer._build_scope(
                statement
            )
        except SemanticError:
            self._scope = None

    # -- shared helpers -------------------------------------------------
    def _type_of(self, expression: Expression) -> Optional[DataType]:
        if self._scope is None:
            return None
        try:
            return self._analyzer._infer(
                expression, self._scope, allow_aggregates=True
            )
        except SemanticError:
            return None

    def _is_nudf(self, call: FunctionCall) -> bool:
        if self.udfs is not None and call.name in self.udfs:
            return bool(self.udfs.get(call.name).is_neural)
        return call.name.lower().startswith("nudf")

    def _all_conditions(self) -> Iterator[Expression]:
        if self.statement.where is not None:
            yield self.statement.where
        if self.statement.having is not None:
            yield self.statement.having
        for condition in self._join_conditions():
            yield condition

    def _join_conditions(self) -> list[Expression]:
        conditions: list[Expression] = []

        def visit(table_ref: TableRef) -> None:
            if isinstance(table_ref, Join):
                assert table_ref.left and table_ref.right
                visit(table_ref.left)
                visit(table_ref.right)
                if table_ref.condition is not None:
                    conditions.append(table_ref.condition)

        for item in self._from_items():
            visit(item)
        return conditions

    def _from_items(self) -> list[TableRef]:
        items: list[TableRef] = []
        if self.statement.from_clause is not None:
            items.append(self.statement.from_clause)
        items.extend(self.statement.cross_tables)
        return items

    # -- L001 -----------------------------------------------------------
    def check_lossy_equality(self) -> list[LintFinding]:
        findings: list[LintFinding] = []
        expressions = list(self._all_conditions())
        expressions.extend(i.expression for i in self.statement.items)
        for root in expressions:
            for node in walk_expression(root):
                if (
                    not isinstance(node, BinaryOp)
                    or node.op not in _EQUALITY_OPS
                ):
                    continue
                for literal_side, other_side in (
                    (node.right, node.left),
                    (node.left, node.right),
                ):
                    if not isinstance(literal_side, Literal):
                        continue
                    value = literal_side.value
                    if not isinstance(value, float) or value == int(value):
                        continue
                    if self._type_of(other_side) is not DataType.INT64:
                        continue
                    findings.append(
                        LintFinding(
                            "L001",
                            f"comparing INT64 expression "
                            f"{other_side.to_sql()} with fractional "
                            f"literal {value!r} can never match; CAST "
                            "one side explicitly",
                            span=span_of(node),
                        )
                    )
                    break
        return findings

    # -- L002 -----------------------------------------------------------
    def check_nudf_before_limit(self) -> list[LintFinding]:
        if self.statement.limit is None:
            return []
        findings: list[LintFinding] = []
        for item in self.statement.items:
            for node in walk_expression(item.expression):
                if isinstance(node, FunctionCall) and self._is_nudf(node):
                    findings.append(
                        LintFinding(
                            "L002",
                            f"nUDF {node.name}() in the SELECT list runs "
                            "over every qualifying row before LIMIT "
                            f"{self.statement.limit} truncates; filter "
                            "or limit in a subquery first",
                            span=span_of(node),
                        )
                    )
        return findings

    # -- L003 -----------------------------------------------------------
    def check_cross_join(self) -> list[LintFinding]:
        relations = self._count_relations()
        if relations < 2:
            return []
        if self._join_conditions():
            return []
        for root in (
            [self.statement.where] if self.statement.where else []
        ):
            for conjunct in split_conjuncts(root):
                refs = referenced_columns(conjunct)
                qualifiers = {
                    r.table.lower() for r in refs if r.table is not None
                }
                if len(qualifiers) >= 2:
                    return []  # a cross-relation predicate connects them
                if any(r.table is None for r in refs) and len(refs) >= 2:
                    return []  # bare refs may span relations; stay quiet
        span = None
        items = self._from_items()
        if items:
            span = span_of(items[-1])
        return [
            LintFinding(
                "L003",
                f"{relations} FROM relations have no connecting "
                "predicate; this is a cartesian product",
                span=span,
            )
        ]

    def _count_relations(self) -> int:
        count = 0

        def visit(table_ref: TableRef) -> None:
            nonlocal count
            if isinstance(table_ref, Join):
                assert table_ref.left and table_ref.right
                visit(table_ref.left)
                visit(table_ref.right)
            elif isinstance(table_ref, (NamedTable, DerivedTable)):
                count += 1

        for item in self._from_items():
            visit(item)
        return count

    # -- L004 -----------------------------------------------------------
    def check_non_sargable(self) -> list[LintFinding]:
        findings: list[LintFinding] = []
        for root in self._all_conditions():
            for node in walk_expression(root):
                if (
                    not isinstance(node, BinaryOp)
                    or node.op not in _COMPARISON_OPS
                ):
                    continue
                for call_side, other_side in (
                    (node.left, node.right),
                    (node.right, node.left),
                ):
                    if not isinstance(other_side, Literal):
                        continue
                    if not isinstance(call_side, FunctionCall):
                        continue
                    if call_side.name.lower() not in SCALAR_RETURNS:
                        continue  # nUDF predicates are never sargable
                    if not referenced_columns(call_side):
                        continue
                    findings.append(
                        LintFinding(
                            "L004",
                            f"{call_side.name}() around a column inside "
                            f"{node.to_sql()} prevents index use; "
                            "rewrite the comparison against the bare "
                            "column",
                            span=span_of(node),
                        )
                    )
                    break
        return findings

    # -- L006 -----------------------------------------------------------
    def check_null_comparison(self) -> list[LintFinding]:
        findings: list[LintFinding] = []
        expressions = list(self._all_conditions())
        expressions.extend(i.expression for i in self.statement.items)
        for root in expressions:
            for node in walk_expression(root):
                if (
                    not isinstance(node, BinaryOp)
                    or node.op not in _EQUALITY_OPS
                ):
                    continue
                null_side, other_side = node.right, node.left
                if not _is_null_literal(null_side):
                    null_side, other_side = node.left, node.right
                if not _is_null_literal(null_side):
                    continue
                negated = node.op in ("!=", "<>")
                suggestion = (
                    f"{other_side.to_sql()} IS "
                    f"{'NOT ' if negated else ''}NULL"
                )
                findings.append(
                    LintFinding(
                        "L006",
                        f"{node.to_sql()} is always UNKNOWN under "
                        "three-valued logic (no row ever passes); "
                        f"write {suggestion} instead",
                        span=span_of(node),
                    )
                )
        return findings

    # -- L005 -----------------------------------------------------------
    def check_nudf_ordering(self) -> list[LintFinding]:
        if self.udfs is None or self.statement.where is None:
            return []
        estimates: list[tuple[Expression, str, float]] = []
        for conjunct in split_conjuncts(self.statement.where):
            parsed = parse_udf_comparison(conjunct)
            if parsed is None:
                continue
            name, label, negated = parsed
            if name not in self.udfs:
                continue
            udf = self.udfs.get(name)
            if udf.selectivity_of is None:
                continue
            selectivity = float(udf.selectivity_of(label))
            if negated:
                selectivity = 1.0 - selectivity
            estimates.append((conjunct, udf.name, selectivity))
        if len(estimates) < 2:
            return []
        findings: list[LintFinding] = []
        for position in range(len(estimates) - 1):
            conjunct, name, selectivity = estimates[position]
            _, next_name, next_selectivity = estimates[position + 1]
            if selectivity > next_selectivity + 1e-9:
                findings.append(
                    LintFinding(
                        "L005",
                        f"nUDF conjunct on {name}() (selectivity "
                        f"{selectivity:.2f}) is written before the more "
                        f"selective {next_name}() "
                        f"({next_selectivity:.2f}); evaluate the "
                        "selective predicate first",
                        span=span_of(conjunct),
                    )
                )
        return findings
