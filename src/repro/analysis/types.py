"""Static type tables for the semantic analyzer.

These mirror what the runtime actually produces (``engine/expressions.py``
for scalar builtins, ``engine/physical.py`` for aggregates) so the types
the analyzer annotates onto a plan are the types execution delivers.  When
a rule here and the runtime disagree, the runtime wins — fix this table.

``None`` stands for *unknown*: expressions whose type cannot be pinned
down statically (open relations in lenient mode, BLOB-typed payloads fed
to nUDFs).  Unknown is contagious and never produces an error on its own.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.schema import DataType

#: Scalar builtins with a fixed result type, keyed by lowercase name.
#: ``if`` is absent on purpose — its result type is its THEN-branch type
#: and is special-cased in the analyzer.
SCALAR_RETURNS: dict[str, DataType] = {
    "abs": DataType.FLOAT64,
    "sqrt": DataType.FLOAT64,
    "exp": DataType.FLOAT64,
    "ln": DataType.FLOAT64,
    "log": DataType.FLOAT64,
    "floor": DataType.FLOAT64,
    "ceil": DataType.FLOAT64,
    "tanh": DataType.FLOAT64,
    "sign": DataType.FLOAT64,
    "sigmoid": DataType.FLOAT64,
    "round": DataType.FLOAT64,
    "pow": DataType.FLOAT64,
    "power": DataType.FLOAT64,
    "greatest": DataType.FLOAT64,
    "least": DataType.FLOAT64,
    "intdiv": DataType.INT64,
    "modulo": DataType.INT64,
    "length": DataType.INT64,
    "like": DataType.BOOL,
    "lower": DataType.STRING,
    "upper": DataType.STRING,
    "tostring": DataType.STRING,
    "tofloat64": DataType.FLOAT64,
    "toint64": DataType.INT64,
    "todate": DataType.DATE,
}


def aggregate_return_type(
    name: str, arg_dtype: Optional[DataType]
) -> Optional[DataType]:
    """Result type of aggregate ``name`` over an argument of ``arg_dtype``.

    Mirrors ``physical._compute_aggregate`` exactly, including the integer
    accumulation path for ``sum`` and the min/max numeric passthrough.
    """
    lowered = name.lower()
    if lowered in ("count", "countif"):
        return DataType.INT64
    if lowered == "sumif":
        return DataType.FLOAT64
    if lowered == "grouparray":
        return DataType.BLOB
    if lowered == "any":
        return arg_dtype
    if lowered == "sum":
        if arg_dtype is None:
            return None
        if arg_dtype in (DataType.INT64, DataType.BOOL):
            return DataType.INT64
        return DataType.FLOAT64
    if lowered in ("min", "max"):
        if arg_dtype is None:
            return None
        return arg_dtype if arg_dtype.is_numeric else DataType.FLOAT64
    if lowered in ("avg", "stddevsamp", "stddevpop", "varsamp", "varpop"):
        return DataType.FLOAT64
    return None


#: Aggregates whose result can never be NULL, regardless of input.
#: ``count``/``countIf`` return 0 over empty groups and ``groupArray``
#: returns an empty list; every other aggregate yields NULL when its
#: group has no non-NULL argument rows (``physical._group_validity``).
_NON_NULLABLE_AGGREGATES = frozenset(("count", "countif", "grouparray"))


def aggregate_nullable(name: str) -> bool:
    """Whether aggregate ``name`` can produce NULL.

    Mirrors ``physical._compute_aggregate``: SUM/AVG/MIN/MAX/stddev/var/
    any/sumIf over an empty or all-NULL group are NULL; COUNT variants
    and groupArray always produce a definite value.
    """
    return name.lower() not in _NON_NULLABLE_AGGREGATES


def comparison_ok(
    left: Optional[DataType], right: Optional[DataType]
) -> bool:
    """Whether comparing ``left`` against ``right`` is statically legal.

    The engine's runtime comparison is deliberately permissive (numpy
    coercion plus the DATE/STRING literal path); this codifies the pairs
    that are *meaningful* and rejects the rest before execution.  Either
    side unknown is always OK — lenient mode must not guess.
    """
    if left is None or right is None:
        return True
    if left is right:
        return True
    # DATE literals arrive as strings ('2021-01-31') and are coerced by
    # the evaluator; this pair must stay legal in both directions.
    if {left, right} == {DataType.DATE, DataType.STRING}:
        return True
    # BLOB columns hold arbitrary payloads (keyframes, grouped arrays);
    # the analyzer cannot see inside them.
    if DataType.BLOB in (left, right):
        return True
    numeric_like = (DataType.INT64, DataType.FLOAT64, DataType.BOOL, DataType.DATE)
    if left in numeric_like and right in numeric_like:
        return True
    return False


def arithmetic_ok(
    left: Optional[DataType], right: Optional[DataType]
) -> bool:
    """Whether ``left <op> right`` arithmetic is statically legal."""
    if left is None or right is None:
        return True
    if DataType.BLOB in (left, right):
        return True
    if DataType.STRING in (left, right):
        return False
    return True


def arithmetic_result(
    op: str, left: Optional[DataType], right: Optional[DataType]
) -> Optional[DataType]:
    """Result type of numeric ``left <op> right``; None when either side
    is unknown.  Division always goes through float64, everything else
    stays int64 only when both operands are integral (INT64 or DATE)."""
    if left is None or right is None:
        return None
    if op == "/":
        return DataType.FLOAT64
    integral = (DataType.INT64, DataType.DATE)
    if left in integral and right in integral:
        return DataType.INT64
    return DataType.FLOAT64
