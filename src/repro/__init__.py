"""Reproduction of "A Comparative Study of in-Database Inference
Approaches" (ICDE 2022).

Public entry points:

* :class:`repro.engine.Database` — the in-memory columnar SQL engine
  (ClickHouse substitute) with UDF support;
* :mod:`repro.tensor` — the numpy NN inference framework (PyTorch
  substitute) with ResNet/student builders and serialization;
* :mod:`repro.core` — DL2SQL: model-to-SQL compilation, the customized
  cost model and the optimizer hint rules;
* :mod:`repro.strategies` — the three collaborative-query strategies
  (DB-PyTorch, DB-UDF, DL2SQL/-OP) behind one interface;
* :mod:`repro.workload` — the synthetic Alibaba IoT textile workload,
  model repository, query templates and benchmark runner;
* :mod:`repro.experiments` — drivers regenerating every table and figure
  of the paper's evaluation.
"""

from repro.engine import Database
from repro.hardware import EDGE_ARM, SERVER_CPU, SERVER_GPU, HardwareProfile

__version__ = "1.0.0"

__all__ = [
    "Database",
    "EDGE_ARM",
    "HardwareProfile",
    "SERVER_CPU",
    "SERVER_GPU",
    "__version__",
]
