"""Hierarchical query-lifecycle tracing.

A :class:`Tracer` produces nested :class:`Span` trees covering the whole
query path — ``query → parse → plan → optimize → execute →
operator:<kind>`` — plus the strategy-boundary stages (``decompose``,
``db_subquery``, ``transfer``, ``inference``, ``assemble``) the three
collaborative-query strategies emit.  Spans carry attributes (row counts,
transfer bytes, estimated costs), which is how the paper's Fig. 10 time
breakdown and the DB↔DL boundary costs become visible per query instead
of per process.

Zero overhead when disabled: ``Tracer.span`` returns a module-level null
span without allocating anything, so benchmark hot paths are unaffected
by default (``tests/obs/test_trace.py`` pins this with a call-count spy).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Optional


class Span:
    """One timed stage of a query, with attributes and child spans.

    Spans are context managers; entering pushes onto the tracer's stack so
    any span opened inside becomes a child, exiting pops and finalizes the
    duration.  Attribute access after completion is the normal use.
    """

    __slots__ = (
        "name",
        "started",
        "ended",
        "attributes",
        "children",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        attributes: Optional[dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.started = 0.0
        self.ended = 0.0
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []
        self._tracer = tracer

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.started = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.ended = self._tracer.clock()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def add(self, key: str, delta: float) -> None:
        """Accumulate a numeric attribute (e.g. transfer bytes)."""
        self.attributes[key] = self.attributes.get(key, 0) + delta

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while open)."""
        if self.ended <= 0.0:
            return 0.0
        return self.ended - self.started

    @property
    def self_duration(self) -> float:
        """Duration minus the time spent in direct children."""
        return max(
            0.0, self.duration - sum(c.duration for c in self.children)
        )

    # ------------------------------------------------------------------
    def find(self, name: str) -> Optional["Span"]:
        """First descendant (pre-order, including self) with ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant (pre-order, including self) with ``name``."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find_all(name))
        return out

    def walk(self):
        """Yield self and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation of the subtree."""
        return {
            "name": self.name,
            "duration_ms": round(self.duration * 1e3, 6),
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    name = "<disabled>"
    attributes: dict[str, Any] = {}
    children: list[Span] = []
    duration = 0.0
    self_duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, delta: float) -> None:
        pass

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> list[Span]:
        return []

    def walk(self):
        return iter(())

    def to_dict(self) -> dict[str, Any]:
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees for the queries executed while enabled.

    One tracer serves one execution context (typically one
    :class:`~repro.engine.database.Database`).  Completed root spans are
    kept in :attr:`traces`, newest last, capped at ``max_traces``.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        max_traces: int = 64,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.max_traces = max_traces
        self.traces: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span | _NullSpan:
        """Open a new span (nested under the current one, if any)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, self, dict(attributes) if attributes else None)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (a span leaked across an exception
        # boundary): unwind down to and including the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if not self._stack and span.ended > 0.0 and not _is_child(span, self.traces):
            self.traces.append(span)
            if len(self.traces) > self.max_traces:
                del self.traces[: len(self.traces) - self.max_traces]

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def last_trace(self) -> Optional[Span]:
        """The most recently completed root span."""
        return self.traces[-1] if self.traces else None

    def reset(self) -> None:
        self.traces.clear()
        self._stack.clear()


def _is_child(span: Span, roots: list[Span]) -> bool:
    """Guard against double-adding a span already rooted elsewhere."""
    return any(span in root.walk() for root in roots if root is not span)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_span_tree(span: Span, indent: int = 0) -> str:
    """Render a span tree as indented text, one line per span.

    Example::

        query                         12.345 ms  sql=SELECT ...
          parse                        0.120 ms
          plan                         0.210 ms
          optimize                     0.530 ms
          execute                     11.400 ms
            operator:scan              3.100 ms  rows=50000
    """
    pad = "  " * indent
    attributes = "  ".join(
        f"{key}={_format_attr(value)}"
        for key, value in sorted(span.attributes.items())
    )
    line = f"{pad}{span.name:<{max(1, 36 - len(pad))}} {span.duration * 1e3:>10.3f} ms"
    if attributes:
        line += f"  {attributes}"
    lines = [line]
    for child in span.children:
        lines.append(format_span_tree(child, indent + 1))
    return "\n".join(lines)


def _format_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str) and len(value) > 60:
        return value[:57] + "..."
    return str(value)


def trace_to_json(span: Span) -> str:
    """One span tree as a JSON document."""
    return json.dumps(span.to_dict(), indent=2, sort_keys=False)
