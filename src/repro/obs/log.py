"""Structured logging for the repro package.

Every module obtains its logger through :func:`get_logger` so the whole
tree hangs under the ``repro`` root logger.  Libraries stay silent by
default (a ``NullHandler`` on the root); applications — the CLI's
``--verbose/-v`` flag, tests — opt in with :func:`setup_logging`.

The engine logs *decisions*, not progress: which hint placement won and
at what estimated cost, which selectivity estimate was used (histogram or
fallback), plan-cache hits.  These were previously silent fallbacks; at
``-vv`` they become a readable account of why a plan looks the way it
does.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

ROOT_NAME = "repro"

#: Attached to handlers installed by setup_logging so repeated calls
#: reconfigure instead of stacking handlers.
_HANDLER_MARKER = "_repro_obs_handler"

_FORMAT = "%(levelname)-7s %(name)s: %(message)s"

# Library default: never print unless the application configures logging.
logging.getLogger(ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` root.

    ``get_logger("engine.optimizer")`` and
    ``get_logger("repro.engine.optimizer")`` return the same logger.
    """
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def setup_logging(
    verbosity: int = 0, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Configure the ``repro`` root logger for an application run.

    ``verbosity`` maps the CLI's ``-v`` count: 0 → WARNING, 1 → INFO,
    2+ → DEBUG.  Calling again replaces the previously installed handler
    (idempotent), so tests can re-point the stream freely.
    """
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(level_for(verbosity))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _HANDLER_MARKER, True)
    root.addHandler(handler)
    return root


def level_for(verbosity: int) -> int:
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG
