"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The engine reports operational counts here — queries executed, rows
scanned, UDF batch sizes, plan-cache and hint decisions — and the
registry renders them as JSON (for sidecar files and ``repro stats``) or
Prometheus text exposition format (for scraping in a deployment).

Metrics are cheap (a dict lookup and an add), but every recording site in
the engine is still gated on the database having a registry attached, so
the default benchmark configuration does no metrics work at all.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Optional, Sequence

#: Default histogram buckets (seconds-oriented, Prometheus-style).
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for size-ish quantities (rows, bytes).
DEFAULT_SIZE_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """A monotonically increasing value.

    Updates are lock-protected: UDF morsel workers may report from
    several threads at once, and ``+=`` on a float is not atomic.
    """

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def set_to_at_least(self, value: float) -> None:
        """Raise the counter to ``value`` if it is currently below.

        For mirroring an external cumulative count (e.g. the inference
        cache's eviction total) without ever moving backwards.
        """
        with self._lock:
            if value > self.value:
                self.value = float(value)

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class LabeledCounter:
    """A family of monotonically increasing values keyed by one label.

    The engine's morsel workers report per-worker-thread counts here
    (``parallel_morsels_total{worker="repro-morsel_0"}``), so hot/cold
    worker imbalance is visible without per-thread metric names.
    Updates are lock-protected like :class:`Counter`.
    """

    __slots__ = ("name", "help", "label", "values", "_lock")

    def __init__(self, name: str, help: str = "", label: str = "label") -> None:
        self.name = name
        self.help = help
        self.label = label
        self.values: dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, label_value: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = str(label_value)
        with self._lock:
            self.values[key] = self.values.get(key, 0.0) + amount

    def total(self) -> float:
        with self._lock:
            return sum(self.values.values())

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "labeled_counter",
                "label": self.label,
                "values": dict(sorted(self.values.items())),
            }


class Gauge:
    """A value that can go up and down (updates are lock-protected)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the rest.  ``observe`` is O(log n)
    in the number of buckets.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = ordered
        #: Per-bucket (non-cumulative) counts; index len(buckets) is +Inf.
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative counts, one per bucket plus +Inf."""
        out = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": {
                str(bound): count
                for bound, count in zip(
                    [*self.buckets, "+Inf"], self.cumulative_counts()
                )
            },
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Name -> metric mapping with get-or-create accessors and exporters.

    All accessors are idempotent: requesting an existing name returns the
    existing instance (and raises if it was registered as another kind).
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def labeled_counter(
        self, name: str, help: str = "", label: str = "label"
    ) -> LabeledCounter:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = LabeledCounter(name, help, label)
                self._metrics[name] = metric
            elif not isinstance(metric, LabeledCounter):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def _get_or_create(self, name: str, cls: type, help: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            name: self._metrics[name].to_dict() for name in self.names()
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            full = f"{self.namespace}_{name}"
            if metric.help:
                lines.append(f"# HELP {full} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {_format_value(metric.value)}")
            elif isinstance(metric, LabeledCounter):
                lines.append(f"# TYPE {full} counter")
                for label_value, count in sorted(metric.to_dict()["values"].items()):
                    lines.append(
                        f'{full}{{{metric.label}="{label_value}"}} '
                        f"{_format_value(count)}"
                    )
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {_format_value(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {full} histogram")
                cumulative = metric.cumulative_counts()
                for bound, count in zip(metric.buckets, cumulative):
                    lines.append(
                        f'{full}_bucket{{le="{_format_value(bound)}"}} {count}'
                    )
                lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{full}_sum {_format_value(metric.sum)}")
                lines.append(f"{full}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


#: The process-wide default registry.  The engine never assumes it — a
#: Database records metrics only into the registry explicitly attached to
#: it — but the CLI and benchmark sidecars share this one.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
