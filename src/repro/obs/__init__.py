"""Observability: tracing, metrics, and logging for the whole query path.

Three small, dependency-free pieces share one design rule — zero work
when disabled — so the default benchmark configuration is unaffected:

* :mod:`repro.obs.trace` — hierarchical :class:`Span` trees per query
  (``query → parse → plan → optimize → execute → operator:<kind>`` plus
  the strategies' DB↔DL boundary stages);
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) with JSON and Prometheus
  text exporters;
* :mod:`repro.obs.log` — ``logging`` setup for the ``repro.*`` tree,
  driven by the CLI's ``--verbose`` flag.

See ``docs/observability.md`` for the span model and metric names.
"""

from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import (
    Counter,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    format_span_tree,
    trace_to_json,
)

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "format_span_tree",
    "get_logger",
    "get_registry",
    "setup_logging",
    "trace_to_json",
]
