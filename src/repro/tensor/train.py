"""Calibration and distillation utilities.

The paper's hint rules need, per nUDF, a histogram ``H(c_i)`` counting
how many training samples the model predicts as each class (Eq. 10); the
empirical class probabilities become the nUDF's selectivity estimates.
:func:`calibrate_class_histogram` computes exactly that.

The paper also distills its ResNet34 teachers into 3-block students.  Full
gradient training is out of scope for a forward-only framework, so
:func:`distill_linear_head` implements the honest lightweight variant:
the student's convolutional features stay fixed and its final linear head
is fit to the *teacher's logits* by ridge regression — logit-matching
distillation restricted to the last layer.  This genuinely transfers the
teacher's decision surface into the student head (verified by the
agreement metric it returns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TensorError
from repro.tensor.layers import Linear, Softmax
from repro.tensor.model import Model


def calibrate_class_histogram(
    model: Model, samples: Sequence[np.ndarray]
) -> dict[int, int]:
    """Histogram of predicted classes over ``samples`` (Eq. 10's H(c_i))."""
    histogram: dict[int, int] = {}
    for sample in samples:
        predicted = model.predict_class(sample)
        histogram[predicted] = histogram.get(predicted, 0) + 1
    num_classes = model.output_shape[0]
    for class_index in range(num_classes):
        histogram.setdefault(class_index, 0)
    return histogram


def class_probabilities(histogram: dict[int, int]) -> dict[int, float]:
    """Eq. 10: ``Pr(c_i) = H(c_i) / sum_j H(c_j)``."""
    total = sum(histogram.values())
    if total == 0:
        uniform = 1.0 / max(len(histogram), 1)
        return {c: uniform for c in histogram}
    return {c: count / total for c, count in histogram.items()}


@dataclass
class DistillationReport:
    """Outcome of a distillation run."""

    agreement: float
    num_samples: int
    teacher_name: str
    student_name: str


def distill_linear_head(
    student: Model,
    teacher: Model,
    samples: Sequence[np.ndarray],
    ridge: float = 1e-3,
) -> DistillationReport:
    """Fit the student's final Linear layer to the teacher's logits.

    The student must end in ``Linear[, Softmax]``.  Features are the
    student's activations entering that Linear layer; targets are the
    teacher's pre-softmax logits.  Solved in closed form:
    ``W = (F^T F + λI)^{-1} F^T L``.
    """
    head_index, head = _final_linear(student)
    teacher_head_index, _ = _final_linear(teacher)

    features = []
    teacher_logits = []
    for sample in samples:
        out = np.asarray(sample, dtype=np.float64)
        for layer in student.layers[:head_index]:
            out = layer.forward(out)
        features.append(out.reshape(-1))

        t_out = np.asarray(sample, dtype=np.float64)
        for layer in teacher.layers[: teacher_head_index + 1]:
            t_out = layer.forward(t_out)
        teacher_logits.append(t_out.reshape(-1))

    feature_matrix = np.stack(features)          # [N, d]
    logit_matrix = np.stack(teacher_logits)      # [N, k]
    if logit_matrix.shape[1] != head.out_features:
        raise TensorError(
            f"teacher produces {logit_matrix.shape[1]} classes, student head "
            f"has {head.out_features}"
        )

    # Ridge regression with a bias term.
    augmented = np.hstack(
        [feature_matrix, np.ones((feature_matrix.shape[0], 1))]
    )
    gram = augmented.T @ augmented
    gram += ridge * np.eye(gram.shape[0])
    solution = np.linalg.solve(gram, augmented.T @ logit_matrix)  # [d+1, k]
    head.weight = solution[:-1].T.copy()
    head.bias = solution[-1].copy()

    agree = sum(
        1
        for sample in samples
        if student.predict_class(sample) == teacher.predict_class(sample)
    )
    return DistillationReport(
        agreement=agree / max(len(samples), 1),
        num_samples=len(samples),
        teacher_name=teacher.name,
        student_name=student.name,
    )


def _final_linear(model: Model) -> tuple[int, Linear]:
    for index in range(len(model.layers) - 1, -1, -1):
        layer = model.layers[index]
        if isinstance(layer, Linear):
            return index, layer
        if not isinstance(layer, Softmax):
            break
    raise TensorError(
        f"model {model.name!r} does not end in Linear[, Softmax]"
    )
