"""Forward-pass numpy kernels for the supported neural operators.

All functions take channel-first single-sample tensors ``[C, H, W]`` and
are deterministic, which lets the DL2SQL parity tests compare SQL-computed
feature maps against these references element by element.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TensorError


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of a ``[C, H, W]`` tensor."""
    if padding == 0:
        return x
    if padding < 0:
        raise TensorError(f"negative padding {padding}")
    return np.pad(x, ((0, 0), (padding, padding), (padding, padding)))


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Eq. 3 of the paper: output spatial extent of a convolution."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise TensorError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``[C, H, W]`` into column form ``[C*k*k, H_out*W_out]``.

    This is the dense-tensor analogue of DL2SQL's feature-map table
    (Algorithm 1): each output column lists the receptive-field values of
    one kernel placement, exactly like the rows sharing one ``MatrixID``.
    """
    x = pad2d(x, padding)
    channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel, kernel), axis=(1, 2)
    )
    windows = windows[:, ::stride, ::stride, :, :]
    columns = windows.transpose(1, 2, 0, 3, 4).reshape(
        out_h * out_w, channels * kernel * kernel
    )
    return columns.T, out_h, out_w


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D convolution: ``[C,H,W] -> [OC,H',W']`` with weight ``[OC,C,k,k]``."""
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if kernel_h != kernel_w:
        raise TensorError("only square kernels are supported")
    if x.shape[0] != in_channels:
        raise TensorError(
            f"input has {x.shape[0]} channels, weight expects {in_channels}"
        )
    columns, out_h, out_w = im2col(x, kernel_h, stride, padding)
    flat_weight = weight.reshape(out_channels, -1)
    out = flat_weight @ columns
    if bias is not None:
        out += bias[:, None]
    return out.reshape(out_channels, out_h, out_w)


def deconv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
) -> np.ndarray:
    """Transposed convolution (deconvolution) for upsampling layers.

    Weight layout ``[IC, OC, k, k]`` follows the PyTorch convention.
    """
    in_channels, out_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise TensorError("only square kernels are supported")
    if x.shape[0] != in_channels:
        raise TensorError(
            f"input has {x.shape[0]} channels, weight expects {in_channels}"
        )
    _, height, width = x.shape
    out_h = (height - 1) * stride + kernel
    out_w = (width - 1) * stride + kernel
    out = np.zeros((out_channels, out_h, out_w))
    for row in range(height):
        for col in range(width):
            patch = np.tensordot(x[:, row, col], weight, axes=(0, 0))
            out[
                :,
                row * stride : row * stride + kernel,
                col * stride : col * stride + kernel,
            ] += patch
    if bias is not None:
        out += bias[:, None, None]
    return out


def max_pool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Max pooling over ``[C, H, W]``."""
    return _pool2d(x, kernel, stride or kernel, np.max)


def avg_pool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Average pooling over ``[C, H, W]``."""
    return _pool2d(x, kernel, stride or kernel, np.mean)


def _pool2d(x: np.ndarray, kernel: int, stride: int, reducer) -> np.ndarray:
    channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel, kernel), axis=(1, 2)
    )[:, ::stride, ::stride]
    return reducer(windows, axis=(3, 4))[:, :out_h, :out_w]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def batch_norm(
    x: np.ndarray,
    mean: np.ndarray | None = None,
    var: np.ndarray | None = None,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 5e-5,
) -> np.ndarray:
    """Normalization as the paper computes it (Eq. 1).

    Running statistics are per channel; when ``mean``/``var`` are None the
    statistics of the input itself are used — which is also what DL2SQL's
    Q4 does with its AVG/stddev scalar subqueries over the feature table.
    """
    if mean is None:
        mean = x.mean(axis=(1, 2))
    if var is None:
        var = x.var(axis=(1, 2))
    normalized = (x - mean[:, None, None]) / np.sqrt(var[:, None, None] + eps)
    if gamma is not None:
        normalized = normalized * gamma[:, None, None]
    if beta is not None:
        normalized = normalized + beta[:, None, None]
    return normalized


def instance_norm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    eps: float = 5e-5,
) -> np.ndarray:
    """Instance normalization: per-sample, per-channel statistics."""
    return batch_norm(x, None, None, gamma, beta, eps)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Fully connected layer: ``[in] -> [out]`` with weight ``[out, in]``."""
    out = weight @ x.reshape(-1)
    if bias is not None:
        out = out + bias
    return out


def softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - np.max(x)
    exps = np.exp(shifted)
    return exps / exps.sum()


def self_attention(
    x: np.ndarray,
    w_query: np.ndarray,
    w_key: np.ndarray,
    w_value: np.ndarray,
) -> np.ndarray:
    """Single-head self attention over a token sequence ``[T, D]``.

    Listed as *unsupported* by DL2SQL in the paper's Table II — it exists
    here so the compiler can reject it explicitly (and so sequence models
    run in the DL-framework substitute).
    """
    if x.ndim != 2:
        raise TensorError(f"self attention expects [T, D], got {x.shape}")
    queries = x @ w_query.T          # [T, d]
    keys = x @ w_key.T               # [T, d]
    values = x @ w_value.T           # [T, d]
    scale = 1.0 / np.sqrt(queries.shape[1])
    scores = queries @ keys.T * scale          # [T, T]
    shifted = scores - scores.max(axis=1, keepdims=True)
    weights = np.exp(shifted)
    weights /= weights.sum(axis=1, keepdims=True)
    return weights @ values


def lstm_forward(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
) -> np.ndarray:
    """LSTM over ``[T, D]`` returning the final hidden state ``[H]``.

    Gate layout follows PyTorch: input, forget, cell, output stacked in
    ``w_ih``/``w_hh`` of shape ``[4H, D]``/``[4H, H]``.
    """
    if x.ndim != 2:
        raise TensorError(f"LSTM expects [T, D], got {x.shape}")
    hidden_size = w_hh.shape[1]
    h = np.zeros(hidden_size)
    c = np.zeros(hidden_size)
    for t in range(x.shape[0]):
        gates = w_ih @ x[t] + b_ih + w_hh @ h + b_hh
        i_gate = _sigmoid(gates[:hidden_size])
        f_gate = _sigmoid(gates[hidden_size : 2 * hidden_size])
        g_gate = np.tanh(gates[2 * hidden_size : 3 * hidden_size])
        o_gate = _sigmoid(gates[3 * hidden_size :])
        c = f_gate * c + i_gate * g_gate
        h = o_gate * np.tanh(c)
    return h


def gru_forward(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
) -> np.ndarray:
    """GRU over ``[T, D]`` returning the final hidden state ``[H]``.

    Gate layout follows PyTorch: reset, update, new stacked in
    ``w_ih``/``w_hh`` of shape ``[3H, D]``/``[3H, H]``.
    """
    if x.ndim != 2:
        raise TensorError(f"GRU expects [T, D], got {x.shape}")
    hidden_size = w_hh.shape[1]
    h = np.zeros(hidden_size)
    for t in range(x.shape[0]):
        gi = w_ih @ x[t] + b_ih
        gh = w_hh @ h + b_hh
        r_gate = _sigmoid(gi[:hidden_size] + gh[:hidden_size])
        z_gate = _sigmoid(
            gi[hidden_size : 2 * hidden_size]
            + gh[hidden_size : 2 * hidden_size]
        )
        n_gate = np.tanh(
            gi[2 * hidden_size :] + r_gate * gh[2 * hidden_size :]
        )
        h = (1.0 - z_gate) * n_gate + z_gate * h
    return h


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def basic_attention(
    x: np.ndarray,
    w_query: np.ndarray,
    w_key: np.ndarray,
    w_value: np.ndarray,
) -> np.ndarray:
    """Basic (non-self) attention over a flattened feature vector.

    The paper notes basic attention "is a variant of full connection":
    query/key/value projections are linear layers, followed by a scaled
    dot-product weighting.  Input is flattened to ``[d]``; projections map
    to ``[d']``; the output is the attention-weighted value vector.
    """
    flat = x.reshape(-1)
    query = w_query @ flat
    key = w_key @ flat
    value = w_value @ flat
    scale = 1.0 / np.sqrt(len(key))
    weights = softmax(query * key * scale)
    return weights * value
