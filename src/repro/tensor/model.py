"""Model composition: a named sequence of layers with shape checking."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import TensorError
from repro.tensor.layers import Layer, Shape


class Model:
    """A sequential neural model (sufficient for the paper's CNN zoo).

    Attributes:
        name: Model identifier, also used for DL2SQL table naming.
        input_shape: Expected ``[C, H, W]`` input.
        layers: Ordered layers; blocks (residual/dense) count as one layer
            here and are expanded by the DL2SQL compiler.
        class_labels: Optional label strings for classification outputs;
            index ``i`` of the final vector corresponds to
            ``class_labels[i]``.
    """

    def __init__(
        self,
        name: str,
        input_shape: Shape,
        layers: Sequence[Layer],
        class_labels: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.input_shape = tuple(input_shape)
        self.layers = list(layers)
        self.class_labels = list(class_labels) if class_labels else None
        self._validate_shapes()

    def _validate_shapes(self) -> None:
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        self.output_shape = shape

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run one sample through the model."""
        if tuple(x.shape) != self.input_shape:
            raise TensorError(
                f"model {self.name!r} expects input {self.input_shape}, "
                f"got {tuple(x.shape)}"
            )
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def forward_batch(self, batch: Sequence[np.ndarray]) -> np.ndarray:
        """Run many samples; returns ``[N, *output_shape]``."""
        return np.stack([self.forward(sample) for sample in batch])

    def predict_class(self, x: np.ndarray) -> int:
        """Argmax class index of the final output vector."""
        return int(np.argmax(self.forward(x)))

    def predict_label(self, x: np.ndarray) -> str:
        index = self.predict_class(x)
        if self.class_labels is None:
            return str(index)
        return self.class_labels[index]

    def predict_labels(self, batch: Sequence[np.ndarray]) -> list[str]:
        return [self.predict_label(sample) for sample in batch]

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[np.ndarray]:
        for layer in self.layers:
            yield from layer.parameters()

    def num_parameters(self) -> int:
        return sum(int(p.size) for p in self.parameters())

    def layer_shapes(self) -> list[tuple[Layer, Shape, Shape]]:
        """(layer, input_shape, output_shape) triples along the model."""
        triples = []
        shape = self.input_shape
        for layer in self.layers:
            out = layer.output_shape(shape)
            triples.append((layer, shape, out))
            shape = out
        return triples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, in={self.input_shape}, "
            f"out={self.output_shape}, layers={len(self.layers)}, "
            f"params={self.num_parameters()})"
        )
