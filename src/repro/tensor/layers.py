"""Layer objects: parameters + forward pass + shape propagation.

Every layer knows its output shape given an input shape, which the DL2SQL
compiler uses to size feature-map tables and the customized cost model
uses for its cardinality formulas (Eqs. 3–8).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import TensorError
from repro.tensor import functional as F

Shape = tuple[int, ...]


class Layer:
    """Base class: a named operator with optional parameters."""

    #: Short operator kind used by the DL2SQL compiler's dispatch.
    kind = "layer"

    def __init__(self, name: str = "") -> None:
        self.name = name or f"{self.kind}"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_shape(self, input_shape: Shape) -> Shape:
        raise NotImplementedError

    def parameters(self) -> Iterator[np.ndarray]:
        """All parameter arrays, depth-first (empty for stateless layers)."""
        return iter(())

    def num_parameters(self) -> int:
        return sum(int(p.size) for p in self.parameters())

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Conv2d(Layer):
    kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        *,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / (in_channels * kernel_size * kernel_size))
        self.weight = rng.normal(
            0.0, scale, (out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise TensorError(
                f"{self.name}: expected {self.in_channels} channels, got {channels}"
            )
        out_h = F.conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(width, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.weight
        yield self.bias


class Deconv2d(Layer):
    kind = "deconv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        *,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / (in_channels * kernel_size * kernel_size))
        self.weight = rng.normal(
            0.0, scale, (in_channels, out_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.deconv2d(x, self.weight, self.bias, self.stride)

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise TensorError(
                f"{self.name}: expected {self.in_channels} channels, got {channels}"
            )
        out_h = (height - 1) * self.stride + self.kernel_size
        out_w = (width - 1) * self.stride + self.kernel_size
        return (self.out_channels, out_h, out_w)

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.weight
        yield self.bias


class BatchNorm2d(Layer):
    kind = "batchnorm"

    def __init__(
        self,
        num_channels: int,
        eps: float = 5e-5,
        *,
        name: str = "",
    ) -> None:
        super().__init__(name)
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = np.ones(num_channels)
        self.beta = np.zeros(num_channels)
        #: Running statistics; None means "use the input's own statistics",
        #: matching DL2SQL's Q4 which normalizes with AVG/stddev subqueries.
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.batch_norm(
            x, self.running_mean, self.running_var, self.gamma, self.beta, self.eps
        )

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.gamma
        yield self.beta
        if self.running_mean is not None:
            yield self.running_mean
        if self.running_var is not None:
            yield self.running_var


class InstanceNorm2d(Layer):
    kind = "instancenorm"

    def __init__(self, num_channels: int, eps: float = 5e-5, *, name: str = "") -> None:
        super().__init__(name)
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = np.ones(num_channels)
        self.beta = np.zeros(num_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.instance_norm(x, self.gamma, self.beta, self.eps)

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.gamma
        yield self.beta


class ReLU(Layer):
    kind = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape


class MaxPool2d(Layer):
    kind = "maxpool"

    def __init__(self, kernel_size: int, stride: Optional[int] = None, *, name: str = "") -> None:
        super().__init__(name)
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        out_h = F.conv_output_size(height, self.kernel_size, self.stride, 0)
        out_w = F.conv_output_size(width, self.kernel_size, self.stride, 0)
        return (channels, out_h, out_w)


class AvgPool2d(MaxPool2d):
    kind = "avgpool"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class Flatten(Layer):
    kind = "flatten"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(-1)

    def output_shape(self, input_shape: Shape) -> Shape:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class Linear(Layer):
    """Fully connected layer.

    The paper treats full connection as "a specific CNN operator with
    kernel size 1 and no striding"; the DL2SQL compiler exploits exactly
    that equivalence.
    """

    kind = "linear"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, (out_features, in_features))
        self.bias = np.zeros(out_features)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.size != self.in_features:
            raise TensorError(
                f"{self.name}: expected {self.in_features} inputs, got {x.size}"
            )
        return F.linear(x, self.weight, self.bias)

    def output_shape(self, input_shape: Shape) -> Shape:
        size = 1
        for dim in input_shape:
            size *= dim
        if size != self.in_features:
            raise TensorError(
                f"{self.name}: expected {self.in_features} inputs, "
                f"got shape {input_shape} ({size})"
            )
        return (self.out_features,)

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.weight
        yield self.bias


class Softmax(Layer):
    kind = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.softmax(x.reshape(-1))

    def output_shape(self, input_shape: Shape) -> Shape:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class BasicAttention(Layer):
    kind = "attention"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(1.0 / in_features)
        self.w_query = rng.normal(0.0, scale, (out_features, in_features))
        self.w_key = rng.normal(0.0, scale, (out_features, in_features))
        self.w_value = rng.normal(0.0, scale, (out_features, in_features))
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.basic_attention(x, self.w_query, self.w_key, self.w_value)

    def output_shape(self, input_shape: Shape) -> Shape:
        return (self.out_features,)

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.w_query
        yield self.w_key
        yield self.w_value


class SelfAttention(Layer):
    """Single-head self attention over ``[T, D]`` token sequences.

    Table II marks self attention *Unsupported* by DL2SQL: the layer runs
    in the tensor framework, and :func:`repro.core.compile_model` rejects
    it with a CompileError citing the table.
    """

    kind = "selfattention"

    def __init__(
        self,
        embed_dim: int,
        head_dim: Optional[int] = None,
        *,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        head_dim = head_dim or embed_dim
        scale = np.sqrt(1.0 / embed_dim)
        self.w_query = rng.normal(0.0, scale, (head_dim, embed_dim))
        self.w_key = rng.normal(0.0, scale, (head_dim, embed_dim))
        self.w_value = rng.normal(0.0, scale, (head_dim, embed_dim))
        self.embed_dim = embed_dim
        self.head_dim = head_dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.self_attention(x, self.w_query, self.w_key, self.w_value)

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 2 or input_shape[1] != self.embed_dim:
            raise TensorError(
                f"{self.name}: expected [T, {self.embed_dim}], "
                f"got {input_shape}"
            )
        return (input_shape[0], self.head_dim)

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.w_query
        yield self.w_key
        yield self.w_value


class _Recurrent(Layer):
    """Shared plumbing for the recurrent layers (Table II: Unsupported)."""

    gates = 0

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        *,
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(1.0 / hidden_size)
        self.w_ih = rng.normal(
            0.0, scale, (self.gates * hidden_size, input_size)
        )
        self.w_hh = rng.normal(
            0.0, scale, (self.gates * hidden_size, hidden_size)
        )
        self.b_ih = np.zeros(self.gates * hidden_size)
        self.b_hh = np.zeros(self.gates * hidden_size)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 2 or input_shape[1] != self.input_size:
            raise TensorError(
                f"{self.name}: expected [T, {self.input_size}], "
                f"got {input_shape}"
            )
        return (self.hidden_size,)

    def parameters(self) -> Iterator[np.ndarray]:
        yield self.w_ih
        yield self.w_hh
        yield self.b_ih
        yield self.b_hh


class LSTM(_Recurrent):
    """LSTM returning the final hidden state (PyTorch gate layout)."""

    kind = "lstm"
    gates = 4

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.lstm_forward(x, self.w_ih, self.w_hh, self.b_ih, self.b_hh)


class GRU(_Recurrent):
    """GRU returning the final hidden state (PyTorch gate layout)."""

    kind = "gru"
    gates = 3

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.gru_forward(x, self.w_ih, self.w_hh, self.b_ih, self.b_hh)


class _CompositeLayer(Layer):
    """Shared plumbing for blocks made of sub-layers."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)

    def sublayers(self) -> Sequence[Layer]:
        raise NotImplementedError

    def parameters(self) -> Iterator[np.ndarray]:
        for layer in self.sublayers():
            yield from layer.parameters()


class ResidualBlock(_CompositeLayer):
    """A ResNet convolution block: main path + projection shortcut + ReLU.

    This is the paper's "Residual Block" (its Q4/Q5 walk through exactly
    this structure: shortcut conv+BN, main-path conv blocks, element-wise
    add, ReLU clamp via UPDATE).
    """

    kind = "residual"

    def __init__(self, main_path: Sequence[Layer], shortcut: Sequence[Layer],
                 *, name: str = "") -> None:
        super().__init__(name)
        self.main_path = list(main_path)
        self.shortcut = list(shortcut)

    def sublayers(self) -> Sequence[Layer]:
        return [*self.main_path, *self.shortcut]

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = x
        for layer in self.main_path:
            main = layer.forward(main)
        side = x
        for layer in self.shortcut:
            side = layer.forward(side)
        if main.shape != side.shape:
            raise TensorError(
                f"{self.name}: main path {main.shape} != shortcut {side.shape}"
            )
        return F.relu(main + side)

    def output_shape(self, input_shape: Shape) -> Shape:
        shape = input_shape
        for layer in self.main_path:
            shape = layer.output_shape(shape)
        side = input_shape
        for layer in self.shortcut:
            side = layer.output_shape(side)
        if shape != side:
            raise TensorError(
                f"{self.name}: main path shape {shape} != shortcut shape {side}"
            )
        return shape


class IdentityBlock(ResidualBlock):
    """A residual block whose shortcut is the identity (no projection)."""

    kind = "identity"

    def __init__(self, main_path: Sequence[Layer], *, name: str = "") -> None:
        super().__init__(main_path, shortcut=[], name=name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = x
        for layer in self.main_path:
            main = layer.forward(main)
        if main.shape != x.shape:
            raise TensorError(
                f"{self.name}: identity block changed shape "
                f"{x.shape} -> {main.shape}"
            )
        return F.relu(main + x)

    def output_shape(self, input_shape: Shape) -> Shape:
        shape = input_shape
        for layer in self.main_path:
            shape = layer.output_shape(shape)
        if shape != input_shape:
            raise TensorError(
                f"{self.name}: identity block changed shape "
                f"{input_shape} -> {shape}"
            )
        return shape


class DenseBlock(_CompositeLayer):
    """A DenseNet-style block: each stage consumes all previous outputs,
    concatenated along the channel axis."""

    kind = "dense"

    def __init__(self, stages: Sequence[Sequence[Layer]], *, name: str = "") -> None:
        super().__init__(name)
        self.stages = [list(stage) for stage in stages]

    def sublayers(self) -> Sequence[Layer]:
        return [layer for stage in self.stages for layer in stage]

    def forward(self, x: np.ndarray) -> np.ndarray:
        features = x
        for stage in self.stages:
            out = features
            for layer in stage:
                out = layer.forward(out)
            features = np.concatenate([features, out], axis=0)
        return features

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        for stage in self.stages:
            shape: Shape = (channels, height, width)
            for layer in stage:
                shape = layer.output_shape(shape)
            if shape[1:] != (height, width):
                raise TensorError(
                    f"{self.name}: dense stage changed spatial size "
                    f"{(height, width)} -> {shape[1:]}"
                )
            channels += shape[0]
        return (channels, height, width)
