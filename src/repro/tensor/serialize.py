"""Binary model serialization — the "compilation" step of DB-UDF.

The paper's loose-integration strategy traces a PyTorch model into a
TorchScript binary that the database kernel loads.  Here models serialize
into a self-contained, zlib-compressed binary blob:

    magic | version | compressed( json-header \\0 raw parameter bytes )

The header records the architecture; :func:`load_model` rebuilds layers
and copies parameters back, so the blob is the *only* thing the DB-UDF
strategy ships into the database — preserving the black-box property the
paper criticizes (the optimizer cannot see inside a blob).

Compression also matters for Table IV: file formats store models
compressed, while DL2SQL's relational tables do not, which is why DL2SQL
pays a modest storage premium.
"""

from __future__ import annotations

import io
import json
import zlib
from typing import Any

import numpy as np

from repro.errors import SerializationError
from repro.tensor.layers import (
    GRU,
    LSTM,
    AvgPool2d,
    BasicAttention,
    BatchNorm2d,
    Conv2d,
    Deconv2d,
    DenseBlock,
    Flatten,
    IdentityBlock,
    InstanceNorm2d,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    SelfAttention,
    Softmax,
)
from repro.tensor.model import Model

MAGIC = b"RPRO"
VERSION = 1


def serialize_model(model: Model, compression_level: int = 6) -> bytes:
    """Serialize a model to a compressed binary blob.

    ``compression_level`` (zlib 0-9) distinguishes Table IV's two file
    formats: DB-PyTorch ships a lightly-compressed training checkpoint,
    DB-UDF a maximally-compressed compiled binary.
    """
    arrays: list[np.ndarray] = []
    header = {
        "name": model.name,
        "input_shape": list(model.input_shape),
        "class_labels": model.class_labels,
        "layers": [_layer_spec(layer, arrays) for layer in model.layers],
        "arrays": [
            {"shape": list(a.shape), "dtype": str(a.dtype)} for a in arrays
        ],
    }
    buffer = io.BytesIO()
    buffer.write(json.dumps(header).encode("utf-8"))
    buffer.write(b"\0")
    for array in arrays:
        buffer.write(np.ascontiguousarray(array).tobytes())
    payload = zlib.compress(buffer.getvalue(), level=compression_level)
    return MAGIC + VERSION.to_bytes(2, "little") + payload


def deserialize_model(blob: bytes) -> Model:
    """Rebuild a model from :func:`serialize_model` output."""
    if blob[:4] != MAGIC:
        raise SerializationError("not a serialized model (bad magic)")
    version = int.from_bytes(blob[4:6], "little")
    if version != VERSION:
        raise SerializationError(f"unsupported model format version {version}")
    try:
        raw = zlib.decompress(blob[6:])
    except zlib.error as exc:
        raise SerializationError(f"corrupt model blob: {exc}") from exc
    separator = raw.index(b"\0")
    header = json.loads(raw[:separator].decode("utf-8"))
    cursor = separator + 1

    arrays: list[np.ndarray] = []
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        array = np.frombuffer(raw[cursor : cursor + nbytes], dtype=dtype)
        arrays.append(array.reshape(shape).copy())
        cursor += nbytes

    consumed = _Counter()
    layers = [_build_layer(spec, arrays, consumed) for spec in header["layers"]]
    return Model(
        header["name"],
        tuple(header["input_shape"]),
        layers,
        class_labels=header["class_labels"],
    )


def save_model(model: Model, path: str) -> int:
    """Write the blob to disk; returns the byte size (Table IV input)."""
    blob = serialize_model(model)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_model(path: str) -> Model:
    with open(path, "rb") as handle:
        return deserialize_model(handle.read())


def serialized_size(model: Model, compression_level: int = 6) -> int:
    """Compressed blob size in bytes without touching disk."""
    return len(serialize_model(model, compression_level))


# ----------------------------------------------------------------------
# Layer <-> spec
# ----------------------------------------------------------------------
class _Counter:
    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        self.value += 1
        return self.value - 1


def _store(array: np.ndarray, arrays: list[np.ndarray]) -> int:
    arrays.append(array)
    return len(arrays) - 1


def _layer_spec(layer: Layer, arrays: list[np.ndarray]) -> dict[str, Any]:
    spec: dict[str, Any] = {"kind": layer.kind, "name": layer.name}
    if isinstance(layer, Conv2d):
        spec.update(
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            kernel_size=layer.kernel_size,
            stride=layer.stride,
            padding=layer.padding,
            weight=_store(layer.weight, arrays),
            bias=_store(layer.bias, arrays),
        )
    elif isinstance(layer, Deconv2d):
        spec.update(
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            kernel_size=layer.kernel_size,
            stride=layer.stride,
            weight=_store(layer.weight, arrays),
            bias=_store(layer.bias, arrays),
        )
    elif isinstance(layer, BatchNorm2d):
        spec.update(
            num_channels=layer.num_channels,
            eps=layer.eps,
            gamma=_store(layer.gamma, arrays),
            beta=_store(layer.beta, arrays),
            running_mean=(
                _store(layer.running_mean, arrays)
                if layer.running_mean is not None
                else None
            ),
            running_var=(
                _store(layer.running_var, arrays)
                if layer.running_var is not None
                else None
            ),
        )
    elif isinstance(layer, InstanceNorm2d):
        spec.update(
            num_channels=layer.num_channels,
            eps=layer.eps,
            gamma=_store(layer.gamma, arrays),
            beta=_store(layer.beta, arrays),
        )
    elif isinstance(layer, (MaxPool2d, AvgPool2d)):
        spec.update(kernel_size=layer.kernel_size, stride=layer.stride)
    elif isinstance(layer, Linear):
        spec.update(
            in_features=layer.in_features,
            out_features=layer.out_features,
            weight=_store(layer.weight, arrays),
            bias=_store(layer.bias, arrays),
        )
    elif isinstance(layer, BasicAttention):
        spec.update(
            in_features=layer.in_features,
            out_features=layer.out_features,
            w_query=_store(layer.w_query, arrays),
            w_key=_store(layer.w_key, arrays),
            w_value=_store(layer.w_value, arrays),
        )
    elif isinstance(layer, SelfAttention):
        spec.update(
            embed_dim=layer.embed_dim,
            head_dim=layer.head_dim,
            w_query=_store(layer.w_query, arrays),
            w_key=_store(layer.w_key, arrays),
            w_value=_store(layer.w_value, arrays),
        )
    elif isinstance(layer, (LSTM, GRU)):
        spec.update(
            input_size=layer.input_size,
            hidden_size=layer.hidden_size,
            w_ih=_store(layer.w_ih, arrays),
            w_hh=_store(layer.w_hh, arrays),
            b_ih=_store(layer.b_ih, arrays),
            b_hh=_store(layer.b_hh, arrays),
        )
    elif isinstance(layer, IdentityBlock):
        spec.update(
            main_path=[_layer_spec(sub, arrays) for sub in layer.main_path],
        )
    elif isinstance(layer, ResidualBlock):
        spec.update(
            main_path=[_layer_spec(sub, arrays) for sub in layer.main_path],
            shortcut=[_layer_spec(sub, arrays) for sub in layer.shortcut],
        )
    elif isinstance(layer, DenseBlock):
        spec.update(
            stages=[
                [_layer_spec(sub, arrays) for sub in stage]
                for stage in layer.stages
            ],
        )
    elif isinstance(layer, (ReLU, Flatten, Softmax)):
        pass
    else:
        raise SerializationError(f"cannot serialize layer kind {layer.kind!r}")
    return spec


def _build_layer(
    spec: dict[str, Any], arrays: list[np.ndarray], counter: _Counter
) -> Layer:
    kind = spec["kind"]
    name = spec["name"]
    if kind == "conv":
        layer = Conv2d(
            spec["in_channels"],
            spec["out_channels"],
            spec["kernel_size"],
            spec["stride"],
            spec["padding"],
            name=name,
        )
        layer.weight = arrays[spec["weight"]]
        layer.bias = arrays[spec["bias"]]
        return layer
    if kind == "deconv":
        layer = Deconv2d(
            spec["in_channels"],
            spec["out_channels"],
            spec["kernel_size"],
            spec["stride"],
            name=name,
        )
        layer.weight = arrays[spec["weight"]]
        layer.bias = arrays[spec["bias"]]
        return layer
    if kind == "batchnorm":
        layer = BatchNorm2d(spec["num_channels"], spec["eps"], name=name)
        layer.gamma = arrays[spec["gamma"]]
        layer.beta = arrays[spec["beta"]]
        if spec["running_mean"] is not None:
            layer.running_mean = arrays[spec["running_mean"]]
        if spec["running_var"] is not None:
            layer.running_var = arrays[spec["running_var"]]
        return layer
    if kind == "instancenorm":
        layer = InstanceNorm2d(spec["num_channels"], spec["eps"], name=name)
        layer.gamma = arrays[spec["gamma"]]
        layer.beta = arrays[spec["beta"]]
        return layer
    if kind == "relu":
        return ReLU(name=name)
    if kind == "maxpool":
        return MaxPool2d(spec["kernel_size"], spec["stride"], name=name)
    if kind == "avgpool":
        return AvgPool2d(spec["kernel_size"], spec["stride"], name=name)
    if kind == "flatten":
        return Flatten(name=name)
    if kind == "softmax":
        return Softmax(name=name)
    if kind == "linear":
        layer = Linear(spec["in_features"], spec["out_features"], name=name)
        layer.weight = arrays[spec["weight"]]
        layer.bias = arrays[spec["bias"]]
        return layer
    if kind == "attention":
        layer = BasicAttention(
            spec["in_features"], spec["out_features"], name=name
        )
        layer.w_query = arrays[spec["w_query"]]
        layer.w_key = arrays[spec["w_key"]]
        layer.w_value = arrays[spec["w_value"]]
        return layer
    if kind == "selfattention":
        layer = SelfAttention(spec["embed_dim"], spec["head_dim"], name=name)
        layer.w_query = arrays[spec["w_query"]]
        layer.w_key = arrays[spec["w_key"]]
        layer.w_value = arrays[spec["w_value"]]
        return layer
    if kind in ("lstm", "gru"):
        cls = LSTM if kind == "lstm" else GRU
        layer = cls(spec["input_size"], spec["hidden_size"], name=name)
        layer.w_ih = arrays[spec["w_ih"]]
        layer.w_hh = arrays[spec["w_hh"]]
        layer.b_ih = arrays[spec["b_ih"]]
        layer.b_hh = arrays[spec["b_hh"]]
        return layer
    if kind == "identity":
        main = [_build_layer(s, arrays, counter) for s in spec["main_path"]]
        return IdentityBlock(main, name=name)
    if kind == "residual":
        main = [_build_layer(s, arrays, counter) for s in spec["main_path"]]
        shortcut = [_build_layer(s, arrays, counter) for s in spec["shortcut"]]
        return ResidualBlock(main, shortcut, name=name)
    if kind == "dense":
        stages = [
            [_build_layer(s, arrays, counter) for s in stage]
            for stage in spec["stages"]
        ]
        return DenseBlock(stages, name=name)
    raise SerializationError(f"unknown layer kind {kind!r} in model blob")
