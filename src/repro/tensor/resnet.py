"""Model builders: the ResNet-style depth family and the student CNN.

The paper evaluates "ResNet5 to ResNet40" (depth = number of convolution
layers) and a distilled student made of three Conv+BN+ReLU blocks.  The
builders here produce genuinely-shaped models of those families at a
configurable input resolution, so Table IV/VI's depth sweeps exercise real
parameter growth rather than synthetic numbers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import TensorError
from repro.tensor.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    IdentityBlock,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    Softmax,
)
from repro.tensor.model import Model


def conv_bn_relu(
    in_channels: int,
    out_channels: int,
    kernel_size: int = 3,
    stride: int = 1,
    padding: int = 1,
    *,
    prefix: str,
    rng: Optional[np.random.Generator] = None,
) -> list[Layer]:
    """The basic Conv+BN+ReLU triple the paper's Fig. 6 is built from."""
    return [
        Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride,
            padding,
            name=f"{prefix}_conv",
            rng=rng,
        ),
        BatchNorm2d(out_channels, name=f"{prefix}_bn"),
        ReLU(name=f"{prefix}_relu"),
    ]


def build_student_cnn(
    input_shape: tuple[int, int, int] = (1, 16, 16),
    num_classes: int = 4,
    channels: Sequence[int] = (8, 16, 16),
    class_labels: Optional[Sequence[str]] = None,
    seed: int = 7,
    name: str = "student",
) -> Model:
    """The distilled student: three Conv+BN+ReLU blocks + pool + FC + softmax.

    This is the model behind Fig. 8/9: "a student CNN composed of three
    Conv+BN+ReLU layers", distilled from a ResNet34-class teacher.
    """
    if len(channels) != 3:
        raise TensorError("the student CNN uses exactly three blocks")
    rng = np.random.default_rng(seed)
    in_channels = input_shape[0]
    layers: list[Layer] = []
    current = in_channels
    for block_index, out_channels in enumerate(channels, start=1):
        stride = 2 if block_index > 1 else 1
        layers.extend(
            conv_bn_relu(
                current,
                out_channels,
                kernel_size=3,
                stride=stride,
                padding=1,
                prefix=f"block{block_index}",
                rng=rng,
            )
        )
        current = out_channels

    layers.append(MaxPool2d(2, name="pool"))
    spatial = _propagate(layers, input_shape)
    flat = spatial[0] * spatial[1] * spatial[2]
    layers.append(Flatten(name="flatten"))
    layers.append(Linear(flat, num_classes, name="fc", rng=rng))
    layers.append(Softmax(name="softmax"))
    return Model(name, input_shape, layers, class_labels=class_labels)


def build_resnet(
    depth: int,
    input_shape: tuple[int, int, int] = (1, 16, 16),
    num_classes: int = 4,
    base_channels: int = 16,
    class_labels: Optional[Sequence[str]] = None,
    seed: int = 7,
    name: str = "",
) -> Model:
    """A ResNet-style model with ``depth`` convolution layers.

    Structure: one stem conv, then residual/identity blocks of two convs
    each (an initial projection block per stage followed by identity
    blocks), then average pooling, FC and softmax — the classic ResNet
    recipe scaled down to the paper's 5..40 depth range.
    """
    if depth < 3:
        raise TensorError(f"depth must be >= 3, got {depth}")
    rng = np.random.default_rng(seed)
    in_channels = input_shape[0]
    layers: list[Layer] = [
        Conv2d(in_channels, base_channels, 3, 1, 1, name="stem_conv", rng=rng),
        BatchNorm2d(base_channels, name="stem_bn"),
        ReLU(name="stem_relu"),
    ]

    remaining_convs = depth - 1
    num_blocks = remaining_convs // 2
    current = base_channels
    stage_channels = base_channels
    max_channels = base_channels * 4
    blocks_in_stage = 0
    for block_index in range(1, num_blocks + 1):
        # Widen every three blocks (a new "stage" with a projection block),
        # capped so the depth sweep grows near-linearly in parameters as
        # the paper's Table VI does.
        if blocks_in_stage == 3 and stage_channels < max_channels:
            stage_channels *= 2
            blocks_in_stage = 0
        prefix = f"rb{block_index}"
        if current != stage_channels:
            main = [
                Conv2d(current, stage_channels, 3, 1, 1,
                       name=f"{prefix}_conv1", rng=rng),
                BatchNorm2d(stage_channels, name=f"{prefix}_bn1"),
                ReLU(name=f"{prefix}_relu1"),
                Conv2d(stage_channels, stage_channels, 3, 1, 1,
                       name=f"{prefix}_conv2", rng=rng),
                BatchNorm2d(stage_channels, name=f"{prefix}_bn2"),
            ]
            shortcut = [
                Conv2d(current, stage_channels, 1, 1, 0,
                       name=f"{prefix}_shortcut_conv", rng=rng),
                BatchNorm2d(stage_channels, name=f"{prefix}_shortcut_bn"),
            ]
            layers.append(ResidualBlock(main, shortcut, name=prefix))
        else:
            main = [
                Conv2d(current, stage_channels, 3, 1, 1,
                       name=f"{prefix}_conv1", rng=rng),
                BatchNorm2d(stage_channels, name=f"{prefix}_bn1"),
                ReLU(name=f"{prefix}_relu1"),
                Conv2d(stage_channels, stage_channels, 3, 1, 1,
                       name=f"{prefix}_conv2", rng=rng),
                BatchNorm2d(stage_channels, name=f"{prefix}_bn2"),
            ]
            layers.append(IdentityBlock(main, name=prefix))
        current = stage_channels
        blocks_in_stage += 1

    # An odd leftover conv keeps the depth count exact.
    if remaining_convs % 2 == 1:
        layers.extend(
            conv_bn_relu(current, current, prefix="tail", rng=rng)
        )

    layers.append(AvgPool2d(2, name="pool"))
    spatial = _propagate(layers, input_shape)
    flat = spatial[0] * spatial[1] * spatial[2]
    layers.append(Flatten(name="flatten"))
    layers.append(Linear(flat, num_classes, name="fc", rng=rng))
    layers.append(Softmax(name="softmax"))
    return Model(
        name or f"resnet{depth}", input_shape, layers, class_labels=class_labels
    )


def _propagate(layers: Sequence[Layer], input_shape: tuple[int, ...]) -> tuple[int, ...]:
    shape = tuple(input_shape)
    for layer in layers:
        shape = layer.output_shape(shape)
    return shape
