"""A small numpy NN inference framework (the PyTorch substitute).

Only the inference pathway matters to the paper, so this package provides
forward-only layers (convolution, batch/instance norm, ReLU, pooling, fully
connected, softmax, residual/identity/dense/attention blocks), model
composition, ResNet-style builders, binary serialization ("compilation"
for the DB-UDF strategy) and histogram calibration + a linear-head
distillation used to build the paper's student models.
"""

from repro.tensor.model import Model
from repro.tensor.layers import (
    AvgPool2d,
    BatchNorm2d,
    BasicAttention,
    Conv2d,
    Deconv2d,
    DenseBlock,
    Flatten,
    GRU,
    IdentityBlock,
    InstanceNorm2d,
    Layer,
    Linear,
    LSTM,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    SelfAttention,
    Softmax,
)
from repro.tensor.resnet import build_resnet, build_student_cnn
from repro.tensor.serialize import load_model, save_model, serialize_model

__all__ = [
    "AvgPool2d",
    "BasicAttention",
    "BatchNorm2d",
    "Conv2d",
    "Deconv2d",
    "DenseBlock",
    "Flatten",
    "GRU",
    "IdentityBlock",
    "InstanceNorm2d",
    "Layer",
    "LSTM",
    "Linear",
    "MaxPool2d",
    "Model",
    "ReLU",
    "ResidualBlock",
    "SelfAttention",
    "Softmax",
    "build_resnet",
    "build_student_cnn",
    "load_model",
    "save_model",
    "serialize_model",
]
