"""Shared exception hierarchy for the repro package.

Every layer of the stack (storage, SQL front end, execution engine, DL2SQL
compiler, strategies) raises subclasses of :class:`ReproError` so callers can
catch a single base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """Problems in the columnar storage layer (bad schema, type mismatch...)."""


class CatalogError(StorageError):
    """Unknown or duplicate table/view names in a database catalog."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """The tokenizer hit a character sequence it cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """The parser found a syntactically invalid statement."""


class PlanError(ReproError):
    """The planner could not build a plan (unknown column, bad aggregate...)."""


class SemanticError(PlanError):
    """The static analyzer rejected a query before planning.

    Subclasses :class:`PlanError` so callers that handled plan-time
    failures (unknown column, aggregate misuse) keep working now that the
    analyzer front-runs the planner.  Carries a stable error ``code``
    (``S001``...) and, when the query came from SQL text, the source
    ``span`` of the offending expression.
    """

    def __init__(self, message: str, *, code: str = "S000", span=None) -> None:
        super().__init__(message)
        self.code = code
        self.span = span


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class QueryTimeoutError(ExecutionError):
    """A query exceeded its deadline and was cooperatively aborted.

    Carries a stable ``code`` (``R001``), the configured ``timeout_s``,
    the ``elapsed`` seconds at the abort point, and — when tracing was
    enabled — the ``partial_trace`` span tree accumulated before the
    abort, so a timed-out query is still debuggable.
    """

    code = "R001"

    def __init__(
        self,
        message: str,
        *,
        timeout_s: float = 0.0,
        elapsed: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s
        self.elapsed = elapsed
        self.partial_trace = None


class QueryCancelledError(ExecutionError):
    """A query was cancelled via its cancellation token.

    Same shape as :class:`QueryTimeoutError` (code ``R002``), so handlers
    can treat "stopped early" uniformly while still distinguishing a
    deadline from an explicit cancel.
    """

    code = "R002"

    def __init__(self, message: str, *, elapsed: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.partial_trace = None


class QueryMemoryExceeded(ExecutionError):
    """Memory admission control rejected a materialization (code ``R003``).

    Raised *before* an oversized join result or intermediate table is
    built, instead of letting the process OOM.  ``requested`` is the
    estimated byte size of the rejected materialization, ``budget`` the
    per-query limit, and ``what`` names the operator or table.
    """

    code = "R003"

    def __init__(
        self,
        message: str,
        *,
        requested: int = 0,
        budget: int = 0,
        what: str = "",
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.budget = budget
        self.what = what


class TransferError(ReproError):
    """The DB↔DL serialization boundary failed (code ``R004``).

    Typed wrapper around the independent strategy's pickle round-trip:
    ``stage`` names the failing step (``serialize`` / ``deserialize`` /
    ``checksum``), ``nbytes`` the payload size at the failure point, and
    ``transient`` whether a retry may succeed (corruption and injected
    transient faults are retryable; an unpicklable payload is not).
    """

    code = "R004"

    def __init__(
        self,
        message: str,
        *,
        stage: str,
        nbytes: int = 0,
        transient: bool = False,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.nbytes = nbytes
        self.transient = transient


class UdfError(ExecutionError):
    """A user-defined function is unknown or misbehaved."""


class CircuitOpenError(UdfError):
    """A UDF's circuit breaker is open: calls fail fast without invoking
    the model (code ``R005``).  ``retry_after_s`` is the remaining cooldown
    before the breaker half-opens and allows a probe call.
    """

    code = "R005"

    def __init__(
        self, message: str, *, udf_name: str = "", retry_after_s: float = 0.0
    ) -> None:
        super().__init__(message)
        self.udf_name = udf_name
        self.retry_after_s = retry_after_s


class ServerOverloaded(ExecutionError):
    """The serving layer shed this query instead of queueing it
    (code ``R006``).

    Raised when the admission queue is full or the session is over its
    in-flight cap.  Load-shedding is deliberate: a bounded queue keeps
    tail latency honest, and a typed error with ``retry_after_s`` lets
    well-behaved clients back off instead of piling on.
    """

    code = "R006"

    def __init__(
        self, message: str, *, retry_after_s: float = 0.1, reason: str = "queue_full"
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason


class UnknownFunctionError(SemanticError, UdfError):
    """A call names neither a registered UDF nor a builtin function.

    Inherits both :class:`SemanticError` (the analyzer raises it at
    ``execute()`` time) and :class:`UdfError` (what the runtime evaluator
    historically raised), so either style of handler catches it.
    """

    def __init__(self, message: str, *, code: str = "S008", span=None) -> None:
        SemanticError.__init__(self, message, code=code, span=span)


class PlanValidationError(PlanError):
    """The plan-invariant validator caught an optimizer rewrite that
    changed query semantics (dropped predicate, altered output schema)."""


class TensorError(ReproError):
    """Errors in the numpy tensor/NN framework (shape mismatch, bad layer)."""


class SerializationError(TensorError):
    """Model (de)serialization failed (corrupt blob, version mismatch)."""


class CompileError(ReproError):
    """DL2SQL compilation failed (unsupported operator, bad shapes)."""


class WorkloadError(ReproError):
    """Workload/dataset generation was asked for something impossible."""
