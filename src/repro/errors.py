"""Shared exception hierarchy for the repro package.

Every layer of the stack (storage, SQL front end, execution engine, DL2SQL
compiler, strategies) raises subclasses of :class:`ReproError` so callers can
catch a single base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """Problems in the columnar storage layer (bad schema, type mismatch...)."""


class CatalogError(StorageError):
    """Unknown or duplicate table/view names in a database catalog."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """The tokenizer hit a character sequence it cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """The parser found a syntactically invalid statement."""


class PlanError(ReproError):
    """The planner could not build a plan (unknown column, bad aggregate...)."""


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class UdfError(ExecutionError):
    """A user-defined function is unknown or misbehaved."""


class TensorError(ReproError):
    """Errors in the numpy tensor/NN framework (shape mismatch, bad layer)."""


class SerializationError(TensorError):
    """Model (de)serialization failed (corrupt blob, version mismatch)."""


class CompileError(ReproError):
    """DL2SQL compilation failed (unsupported operator, bad shapes)."""


class WorkloadError(ReproError):
    """Workload/dataset generation was asked for something impossible."""
