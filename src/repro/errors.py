"""Shared exception hierarchy for the repro package.

Every layer of the stack (storage, SQL front end, execution engine, DL2SQL
compiler, strategies) raises subclasses of :class:`ReproError` so callers can
catch a single base type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """Problems in the columnar storage layer (bad schema, type mismatch...)."""


class CatalogError(StorageError):
    """Unknown or duplicate table/view names in a database catalog."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """The tokenizer hit a character sequence it cannot tokenize."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """The parser found a syntactically invalid statement."""


class PlanError(ReproError):
    """The planner could not build a plan (unknown column, bad aggregate...)."""


class SemanticError(PlanError):
    """The static analyzer rejected a query before planning.

    Subclasses :class:`PlanError` so callers that handled plan-time
    failures (unknown column, aggregate misuse) keep working now that the
    analyzer front-runs the planner.  Carries a stable error ``code``
    (``S001``...) and, when the query came from SQL text, the source
    ``span`` of the offending expression.
    """

    def __init__(self, message: str, *, code: str = "S000", span=None) -> None:
        super().__init__(message)
        self.code = code
        self.span = span


class ExecutionError(ReproError):
    """A physical operator failed at run time."""


class UdfError(ExecutionError):
    """A user-defined function is unknown or misbehaved."""


class UnknownFunctionError(SemanticError, UdfError):
    """A call names neither a registered UDF nor a builtin function.

    Inherits both :class:`SemanticError` (the analyzer raises it at
    ``execute()`` time) and :class:`UdfError` (what the runtime evaluator
    historically raised), so either style of handler catches it.
    """

    def __init__(self, message: str, *, code: str = "S008", span=None) -> None:
        SemanticError.__init__(self, message, code=code, span=span)


class PlanValidationError(PlanError):
    """The plan-invariant validator caught an optimizer rewrite that
    changed query semantics (dropped predicate, altered output schema)."""


class TensorError(ReproError):
    """Errors in the numpy tensor/NN framework (shape mismatch, bad layer)."""


class SerializationError(TensorError):
    """Model (de)serialization failed (corrupt blob, version mismatch)."""


class CompileError(ReproError):
    """DL2SQL compilation failed (unsupported operator, bad shapes)."""


class WorkloadError(ReproError):
    """Workload/dataset generation was asked for something impossible."""
