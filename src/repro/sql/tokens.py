"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


#: Reserved words recognized by the parser.  Everything else is an
#: identifier, which keeps nUDF names like ``nUDF_detect`` unreserved.
KEYWORDS = frozenset(
    word.upper()
    for word in (
        "select", "from", "where", "group", "by", "having", "order", "limit",
        "as", "and", "or", "not", "in", "between", "like", "is", "null",
        "true", "false", "inner", "left", "right", "outer", "join", "on",
        "create", "temp", "temporary", "table", "view", "index", "insert",
        "into", "values", "update", "set", "drop", "if", "exists", "distinct",
        "case", "when", "then", "else", "end", "asc", "desc", "union", "all",
        "replace", "explain", "analyze", "offset", "escape",
    )
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    value: Any
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in {
            w.upper() for w in words
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.value}, {self.value!r}@{self.position})"
