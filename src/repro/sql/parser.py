"""Recursive-descent parser for the SQL dialect.

Entry points are :func:`parse_statement` (one statement) and
:func:`parse_statements` (a ``;``-separated script — DL2SQL emits one script
per model layer).  Expressions use precedence climbing with the usual SQL
precedence: OR < AND < NOT < comparison < additive < multiplicative < unary.

A ClickHouse-ism the paper relies on is accepted: ``CREATE TEMP TABLE t
(SELECT ...)`` is treated the same as ``CREATE TEMP TABLE t AS SELECT ...``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError, SemanticError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnDef,
    ColumnRef,
    CreateIndex,
    CreateTable,
    CreateView,
    DerivedTable,
    DropStatement,
    ExplainStatement,
    Expression,
    FunctionCall,
    InList,
    InsertStatement,
    IsNull,
    Join,
    Literal,
    NamedTable,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    UpdateStatement,
)
from repro.sql.lexer import tokenize
from repro.sql.spans import Span, set_span
from repro.sql.tokens import Token, TokenType

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}

#: CAST target type name -> conversion builtin the cast desugars to.  The
#: evaluator already implements the conversions; CAST is pure syntax.
_CAST_TARGETS = {
    "int": "toInt64",
    "int64": "toInt64",
    "integer": "toInt64",
    "bigint": "toInt64",
    "float": "toFloat64",
    "float64": "toFloat64",
    "double": "toFloat64",
    "real": "toFloat64",
    "string": "toString",
    "text": "toString",
    "varchar": "toString",
    "date": "toDate",
}


def parse_statement(sql: str) -> Statement:
    """Parse exactly one SQL statement."""
    parser = _Parser(tokenize(sql), sql)
    statement = parser.statement()
    parser.skip_semicolons()
    parser.expect_eof()
    return statement


def parse_statements(sql: str) -> list[Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = _Parser(tokenize(sql), sql)
    statements: list[Statement] = []
    parser.skip_semicolons()
    while not parser.at_eof():
        statements.append(parser.statement())
        parser.skip_semicolons()
    return statements


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().type is TokenType.EOF

    def expect_eof(self) -> None:
        if not self.at_eof():
            self._fail(f"unexpected trailing input {self.peek().value!r}")

    def skip_semicolons(self) -> None:
        while self._match_punct(";"):
            pass

    def _match_keyword(self, *words: str) -> bool:
        if self.peek().is_keyword(*words):
            self.advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._match_keyword(word):
            self._fail(f"expected {word}, found {self.peek().value!r}")

    def _match_punct(self, char: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCTUATION and token.value == char:
            self.advance()
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._match_punct(char):
            self._fail(f"expected {char!r}, found {self.peek().value!r}")

    def _match_operator(self, *ops: str) -> Optional[str]:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            self.advance()
            return token.value
        return None

    #: Keywords that may double as identifiers (column names like "temp"
    #: are common in sensor schemas); none of them can start an expression
    #: or clause at an identifier position.
    _SOFT_KEYWORDS = frozenset(
        {"TEMP", "TEMPORARY", "INDEX", "VIEW", "TABLE", "SET", "VALUES",
         "REPLACE", "ALL", "KEY", "IF", "EXISTS"}
    )

    def _expect_identifier(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.value
        if token.type is TokenType.KEYWORD and token.value in self._SOFT_KEYWORDS:
            self.advance()
            return token.value.lower()
        self._fail(f"expected identifier, found {token.value!r}")
        raise AssertionError  # unreachable

    def _fail(self, message: str) -> None:
        token = self.peek()
        snippet = self._source[max(0, token.position - 20) : token.position + 20]
        raise ParseError(f"{message} near ...{snippet!r}...")

    def _spanned(self, node: Expression, start: int) -> Expression:
        """Attach the source span ``[start, <current position>)`` to ``node``.

        The end is the start of the next unconsumed token with trailing
        whitespace stripped, so spans cover exactly the node's text.
        """
        end = self.peek().position
        end = start + len(self._source[start:end].rstrip())
        set_span(node, Span(start, end))
        return node

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def statement(self) -> Statement:
        token = self.peek()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            analyze = self._match_keyword("ANALYZE")
            return ExplainStatement(
                statement=self.select_statement(), analyze=analyze
            )
        if token.is_keyword("SELECT"):
            return self.select_statement()
        if token.is_keyword("CREATE"):
            return self._create_statement()
        if token.is_keyword("INSERT"):
            return self._insert_statement()
        if token.is_keyword("UPDATE"):
            return self._update_statement()
        if token.is_keyword("DROP"):
            return self._drop_statement()
        self._fail(f"unsupported statement start {token.value!r}")
        raise AssertionError  # unreachable

    def select_statement(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        items = [self._select_item()]
        while self._match_punct(","):
            items.append(self._select_item())

        from_clause: Optional[TableRef] = None
        cross: list[TableRef] = []
        if self._match_keyword("FROM"):
            from_clause = self._table_expression()
            while self._match_punct(","):
                cross.append(self._table_expression())

        where = self.expression() if self._match_keyword("WHERE") else None

        group_by: list[Expression] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.expression())
            while self._match_punct(","):
                group_by.append(self.expression())

        having = self.expression() if self._match_keyword("HAVING") else None

        order_by: list[OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._match_punct(","):
                order_by.append(self._order_item())

        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._match_keyword("LIMIT"):
            limit = self._row_count("LIMIT")
            if self._match_keyword("OFFSET"):
                offset = self._row_count("OFFSET")

        return SelectStatement(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
            cross_tables=tuple(cross),
        )

    def _row_count(self, clause: str) -> int:
        """The integer after LIMIT/OFFSET; negative literals are S013."""
        start = self.peek().position
        negated = (
            self.peek().type is TokenType.OPERATOR and self.peek().value == "-"
        )
        if negated:
            self.advance()
        token = self.advance()
        if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
            self._fail(f"{clause} requires an integer literal")
        if negated:
            end = start + len(f"-{token.value}")
            raise SemanticError(
                f"{clause} must not be negative, got -{token.value}",
                code="S013",
                span=Span(start, end),
            )
        return token.value

    def _select_item(self) -> SelectItem:
        expression = self.expression()
        alias: Optional[str] = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return SelectItem(expression, alias)

    def _order_item(self) -> OrderItem:
        expression = self.expression()
        ascending = True
        if self._match_keyword("DESC"):
            ascending = False
        else:
            self._match_keyword("ASC")
        return OrderItem(expression, ascending)

    def _table_expression(self) -> TableRef:
        left = self._table_primary()
        while True:
            join_type = "INNER"
            if self._match_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif self.peek().is_keyword("LEFT", "RIGHT"):
                join_type = self.advance().value
                self._match_keyword("OUTER")
                self._expect_keyword("JOIN")
            elif self._match_keyword("JOIN"):
                pass
            else:
                return left
            right = self._table_primary()
            condition: Optional[Expression] = None
            if self._match_keyword("ON"):
                condition = self.expression()
            left = Join(
                left=left, right=right, condition=condition, join_type=join_type,
                alias=None,
            )

    def _table_primary(self) -> TableRef:
        if self._match_punct("("):
            if self.peek().is_keyword("SELECT"):
                statement = self.select_statement()
                self._expect_punct(")")
                alias = self._table_alias()
                return DerivedTable(alias=alias, statement=statement)
            inner = self._table_expression()
            self._expect_punct(")")
            return inner
        start = self.peek().position
        name = self._expect_identifier()
        alias = self._table_alias()
        table = NamedTable(alias=alias, name=name)
        set_span(table, Span(start, start + len(name)))
        return table

    def _table_alias(self) -> Optional[str]:
        if self._match_keyword("AS"):
            return self._expect_identifier()
        if self.peek().type is TokenType.IDENTIFIER:
            return self._expect_identifier()
        return None

    # -- CREATE ---------------------------------------------------------
    def _create_statement(self) -> Statement:
        self._expect_keyword("CREATE")
        replace = False
        if self._match_keyword("OR"):
            self._expect_keyword("REPLACE")
            replace = True
        temp = self._match_keyword("TEMP") or self._match_keyword("TEMPORARY")
        if self._match_keyword("TABLE"):
            return self._create_table(temp=temp, replace=replace)
        if self._match_keyword("VIEW"):
            return self._create_view(temp=temp, replace=replace)
        if self._match_keyword("INDEX"):
            return self._create_index()
        self._fail("expected TABLE, VIEW or INDEX after CREATE")
        raise AssertionError  # unreachable

    def _create_table(self, *, temp: bool, replace: bool) -> CreateTable:
        name = self._expect_identifier()
        if self._match_keyword("AS"):
            select = self._parenthesized_or_plain_select()
            return CreateTable(name=name, as_select=select, temp=temp, replace=replace)
        if self._match_punct("("):
            if self.peek().is_keyword("SELECT"):
                # ClickHouse-ism from the paper: CREATE TEMP TABLE t (SELECT...)
                select = self.select_statement()
                self._expect_punct(")")
                return CreateTable(
                    name=name, as_select=select, temp=temp, replace=replace
                )
            columns = [self._column_def()]
            while self._match_punct(","):
                columns.append(self._column_def())
            self._expect_punct(")")
            return CreateTable(
                name=name, columns=tuple(columns), temp=temp, replace=replace
            )
        if self.peek().is_keyword("SELECT"):
            select = self.select_statement()
            return CreateTable(name=name, as_select=select, temp=temp, replace=replace)
        self._fail("expected column list, AS SELECT or (SELECT...) in CREATE TABLE")
        raise AssertionError  # unreachable

    def _parenthesized_or_plain_select(self) -> SelectStatement:
        if self._match_punct("("):
            select = self.select_statement()
            self._expect_punct(")")
            return select
        return self.select_statement()

    def _column_def(self) -> ColumnDef:
        name = self._expect_identifier()
        type_token = self.advance()
        if type_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._fail(f"expected type name, found {type_token.value!r}")
        return ColumnDef(name, str(type_token.value))

    def _create_view(self, *, temp: bool, replace: bool) -> CreateView:
        name = self._expect_identifier()
        if self._match_keyword("AS"):
            select = self._parenthesized_or_plain_select()
        elif self._match_punct("("):
            select = self.select_statement()
            self._expect_punct(")")
        else:
            self._fail("expected AS SELECT or (SELECT...) in CREATE VIEW")
            raise AssertionError  # unreachable
        return CreateView(name=name, statement=select, temp=temp, replace=replace)

    def _create_index(self) -> CreateIndex:
        index_name = self._expect_identifier()
        self._expect_keyword("ON")
        table_name = self._expect_identifier()
        self._expect_punct("(")
        column_name = self._expect_identifier()
        self._expect_punct(")")
        return CreateIndex(index_name, table_name, column_name)

    # -- INSERT / UPDATE / DROP ------------------------------------------
    def _insert_statement(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table_name = self._expect_identifier()
        columns: list[str] = []
        if self._match_punct("("):
            columns.append(self._expect_identifier())
            while self._match_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        if self._match_keyword("VALUES"):
            rows = [self._value_row()]
            while self._match_punct(","):
                rows.append(self._value_row())
            return InsertStatement(
                table_name=table_name, columns=tuple(columns), rows=tuple(rows)
            )
        if self.peek().is_keyword("SELECT"):
            select = self.select_statement()
            return InsertStatement(
                table_name=table_name, columns=tuple(columns), from_select=select
            )
        self._fail("expected VALUES or SELECT in INSERT")
        raise AssertionError  # unreachable

    def _value_row(self) -> tuple[Expression, ...]:
        self._expect_punct("(")
        values = [self.expression()]
        while self._match_punct(","):
            values.append(self.expression())
        self._expect_punct(")")
        return tuple(values)

    def _update_statement(self) -> UpdateStatement:
        self._expect_keyword("UPDATE")
        table_name = self._expect_identifier()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._match_punct(","):
            assignments.append(self._assignment())
        where = self.expression() if self._match_keyword("WHERE") else None
        return UpdateStatement(
            table_name=table_name, assignments=tuple(assignments), where=where
        )

    def _assignment(self) -> tuple[str, Expression]:
        name = self._expect_identifier()
        if self._match_operator("=") is None:
            self._fail("expected = in SET assignment")
        return name, self.expression()

    def _drop_statement(self) -> DropStatement:
        self._expect_keyword("DROP")
        if self._match_keyword("TABLE"):
            object_type = "TABLE"
        elif self._match_keyword("VIEW"):
            object_type = "VIEW"
        else:
            self._fail("expected TABLE or VIEW after DROP")
            raise AssertionError  # unreachable
        if_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_identifier()
        return DropStatement(name=name, object_type=object_type, if_exists=if_exists)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        start = self.peek().position
        left = self._and_expression()
        while self._match_keyword("OR"):
            left = self._spanned(
                BinaryOp("OR", left, self._and_expression()), start
            )
        return left

    def _and_expression(self) -> Expression:
        start = self.peek().position
        left = self._not_expression()
        while self._match_keyword("AND"):
            left = self._spanned(
                BinaryOp("AND", left, self._not_expression()), start
            )
        return left

    def _not_expression(self) -> Expression:
        start = self.peek().position
        if self._match_keyword("NOT"):
            return self._spanned(UnaryOp("NOT", self._not_expression()), start)
        return self._comparison()

    def _comparison(self) -> Expression:
        start = self.peek().position
        left = self._additive()
        op = self._match_operator(*_COMPARISON_OPS)
        if op is not None:
            if op == "<>":
                op = "!="
            return self._spanned(BinaryOp(op, left, self._additive()), start)
        negated = self._match_keyword("NOT")
        if self._match_keyword("IN"):
            self._expect_punct("(")
            items = [self.expression()]
            while self._match_punct(","):
                items.append(self.expression())
            self._expect_punct(")")
            return self._spanned(
                InList(left, tuple(items), negated=negated), start
            )
        if self._match_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return self._spanned(
                Between(left, low, high, negated=negated), start
            )
        if self._match_keyword("LIKE"):
            pattern = self._additive()
            like_args = (left, pattern)
            if self._match_keyword("ESCAPE"):
                like_args = (left, pattern, self._additive())
            call = self._spanned(FunctionCall("like", like_args), start)
            if negated:
                return self._spanned(UnaryOp("NOT", call), start)
            return call
        if self._match_keyword("IS"):
            is_not = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return self._spanned(IsNull(left, negated=is_not), start)
        if negated:
            self._fail("expected IN, BETWEEN or LIKE after NOT")
        return left

    def _additive(self) -> Expression:
        start = self.peek().position
        left = self._multiplicative()
        while True:
            op = self._match_operator("+", "-", "||")
            if op is None:
                return left
            left = self._spanned(
                BinaryOp(op, left, self._multiplicative()), start
            )

    def _multiplicative(self) -> Expression:
        start = self.peek().position
        left = self._unary()
        while True:
            op = self._match_operator("*", "/", "%")
            if op is None:
                return left
            left = self._spanned(BinaryOp(op, left, self._unary()), start)

    def _unary(self) -> Expression:
        start = self.peek().position
        if self._match_operator("-"):
            operand = self._unary()
            # Fold negation into numeric literals so -1 round-trips as -1.
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return self._spanned(Literal(-operand.value), start)
            return self._spanned(UnaryOp("-", operand), start)
        if self._match_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expression:
        token = self.peek()
        start = token.position

        if token.type is TokenType.NUMBER:
            self.advance()
            return self._spanned(Literal(token.value), start)
        if token.type is TokenType.STRING:
            self.advance()
            return self._spanned(Literal(token.value), start)
        if token.is_keyword("TRUE"):
            self.advance()
            return self._spanned(Literal(True), start)
        if token.is_keyword("FALSE"):
            self.advance()
            return self._spanned(Literal(False), start)
        if token.is_keyword("NULL"):
            self.advance()
            return self._spanned(Literal(None), start)
        if token.is_keyword("CASE"):
            return self._case_expression()
        if token.is_keyword("NOT"):
            self.advance()
            return self._spanned(UnaryOp("NOT", self._not_expression()), start)

        if token.is_keyword("IF") and self.peek(1).value == "(":
            # if(cond, then, else) — the conditional function; IF is only
            # reserved for DROP ... IF EXISTS.
            self.advance()
            self._expect_punct("(")
            return self._function_call("if", start)

        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self.advance()
            if self.peek().is_keyword("SELECT"):
                statement = self.select_statement()
                self._expect_punct(")")
                return self._spanned(ScalarSubquery(statement), start)
            inner = self.expression()
            self._expect_punct(")")
            return self._spanned(inner, start)

        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return self._spanned(Star(), start)

        if token.type is TokenType.IDENTIFIER:
            return self._identifier_expression()

        if (
            token.type is TokenType.KEYWORD
            and token.value in self._SOFT_KEYWORDS
        ):
            # Soft keywords double as column names in expressions.
            return self._identifier_expression()

        self._fail(f"unexpected token {token.value!r} in expression")
        raise AssertionError  # unreachable

    def _identifier_expression(self) -> Expression:
        start = self.peek().position
        name = self._expect_identifier()

        if self._match_punct("("):
            if name.lower() == "cast":
                return self._cast_expression(start)
            return self._function_call(name, start)

        if self._match_punct("."):
            next_token = self.peek()
            if next_token.type is TokenType.OPERATOR and next_token.value == "*":
                self.advance()
                return self._spanned(Star(table=name), start)
            column = self._expect_identifier()
            if self._match_punct("("):
                self._fail("methods on columns are not supported")
            return self._spanned(ColumnRef(column, table=name), start)

        return self._spanned(ColumnRef(name), start)

    def _function_call(self, name: str, start: int) -> FunctionCall:
        distinct = self._match_keyword("DISTINCT")
        args: list[Expression] = []
        if not self._match_punct(")"):
            args.append(self.expression())
            while self._match_punct(","):
                args.append(self.expression())
            self._expect_punct(")")
        call = FunctionCall(name, tuple(args), distinct=distinct)
        self._spanned(call, start)
        return call

    def _cast_expression(self, start: int) -> Expression:
        """``CAST(expr AS type)`` — desugars to the conversion builtin."""
        operand = self.expression()
        self._expect_keyword("AS")
        type_token = self.advance()
        if type_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._fail(f"expected type name in CAST, found {type_token.value!r}")
        target = _CAST_TARGETS.get(str(type_token.value).lower())
        if target is None:
            self._fail(f"unsupported CAST target type {type_token.value!r}")
            raise AssertionError  # unreachable
        self._expect_punct(")")
        return self._spanned(FunctionCall(target, (operand,)), start)

    def _case_expression(self) -> CaseExpression:
        start = self.peek().position
        self._expect_keyword("CASE")
        whens: list[tuple[Expression, Expression]] = []
        while self._match_keyword("WHEN"):
            condition = self.expression()
            self._expect_keyword("THEN")
            value = self.expression()
            whens.append((condition, value))
        if not whens:
            self._fail("CASE requires at least one WHEN")
        default: Optional[Expression] = None
        if self._match_keyword("ELSE"):
            default = self.expression()
        self._expect_keyword("END")
        case = CaseExpression(tuple(whens), default)
        self._spanned(case, start)
        return case
