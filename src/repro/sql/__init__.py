"""SQL front end: tokenizer, AST and parser (ClickHouse substitute, part 2).

The dialect covers what the paper's generated queries (Q1–Q5) and the
workload queries (Table I) require: SELECT with joins / GROUP BY / ORDER BY /
subqueries, CREATE [TEMP] TABLE (AS SELECT), CREATE VIEW, INSERT, UPDATE,
DROP, and CREATE INDEX.  Function calls resolve against the engine's scalar
and UDF registries at planning time.
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement, parse_statements

__all__ = ["parse_statement", "parse_statements", "tokenize"]
