"""Source spans for AST nodes.

The lexer records the character offset of every token; the parser combines
those offsets into :class:`Span` ranges and attaches them to the AST nodes
it builds.  Error reporting (the semantic analyzer's ``SemanticError``) and
the query linter both point at the offending source text through these.

AST nodes are frozen dataclasses with positional fields, so a ``span``
field on the no-field :class:`~repro.sql.ast_nodes.Expression` base class
would break every subclass (default-before-non-default ordering).  Spans
are therefore carried out of band: :func:`set_span` writes through the
frozen-dataclass guard into a ``_span`` slot and :func:`span_of` reads it
back.  Equality and hashing of the nodes are unaffected, which matters —
the planner keys caches and aggregate slots on node *content*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Span", "set_span", "span_of", "line_and_column"]


@dataclass(frozen=True)
class Span:
    """Half-open character range ``[start, end)`` into the SQL source."""

    start: int
    end: int

    def snippet(self, source: str, context: int = 0) -> str:
        """The source text this span covers (plus optional context chars)."""
        lo = max(0, self.start - context)
        hi = min(len(source), self.end + context)
        return source[lo:hi]

    def __str__(self) -> str:
        return f"[{self.start}:{self.end}]"


def set_span(node: Any, span: Span) -> Any:
    """Attach ``span`` to a (frozen) AST node; returns the node."""
    object.__setattr__(node, "_span", span)
    return node


def span_of(node: Any) -> Optional[Span]:
    """The span attached to ``node``, or None when it was built in code
    (the optimizer and DL2SQL synthesize nodes without source positions)."""
    return getattr(node, "_span", None)


def line_and_column(source: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of ``offset`` in ``source``."""
    prefix = source[:offset]
    line = prefix.count("\n") + 1
    column = offset - (prefix.rfind("\n") + 1) + 1
    return line, column
