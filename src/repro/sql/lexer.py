"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token` ending with an EOF token.  Comments
(``--`` to end of line and ``/* ... */``) are skipped.  String literals use
single quotes with ``''`` as the escape for a literal quote.
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.sql.tokens import KEYWORDS, Token, TokenType

_TWO_CHAR_OPERATORS = ("<=", ">=", "!=", "<>", "||")
_ONE_CHAR_OPERATORS = "+-*/%<>=!"
_PUNCTUATION = "(),.;"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of tokens terminated by EOF."""
    tokens: list[Token] = []
    position = 0
    length = len(text)

    while position < length:
        char = text[position]

        if char.isspace():
            position += 1
            continue

        if char == "-" and text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue

        if char == "/" and text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise LexerError("unterminated block comment", position)
            position = end + 2
            continue

        if char == "'":
            start = position
            value, position = _read_string(text, position)
            tokens.append(Token(TokenType.STRING, value, start))
            continue

        if char.isdigit() or (char == "." and _peek_digit(text, position + 1)):
            start = position
            value, position = _read_number(text, position)
            tokens.append(Token(TokenType.NUMBER, value, start))
            continue

        if char.isalpha() or char == "_":
            start = position
            while position < length and (text[position].isalnum() or text[position] == "_"):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue

        if char == "`" or char == '"':
            start = position
            value, position = _read_quoted_identifier(text, position, char)
            tokens.append(Token(TokenType.IDENTIFIER, value, start))
            continue

        two = text[position : position + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, two, position))
            position += 2
            continue

        if char in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, position))
            position += 1
            continue

        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, position))
            position += 1
            continue

        raise LexerError(f"unexpected character {char!r}", position)

    tokens.append(Token(TokenType.EOF, None, length))
    return tokens


def _peek_digit(text: str, position: int) -> bool:
    return position < len(text) and text[position].isdigit()


def _read_string(text: str, position: int) -> tuple[str, int]:
    start = position
    position += 1  # opening quote
    pieces: list[str] = []
    while position < len(text):
        char = text[position]
        if char == "'":
            if text.startswith("''", position):
                pieces.append("'")
                position += 2
                continue
            return "".join(pieces), position + 1
        pieces.append(char)
        position += 1
    raise LexerError("unterminated string literal", start)


def _read_quoted_identifier(text: str, position: int, quote: str) -> tuple[str, int]:
    start = position
    position += 1
    end = text.find(quote, position)
    if end == -1:
        raise LexerError("unterminated quoted identifier", start)
    return text[position:end], end + 1


def _read_number(text: str, position: int) -> tuple[int | float, int]:
    start = position
    length = len(text)
    seen_dot = False
    seen_exp = False
    while position < length:
        char = text[position]
        if char.isdigit():
            position += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            position += 1
        elif char in "eE" and not seen_exp and position > start:
            nxt = position + 1
            if nxt < length and (text[nxt].isdigit() or text[nxt] in "+-"):
                seen_exp = True
                position += 2 if text[nxt] in "+-" else 1
            else:
                break
        else:
            break
    literal = text[start:position]
    if seen_dot or seen_exp:
        return float(literal), position
    return int(literal), position
