"""Abstract syntax tree for the SQL dialect.

Expression nodes all derive from :class:`Expression`; statement nodes from
:class:`Statement`.  Nodes are plain dataclasses so the planner can pattern
match on them, and every expression can render itself back to SQL text via
``to_sql()`` — the DL2SQL compiler and the optimizer both rewrite queries
and re-emit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expression:
    """Base class for all expression nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: Any

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A column reference, optionally qualified: ``V.keyframe`` or ``meter``."""

    name: str
    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    @property
    def qualified(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``T.*`` in a select list."""

    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``-x`` or ``NOT x``."""

    op: str
    operand: Expression

    def to_sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}({self.operand.to_sql()})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison or logical binary operator."""

    op: str
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Any call: aggregate (SUM/COUNT/...), scalar builtin, or nUDF."""

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class CaseExpression(Expression):
    """``CASE WHEN cond THEN val ... [ELSE val] END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression] = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(i.to_sql() for i in self.items)
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {op} ({inner}))"


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {op} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def to_sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {op})"


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesized SELECT used as a scalar value, e.g. ``(SELECT AVG(v)...)``."""

    statement: "SelectStatement"

    def to_sql(self) -> str:
        return f"({self.statement.to_sql()})"


# ----------------------------------------------------------------------
# Table references
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    """Base class for items in a FROM clause."""

    alias: Optional[str] = None

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class NamedTable(TableRef):
    name: str = ""

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class DerivedTable(TableRef):
    """``(SELECT ...) [AS] alias`` in FROM."""

    statement: Optional["SelectStatement"] = None

    def to_sql(self) -> str:
        inner = self.statement.to_sql() if self.statement else ""
        return f"({inner}) {self.alias or ''}".rstrip()


@dataclass(frozen=True)
class Join(TableRef):
    """``left [INNER] JOIN right ON condition``."""

    left: Optional[TableRef] = None
    right: Optional[TableRef] = None
    condition: Optional[Expression] = None
    join_type: str = "INNER"

    def to_sql(self) -> str:
        assert self.left is not None and self.right is not None
        on_clause = f" ON {self.condition.to_sql()}" if self.condition else ""
        return (
            f"{self.left.to_sql()} {self.join_type} JOIN "
            f"{self.right.to_sql()}{on_clause}"
        )


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Statement:
    """Base class for all statement nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: expression plus optional alias."""

    expression: Expression
    alias: Optional[str] = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expression.to_sql()} AS {self.alias}"
        return self.expression.to_sql()

    def output_name(self, ordinal: int) -> str:
        """The column name this item produces in the result set."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return f"expr_{ordinal}"


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expression.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class SelectStatement(Statement):
    """A full SELECT query."""

    items: tuple[SelectItem, ...]
    from_clause: Optional[TableRef] = None
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    cross_tables: tuple[TableRef, ...] = ()

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        tables = []
        if self.from_clause is not None:
            tables.append(self.from_clause.to_sql())
        tables.extend(t.to_sql() for t in self.cross_tables)
        if tables:
            parts.append("FROM " + ", ".join(tables))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
            if self.offset is not None:
                parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str

    def to_sql(self) -> str:
        return f"{self.name} {self.type_name}"


@dataclass(frozen=True)
class CreateTable(Statement):
    """CREATE [TEMP] TABLE — either with column defs or AS SELECT."""

    name: str
    columns: tuple[ColumnDef, ...] = ()
    as_select: Optional[SelectStatement] = None
    temp: bool = False
    replace: bool = False

    def to_sql(self) -> str:
        temp = "TEMP " if self.temp else ""
        replace = "OR REPLACE " if self.replace else ""
        if self.as_select is not None:
            return f"CREATE {replace}{temp}TABLE {self.name} AS {self.as_select.to_sql()}"
        cols = ", ".join(c.to_sql() for c in self.columns)
        return f"CREATE {replace}{temp}TABLE {self.name} ({cols})"


@dataclass(frozen=True)
class CreateView(Statement):
    name: str
    statement: SelectStatement
    temp: bool = False
    replace: bool = False

    def to_sql(self) -> str:
        temp = "TEMP " if self.temp else ""
        replace = "OR REPLACE " if self.replace else ""
        return f"CREATE {replace}{temp}VIEW {self.name} AS {self.statement.to_sql()}"


@dataclass(frozen=True)
class CreateIndex(Statement):
    index_name: str
    table_name: str
    column_name: str

    def to_sql(self) -> str:
        return f"CREATE INDEX {self.index_name} ON {self.table_name}({self.column_name})"


@dataclass(frozen=True)
class InsertStatement(Statement):
    table_name: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expression, ...], ...] = ()
    from_select: Optional[SelectStatement] = None

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.from_select is not None:
            return f"INSERT INTO {self.table_name}{cols} {self.from_select.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table_name}{cols} VALUES {rows}"


@dataclass(frozen=True)
class UpdateStatement(Statement):
    table_name: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{name} = {expr.to_sql()}" for name, expr in self.assignments)
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"UPDATE {self.table_name} SET {sets}{where}"


@dataclass(frozen=True)
class DropStatement(Statement):
    name: str
    object_type: str = "TABLE"  # TABLE or VIEW
    if_exists: bool = False

    def to_sql(self) -> str:
        exists = "IF EXISTS " if self.if_exists else ""
        return f"DROP {self.object_type} {exists}{self.name}"


@dataclass(frozen=True)
class ExplainStatement(Statement):
    """``EXPLAIN [ANALYZE] SELECT ...``.

    Plain EXPLAIN plans without executing; ANALYZE executes the plan and
    annotates every operator with actual time/rows next to the estimates.
    """

    statement: "SelectStatement"
    analyze: bool = False

    def to_sql(self) -> str:
        mode = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{mode} {self.statement.to_sql()}"


AnyStatement = Union[
    SelectStatement,
    CreateTable,
    CreateView,
    CreateIndex,
    InsertStatement,
    UpdateStatement,
    DropStatement,
    ExplainStatement,
]


# ----------------------------------------------------------------------
# AST utilities used by the planner/optimizer
# ----------------------------------------------------------------------
def walk_expression(expression: Expression):
    """Yield ``expression`` and every sub-expression, depth-first."""
    yield expression
    if isinstance(expression, UnaryOp):
        yield from walk_expression(expression.operand)
    elif isinstance(expression, BinaryOp):
        yield from walk_expression(expression.left)
        yield from walk_expression(expression.right)
    elif isinstance(expression, FunctionCall):
        for arg in expression.args:
            yield from walk_expression(arg)
    elif isinstance(expression, CaseExpression):
        for condition, value in expression.whens:
            yield from walk_expression(condition)
            yield from walk_expression(value)
        if expression.default is not None:
            yield from walk_expression(expression.default)
    elif isinstance(expression, InList):
        yield from walk_expression(expression.operand)
        for item in expression.items:
            yield from walk_expression(item)
    elif isinstance(expression, Between):
        yield from walk_expression(expression.operand)
        yield from walk_expression(expression.low)
        yield from walk_expression(expression.high)
    elif isinstance(expression, IsNull):
        yield from walk_expression(expression.operand)


def referenced_columns(expression: Expression) -> list[ColumnRef]:
    """All column references inside ``expression``."""
    return [n for n in walk_expression(expression) if isinstance(n, ColumnRef)]


def referenced_functions(expression: Expression) -> list[FunctionCall]:
    """All function calls inside ``expression``."""
    return [n for n in walk_expression(expression) if isinstance(n, FunctionCall)]


def split_conjuncts(expression: Optional[Expression]) -> list[Expression]:
    """Split a WHERE tree on AND into its top-level conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op.upper() == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def combine_conjuncts(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Re-assemble conjuncts into a single AND tree (None if empty)."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result
