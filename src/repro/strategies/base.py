"""Shared abstractions for the three strategies.

:class:`ModelTask` couples everything one DL task carries through the
system — the trained student model, its serialized blob (for DB-UDF), its
DL2SQL compilation (for tight integration), class labels, and the
training-time class histogram that powers the hint rules.

:class:`Strategy` is the interface every approach implements; results
carry the paper's three-way cost breakdown.  Table III's qualitative
comparison is encoded as :class:`StrategyCapabilities` on each class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.compiler import CompiledModel
from repro.core.selectivity import NudfSelectivity
from repro.engine.database import Database
from repro.errors import TransferError, UdfError
from repro.hardware import HardwareProfile, SERVER_CPU
from repro.tensor.model import Model


class QueryType(enum.IntEnum):
    """Table I's four collaborative-query classes."""

    #: Q_db and Q_learning are independent of each other.
    INDEPENDENT = 1
    #: Q_db depends on Q_learning (nUDF output feeds an aggregate).
    DB_DEPENDS_ON_LEARNING = 2
    #: Q_learning depends on Q_db (predicates select the model's rows).
    LEARNING_DEPENDS_ON_DB = 3
    #: Mutual dependence (nUDF result compared against a DB column).
    INTERDEPENDENT = 4

    @property
    def difficulty(self) -> str:
        return {1: "Easy", 2: "Medium", 3: "Medium", 4: "Hard"}[int(self)]


@dataclass(frozen=True)
class CollaborativeQuery:
    """One collaborative query: SQL text + metadata."""

    sql: str
    query_type: QueryType
    description: str = ""
    #: Roles of the nUDFs the query references (e.g. ("detect",)).
    udf_roles: tuple[str, ...] = ()


@dataclass
class CostBreakdown:
    """The paper's three cost components, in seconds."""

    loading: float = 0.0
    inference: float = 0.0
    relational: float = 0.0

    @property
    def total(self) -> float:
        return self.loading + self.inference + self.relational

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            loading=self.loading + other.loading,
            inference=self.inference + other.inference,
            relational=self.relational + other.relational,
        )

    def scaled(self, factor: float) -> "CostBreakdown":
        return CostBreakdown(
            loading=self.loading * factor,
            inference=self.inference * factor,
            relational=self.relational * factor,
        )


@dataclass
class StrategyResult:
    """Result rows plus the measured cost breakdown."""

    rows: list[tuple[Any, ...]]
    breakdown: CostBreakdown
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class ModelTask:
    """One DL task from the model repository.

    Attributes:
        name: Task identifier (e.g. ``defect_detection_3``).
        role: The nUDF role it serves: ``detect`` (boolean output),
            ``classify`` / ``recog`` (label output).
        student: The distilled student model used for online inference.
        teacher: The teacher model (kept for depth experiments).
        class_labels: Output labels; for ``detect`` tasks,
            index 1 means "Defect" (TRUE).
        histogram: Training-time class histogram (Eq. 10 input).
        blob: Serialized student (DB-UDF's compiled binary).
        compiled: DL2SQL compilation of the student.
    """

    name: str
    role: str
    student: Model
    teacher: Optional[Model]
    class_labels: list[str]
    histogram: dict[int, int]
    blob: bytes
    compiled: CompiledModel

    @property
    def returns_bool(self) -> bool:
        return self.role == "detect"

    def udf_name(self) -> str:
        return f"nUDF_{self.role}"

    def selectivity(self) -> NudfSelectivity:
        if self.returns_bool:
            labels: Optional[list[Any]] = [False, True]
        else:
            labels = list(self.class_labels)
        return NudfSelectivity.from_histogram(
            self.udf_name(), self.histogram, class_labels=labels
        )

    def predict_value(self, keyframe: np.ndarray) -> Any:
        """The value the task's nUDF returns for one keyframe."""
        index = self.student.predict_class(keyframe)
        if self.returns_bool:
            return bool(index == 1)
        return self.class_labels[index]


@dataclass(frozen=True)
class StrategyCapabilities:
    """Table III, encoded."""

    implementation_complexity: str
    flexibility: str
    optimization: str
    scalability: str
    io_cost: str
    gpu_support: str


class Strategy:
    """Interface of a collaborative-query processing strategy.

    Subclasses implement :meth:`bind_task` (make one task's nUDF available
    in the database, measuring the loading cost — the paper integrates the
    model "on the fly" per query) and :meth:`run` (execute one query,
    returning rows + breakdown).  ``profile`` scales measured host time
    onto the target hardware; ``use_gpu`` offloads inference when both the
    profile and the strategy allow it.
    """

    name = "abstract"
    capabilities: StrategyCapabilities

    def __init__(
        self,
        profile: HardwareProfile = SERVER_CPU,
        use_gpu: bool = False,
    ) -> None:
        if use_gpu and not profile.has_gpu:
            raise ValueError(
                f"profile {profile.name!r} has no GPU for strategy {self.name}"
            )
        self.profile = profile
        self.use_gpu = use_gpu

    # ------------------------------------------------------------------
    def preflight_analysis(
        self,
        db: Database,
        query: "CollaborativeQuery",
        *,
        strict_functions: bool = True,
    ):
        """Bind + type-check the collaborative query before running it.

        All three strategies route through this at the top of ``run``,
        so a malformed query fails with a spanned
        :class:`~repro.errors.SemanticError` *before* any model loading,
        decomposition, or data transfer happens.  The independent
        strategy evaluates its nUDFs outside the database, so it passes
        ``strict_functions=False`` (the nUDF names are not in the DB's
        registry there — everything else is still checked strictly).
        Returns the inferred output schema.
        """
        from repro.analysis.semantic import SemanticAnalyzer
        from repro.sql import parse_statement
        from repro.sql.ast_nodes import SelectStatement

        statement = parse_statement(query.sql)
        if not isinstance(statement, SelectStatement):
            return None
        analyzer = SemanticAnalyzer(
            db.catalog,
            db.functions,
            db.udfs,
            strict_functions=strict_functions,
        )
        return analyzer.analyze(statement)

    def bind_task(self, db: Database, task: ModelTask) -> float:
        """Install the task's nUDF into ``db``; returns load seconds
        (unscaled host time)."""
        raise NotImplementedError

    def unbind_task(self, db: Database, task: ModelTask) -> None:
        """Remove the task's nUDF and any model state."""
        raise NotImplementedError

    def run(
        self,
        db: Database,
        query: CollaborativeQuery,
        tasks: Mapping[str, ModelTask],
    ) -> StrategyResult:
        """Execute one collaborative query.

        ``tasks`` maps nUDF roles (``detect``/``classify``/``recog``) to
        the bound tasks.  Implementations must already have bind_task'ed
        each of them.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Hardware scaling helpers
    # ------------------------------------------------------------------
    def scale_db_seconds(self, measured: float) -> float:
        """Database-kernel work scales with the profile's CPU."""
        return self.profile.cpu_time(measured)

    def scale_dl_seconds(self, measured: float) -> float:
        """DL-framework work: GPU-offloaded when enabled, else CPU with
        the profile's DL-runtime penalty (see repro.hardware)."""
        if self.use_gpu:
            return self.profile.gpu_time(measured)
        return self.profile.cpu_time(measured) * self.profile.dl_runtime_scale

    def gpu_transfer_seconds(self, num_bytes: int) -> float:
        if not self.use_gpu:
            return 0.0
        return self.profile.transfer_time(num_bytes)


#: Failures a fallback chain recovers from: a broken/tripped model UDF
#: (:class:`UdfError` covers :class:`~repro.errors.CircuitOpenError`) or
#: a failing system boundary.  Deadline, cancellation, and memory errors
#: are properties of the *query*, not of one strategy, so they propagate.
RECOVERABLE_STRATEGY_ERRORS = (UdfError, TransferError)


class FallbackChain(Strategy):
    """Serve a collaborative query from the first strategy that works.

    Wraps an ordered preference list — e.g. loose (DB-UDF) first, then
    tight (DL2SQL), then independent (DB-PyTorch) — and degrades down it
    when the preferred strategy fails with a recoverable error.  Later
    strategies bind their tasks lazily, only when actually needed, so the
    happy path pays nothing for the safety net.

    The returned :class:`StrategyResult` records the degradation:
    ``details["served_by"]`` names the strategy that answered,
    ``details["degraded"]`` is True when it was not the primary, and
    ``details["fallback_failures"]`` lists what each skipped strategy
    died of.  Each hop also increments ``strategy_fallbacks_total`` when
    the database carries a metrics registry.
    """

    def __init__(self, strategies: Sequence[Strategy]) -> None:
        if not strategies:
            raise ValueError("FallbackChain needs at least one strategy")
        self.strategies = list(strategies)
        # Mirror the primary's identity; deliberately skip
        # Strategy.__init__ (each wrapped strategy validated its own
        # profile/GPU combination already).
        primary = self.strategies[0]
        self.name = "+".join(s.name for s in self.strategies)
        self.capabilities = primary.capabilities
        self.profile = primary.profile
        self.use_gpu = primary.use_gpu
        #: strategy index -> task names bound on it (lazy for index > 0).
        self._bound_on: dict[int, set[str]] = {
            i: set() for i in range(len(self.strategies))
        }

    def bind_task(self, db: Database, task: ModelTask) -> float:
        """Bind on the primary strategy only; fallbacks bind lazily."""
        seconds = self.strategies[0].bind_task(db, task)
        self._bound_on[0].add(task.name)
        return seconds

    def unbind_task(self, db: Database, task: ModelTask) -> None:
        for index, strategy in enumerate(self.strategies):
            if task.name in self._bound_on[index]:
                strategy.unbind_task(db, task)
                self._bound_on[index].discard(task.name)

    def run(
        self,
        db: Database,
        query: CollaborativeQuery,
        tasks: Mapping[str, ModelTask],
    ) -> StrategyResult:
        failures: list[str] = []
        last_error: Optional[Exception] = None
        for index, strategy in enumerate(self.strategies):
            self._ensure_bound(index, db, tasks)
            try:
                result = strategy.run(db, query, tasks)
            except RECOVERABLE_STRATEGY_ERRORS as exc:
                failures.append(f"{strategy.name}: {exc}")
                last_error = exc
                if db.metrics is not None:
                    db.metrics.counter(
                        "strategy_fallbacks_total",
                        "Strategy failures that fell through to the next "
                        "strategy in a fallback chain",
                    ).inc()
                continue
            result.details["served_by"] = strategy.name
            result.details["degraded"] = index > 0
            if failures:
                result.details["fallback_failures"] = list(failures)
            return result
        assert last_error is not None
        raise last_error

    def _ensure_bound(
        self, index: int, db: Database, tasks: Mapping[str, ModelTask]
    ) -> None:
        strategy = self.strategies[index]
        bound = self._bound_on[index]
        for task in tasks.values():
            if task.name not in bound:
                strategy.bind_task(db, task)
                bound.add(task.name)
