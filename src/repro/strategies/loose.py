"""Loose integration (DB-UDF, Section III-B).

The trained model is "compiled" into a self-contained binary blob
(:mod:`repro.tensor.serialize` plays the role of TorchScript tracing +
serialization).  Binding a task deserializes the blob inside the database
kernel and registers a built-in UDF that runs the reconstructed model —
a black box the optimizer cannot see into, exactly the property the paper
criticizes.  The whole collaborative query then runs in the database.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.engine.database import Database
from repro.engine.udf import BatchUdf
from repro.storage.schema import DataType
from repro.strategies.base import (
    CollaborativeQuery,
    CostBreakdown,
    ModelTask,
    Strategy,
    StrategyCapabilities,
    StrategyResult,
)
from repro.tensor.serialize import deserialize_model


class LooseStrategy(Strategy):
    """DB-UDF: compiled-binary inference behind a database UDF."""

    name = "DB-UDF"
    capabilities = StrategyCapabilities(
        implementation_complexity="Medium",
        flexibility="Need to rewrite and recompile the UDFs for a new query",
        optimization="UDF cannot be optimized by the database's optimizer",
        scalability="Medium",
        io_cost="Medium",
        gpu_support="Depends on the database",
    )

    #: The database invokes UDFs block-wise (ClickHouse processes blocks,
    #: not whole columns), so in GPU mode every block pays a launch +
    #: transfer round-trip — the reason Fig. 8's DB-UDF is the one
    #: configuration the GPU does not help.
    gpu_block_rows = 64

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._bound: dict[str, _BoundTask] = {}

    # ------------------------------------------------------------------
    def bind_task(self, db: Database, task: ModelTask) -> float:
        """Load the compiled binary into the kernel and register the UDF."""
        started = time.perf_counter()
        model = deserialize_model(task.blob)

        def fn(keyframes: np.ndarray) -> np.ndarray:
            out = np.empty(len(keyframes), dtype=object)
            for i, keyframe in enumerate(keyframes):
                index = model.predict_class(np.asarray(keyframe))
                if task.returns_bool:
                    out[i] = bool(index == 1)
                else:
                    out[i] = task.class_labels[index]
            return out

        return_dtype = DataType.BOOL if task.returns_bool else DataType.STRING
        db.register_udf(
            BatchUdf(
                name=task.udf_name(),
                fn=fn,
                return_dtype=return_dtype,
                is_neural=True,
                selectivity_of=task.selectivity().selectivity_equals,
            ),
            replace=True,
        )
        load_seconds = time.perf_counter() - started
        self._bound[task.udf_name().lower()] = _BoundTask(
            task=task, load_seconds=load_seconds, model_bytes=len(task.blob)
        )
        return load_seconds

    def unbind_task(self, db: Database, task: ModelTask) -> None:
        db.udfs.unregister(task.udf_name())
        self._bound.pop(task.udf_name().lower(), None)

    # ------------------------------------------------------------------
    def run(
        self,
        db: Database,
        query: CollaborativeQuery,
        tasks: Mapping[str, ModelTask],
    ) -> StrategyResult:
        bound = self._bound_for(query, tasks)
        self.preflight_analysis(db, query)
        db.udfs.reset_stats()

        with db.tracer.span(
            f"strategy:{self.name}", sql=query.sql
        ) as strategy_span:
            # The whole collaborative query runs inside the database; the
            # UDF registry separates inference from relational time after
            # the fact, so there is no cross-system transfer span here.
            with db.tracer.span("db_subquery") as span:
                started = time.perf_counter()
                result = db.execute(query.sql)
                elapsed = time.perf_counter() - started
                span.set("rows", result.num_rows)

            inference_raw = db.udfs.neural_seconds()
            relational_raw = max(0.0, elapsed - inference_raw)
            inferred_rows = sum(
                db.udfs.get(b.task.udf_name()).stats.rows for b in bound
            )
            strategy_span.set("transfer_bytes", 0)
            strategy_span.set("inferred_rows", inferred_rows)
            strategy_span.set("inference_seconds", inference_raw)

        gpu_marshalling = 0.0
        if self.use_gpu:
            for b in bound:
                rows = db.udfs.get(b.task.udf_name()).stats.rows
                blocks = -(-rows // self.gpu_block_rows) if rows else 0
                frame_bytes = 8
                for dim in b.task.student.input_shape:
                    frame_bytes *= dim
                gpu_marshalling += blocks * self.gpu_transfer_seconds(
                    self.gpu_block_rows * frame_bytes
                )

        # Model-binding time is charged by the benchmark layer per bind
        # (the paper integrates models on the fly, once per query); run()
        # itself only charges run-time loading such as GPU transfers.
        breakdown = CostBreakdown(
            loading=sum(self.gpu_transfer_seconds(b.model_bytes) for b in bound)
            + gpu_marshalling,
            inference=self.scale_dl_seconds(inference_raw),
            relational=self.scale_db_seconds(relational_raw),
        )
        return StrategyResult(
            rows=result.rows(),
            breakdown=breakdown,
            details={"inferred_rows": inferred_rows},
        )

    def _bound_for(
        self,
        query: CollaborativeQuery,
        tasks: Mapping[str, ModelTask],
    ) -> list["_BoundTask"]:
        bound = []
        for role in query.udf_roles:
            task = tasks.get(role)
            if task is None:
                raise WorkloadError(f"query requires unbound nUDF role {role!r}")
            entry = self._bound.get(task.udf_name().lower())
            if entry is None:
                raise WorkloadError(
                    f"task {task.name!r} is not bound; call bind_task first"
                )
            bound.append(entry)
        return bound


class _BoundTask:
    __slots__ = ("task", "load_seconds", "model_bytes")

    def __init__(self, task: ModelTask, load_seconds: float, model_bytes: int) -> None:
        self.task = task
        self.load_seconds = load_seconds
        self.model_bytes = model_bytes
