"""The three collaborative-query processing strategies (Section III).

* :mod:`repro.strategies.independent` — DB-PyTorch: database and DL
  framework as black boxes, an application layer coordinates.
* :mod:`repro.strategies.loose` — DB-UDF: the model is compiled to a
  binary and executed by a database built-in UDF.
* :mod:`repro.strategies.tight` — DL2SQL / DL2SQL-OP: inference runs as
  generated SQL inside the database, optionally with the customized cost
  model and hint rules.

All strategies implement the same interface
(:class:`repro.strategies.base.Strategy`) and report the paper's
three-way cost breakdown (loading / inference / relational).
"""

from repro.strategies.base import (
    CollaborativeQuery,
    CostBreakdown,
    FallbackChain,
    ModelTask,
    QueryType,
    Strategy,
    StrategyResult,
)
from repro.strategies.independent import IndependentStrategy
from repro.strategies.loose import LooseStrategy
from repro.strategies.tight import TightStrategy

__all__ = [
    "CollaborativeQuery",
    "CostBreakdown",
    "FallbackChain",
    "IndependentStrategy",
    "LooseStrategy",
    "ModelTask",
    "QueryType",
    "Strategy",
    "StrategyResult",
    "TightStrategy",
]
