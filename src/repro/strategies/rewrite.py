"""Query rewriting for the independent-processing strategy.

The application layer of DB-PyTorch decomposes a collaborative query by
replacing every nUDF call with a reference to a prediction table it
imports after running inference in the DL framework.  This module holds
the AST surgery: expression transformation, single-table conjunct
extraction (which rows to export), and the final rewrite that joins the
prediction tables in.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import PlanError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DerivedTable,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
    UnaryOp,
    referenced_columns,
    split_conjuncts,
)

Transform = Callable[[Expression], Optional[Expression]]


def transform_expression(expression: Expression, fn: Transform) -> Expression:
    """Bottom-up rewrite: ``fn`` may replace any node (return None to keep)."""
    rebuilt = _rebuild(expression, fn)
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild(expression: Expression, fn: Transform) -> Expression:
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.op, transform_expression(expression.operand, fn))
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.op,
            transform_expression(expression.left, fn),
            transform_expression(expression.right, fn),
        )
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(transform_expression(a, fn) for a in expression.args),
            distinct=expression.distinct,
        )
    if isinstance(expression, CaseExpression):
        return CaseExpression(
            tuple(
                (
                    transform_expression(condition, fn),
                    transform_expression(value, fn),
                )
                for condition, value in expression.whens
            ),
            transform_expression(expression.default, fn)
            if expression.default is not None
            else None,
        )
    if isinstance(expression, InList):
        return InList(
            transform_expression(expression.operand, fn),
            tuple(transform_expression(i, fn) for i in expression.items),
            negated=expression.negated,
        )
    if isinstance(expression, Between):
        return Between(
            transform_expression(expression.operand, fn),
            transform_expression(expression.low, fn),
            transform_expression(expression.high, fn),
            negated=expression.negated,
        )
    if isinstance(expression, IsNull):
        return IsNull(
            transform_expression(expression.operand, fn),
            negated=expression.negated,
        )
    return expression


def replace_udf_calls(
    statement: SelectStatement,
    replacements: dict[str, Expression],
) -> SelectStatement:
    """Replace every ``nUDF(...)`` call (by lowercase name) in the select
    list, WHERE, HAVING and ORDER BY with the mapped expression."""

    def fn(node: Expression) -> Optional[Expression]:
        if isinstance(node, FunctionCall):
            return replacements.get(node.name.lower())
        return None

    items = tuple(
        SelectItem(transform_expression(i.expression, fn), i.alias)
        for i in statement.items
    )
    where = (
        transform_expression(statement.where, fn)
        if statement.where is not None
        else None
    )
    having = (
        transform_expression(statement.having, fn)
        if statement.having is not None
        else None
    )
    order_by = tuple(
        OrderItem(transform_expression(o.expression, fn), o.ascending)
        for o in statement.order_by
    )
    group_by = tuple(
        transform_expression(g, fn) for g in statement.group_by
    )
    return SelectStatement(
        items=items,
        from_clause=statement.from_clause,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=statement.limit,
        distinct=statement.distinct,
        cross_tables=statement.cross_tables,
    )


def add_cross_table(
    statement: SelectStatement,
    table_name: str,
    alias: str,
    join_conjunct: Expression,
) -> SelectStatement:
    """Append a table to FROM (comma join) plus a WHERE conjunct."""
    where = statement.where
    combined = (
        join_conjunct if where is None else BinaryOp("AND", where, join_conjunct)
    )
    return SelectStatement(
        items=statement.items,
        from_clause=statement.from_clause,
        where=combined,
        group_by=statement.group_by,
        having=statement.having,
        order_by=statement.order_by,
        limit=statement.limit,
        distinct=statement.distinct,
        cross_tables=statement.cross_tables
        + (NamedTable(alias=alias, name=table_name),),
    )


def table_aliases(statement: SelectStatement, table_name: str) -> list[str]:
    """All aliases under which ``table_name`` appears in FROM."""
    aliases: list[str] = []

    def visit(ref: Optional[TableRef]) -> None:
        if ref is None:
            return
        if isinstance(ref, NamedTable):
            if ref.name.lower() == table_name.lower():
                aliases.append(ref.alias or ref.name)
        elif isinstance(ref, Join):
            visit(ref.left)
            visit(ref.right)
        elif isinstance(ref, DerivedTable):
            pass  # derived tables shield the inner names

    visit(statement.from_clause)
    for extra in statement.cross_tables:
        visit(extra)
    return aliases


def single_table_conjuncts(
    statement: SelectStatement,
    table_name: str,
    column_names: set[str],
    *,
    exclude_udfs: set[str],
) -> list[Expression]:
    """WHERE conjuncts that reference only ``table_name``'s columns.

    These are the sargable predicates the application layer pushes into
    its export query (so it does not ship every keyframe to the DL side).
    Conjuncts containing any of ``exclude_udfs`` are skipped.
    """
    aliases = {a.lower() for a in table_aliases(statement, table_name)}
    if not aliases:
        raise PlanError(
            f"table {table_name!r} does not appear in the query's FROM clause"
        )
    lowered_columns = {c.lower() for c in column_names}
    result: list[Expression] = []
    for conjunct in split_conjuncts(statement.where):
        if _mentions_udf(conjunct, exclude_udfs):
            continue
        refs = referenced_columns(conjunct)
        if not refs:
            continue
        ok = True
        for ref in refs:
            if ref.table is not None:
                if ref.table.lower() not in aliases:
                    ok = False
                    break
            elif ref.name.lower() not in lowered_columns:
                ok = False
                break
        if ok:
            result.append(conjunct)
    return result


def _mentions_udf(conjunct: Expression, udf_names: set[str]) -> bool:
    from repro.sql.ast_nodes import referenced_functions

    lowered = {u.lower() for u in udf_names}
    return any(
        call.name.lower() in lowered
        for call in referenced_functions(conjunct)
    )


def rewrite_alias_to(
    conjuncts: list[Expression], target_alias: str
) -> list[Expression]:
    """Re-qualify all column references onto ``target_alias`` (used when
    the export query scans the table under a fresh alias)."""

    def fn(node: Expression) -> Optional[Expression]:
        if isinstance(node, ColumnRef):
            return ColumnRef(node.name, table=target_alias)
        return None

    return [transform_expression(c, fn) for c in conjuncts]
