"""Independent processing (DB-PyTorch, Section III-A).

Database and DL framework are two black boxes; this module *is* the
application layer the paper describes.  For each nUDF in a collaborative
query it:

1. extracts the sargable single-table predicates on the video table and
   issues an export query (``Q_db`` piece) to fetch candidate keyframes;
2. serializes the exported rows across the system boundary (a real
   pickle round-trip — the cross-system I/O and data-transformation cost
   the paper charges this strategy with);
3. runs inference in the DL framework (``Q_learning``);
4. serializes predictions back and imports them as a prediction table;
5. rewrites the original query, replacing every nUDF call with a join
   against its prediction table, and lets the database finish.

Export/import time counts as *loading*, model execution as *inference*,
and the database work as *relational* cost.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.engine.database import Database
from repro.engine.infer_cache import hash_row
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    SelectStatement,
    combine_conjuncts,
)
from repro.sql.parser import parse_statement
from repro.storage.table import Table
from repro.strategies.base import (
    CollaborativeQuery,
    CostBreakdown,
    ModelTask,
    Strategy,
    StrategyCapabilities,
    StrategyResult,
)
from repro.strategies.rewrite import (
    replace_udf_calls,
    single_table_conjuncts,
    table_aliases,
)
from repro.strategies.transfer import roundtrip

#: Where nUDF arguments live in the workload schema.
VIDEO_TABLE = "video"
VIDEO_KEY = "videoID"
VIDEO_ARG = "keyframe"


class IndependentStrategy(Strategy):
    """DB-PyTorch: application-layer coordination of two systems."""

    name = "DB-PyTorch"
    capabilities = StrategyCapabilities(
        implementation_complexity="Easy",
        flexibility="Need to rewrite the codes for a new query",
        optimization=(
            "Consider databases and DL systems as black boxes and unable "
            "to optimize"
        ),
        scalability="High",
        io_cost="High",
        gpu_support="Easy",
    )

    def __init__(
        self, *args, retry_policy: Optional[RetryPolicy] = None, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self._bound: dict[str, _BoundTask] = {}
        #: Backoff policy for the pickle boundary; transient
        #: :class:`~repro.errors.TransferError`\ s (checksum mismatches,
        #: injected wire faults) are retried, permanent ones propagate.
        self._retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )

    # ------------------------------------------------------------------
    def bind_task(self, db: Database, task: ModelTask) -> float:
        """'Deploy' the model in the DL system (deserialize its blob)."""
        from repro.tensor.serialize import deserialize_model

        started = time.perf_counter()
        model = deserialize_model(task.blob)
        load_seconds = time.perf_counter() - started
        self._bound[task.udf_name().lower()] = _BoundTask(
            task=task,
            model=model,
            load_seconds=load_seconds,
            model_bytes=len(task.blob),
        )
        return load_seconds

    def unbind_task(self, db: Database, task: ModelTask) -> None:
        self._bound.pop(task.udf_name().lower(), None)

    # ------------------------------------------------------------------
    def run(
        self,
        db: Database,
        query: CollaborativeQuery,
        tasks: Mapping[str, ModelTask],
    ) -> StrategyResult:
        with db.tracer.span(
            f"strategy:{self.name}", sql=query.sql
        ) as strategy_span:
            return self._run(db, query, tasks, strategy_span)

    def _run(
        self,
        db: Database,
        query: CollaborativeQuery,
        tasks: Mapping[str, ModelTask],
        strategy_span,
    ) -> StrategyResult:
        with db.tracer.span("decompose"):
            statement = parse_statement(query.sql)
            if not isinstance(statement, SelectStatement):
                raise WorkloadError("collaborative queries must be SELECTs")
            # nUDFs run outside the database here, so their names are not
            # in db.udfs — check everything else strictly.
            self.preflight_analysis(db, query, strict_functions=False)

        loading_raw = 0.0
        inference_raw = 0.0
        relational_raw = 0.0
        transfer_bytes = 0
        inferred_rows = 0
        replacements: dict[str, ColumnRef] = {}
        pred_joins: list[tuple[str, str]] = []  # (pred table, video alias)

        aliases = table_aliases(statement, VIDEO_TABLE)
        if not aliases:
            raise WorkloadError(
                f"query does not reference the {VIDEO_TABLE!r} table"
            )
        video_alias = aliases[0]
        video_columns = {
            c.lower()
            for c in db.table(VIDEO_TABLE).schema.column_names
        }

        for role in query.udf_roles:
            task = tasks.get(role)
            if task is None:
                raise WorkloadError(f"query requires unbound nUDF role {role!r}")
            bound = self._bound.get(task.udf_name().lower())
            if bound is None:
                raise WorkloadError(
                    f"task {task.name!r} is not bound; call bind_task first"
                )

            # 1. Export query: candidate keyframes under sargable predicates.
            # Every nUDF the query references is excluded — inference is
            # the DL system's job, never the export query's.
            all_udf_names = {
                tasks[r].udf_name() for r in query.udf_roles if r in tasks
            }
            conjuncts = single_table_conjuncts(
                statement,
                VIDEO_TABLE,
                video_columns,
                exclude_udfs=all_udf_names,
            )
            predicate = combine_conjuncts(conjuncts)
            export_sql = (
                f"SELECT {video_alias}.{VIDEO_KEY}, {video_alias}.{VIDEO_ARG} "
                f"FROM {VIDEO_TABLE} {video_alias}"
            )
            if predicate is not None:
                export_sql += f" WHERE {predicate.to_sql()}"
            with db.tracer.span("db_subquery", role=role) as span:
                started = time.perf_counter()
                exported = db.execute(export_sql)
                relational_raw += time.perf_counter() - started
                span.set("rows", exported.num_rows)

            # 2. Serialize across the system boundary (both directions are
            # real, checksummed pickle round-trips: relational rows ->
            # tensor batch).  Transient transfer faults are retried with
            # backoff; the wall clock — including backoff sleeps — is
            # charged to the loading bucket, where the paper puts
            # cross-system I/O cost.
            with db.tracer.span("transfer", direction="db_to_dl") as span:
                started = time.perf_counter()
                keys_and_frames, payload_bytes = self._transfer(
                    db, exported.rows(), stage="db_to_dl"
                )
                loading_raw += time.perf_counter() - started
                transfer_bytes += payload_bytes
                span.set("transfer_bytes", payload_bytes)
                span.set("rows", len(keys_and_frames))

            # 3. Inference in the DL framework.  The application layer
            # consults the database's inference cache (when configured)
            # exactly like the in-database strategies do: hash each
            # frame, run the model only on missed rows.
            with db.tracer.span("inference", role=role) as span:
                started = time.perf_counter()
                predictions, model_rows = _predict_batch(
                    db, bound, task, keys_and_frames
                )
                inference_raw += time.perf_counter() - started
                inferred_rows += model_rows
                span.set("rows", len(predictions))
                span.set("model_rows", model_rows)

            # 4. Import predictions back into the database.
            with db.tracer.span("transfer", direction="dl_to_db") as span:
                started = time.perf_counter()
                back, import_bytes = self._transfer(
                    db, predictions, stage="dl_to_db"
                )
                pred_table_name = f"pred_{role}"
                pred_table = Table.from_dict(
                    pred_table_name,
                    {
                        VIDEO_KEY: [row[0] for row in back],
                        "prediction": [row[1] for row in back],
                    },
                )
                db.register_table(pred_table, temp=True, replace=True)
                loading_raw += time.perf_counter() - started
                transfer_bytes += import_bytes
                span.set("transfer_bytes", import_bytes)
                span.set("rows", len(back))

            alias = f"P_{role}"
            replacements[task.udf_name().lower()] = ColumnRef(
                "prediction", table=alias
            )
            pred_joins.append((pred_table_name, alias))

        # 5. Rewrite and run the final relational query.
        with db.tracer.span("assemble") as span:
            rewritten = replace_udf_calls(statement, dict(replacements))
            for pred_table_name, alias in pred_joins:
                from repro.strategies.rewrite import add_cross_table

                rewritten = add_cross_table(
                    rewritten,
                    pred_table_name,
                    alias,
                    BinaryOp(
                        "=",
                        ColumnRef(VIDEO_KEY, table=alias),
                        ColumnRef(VIDEO_KEY, table=video_alias),
                    ),
                )
            started = time.perf_counter()
            result = db.execute(rewritten.to_sql())
            relational_raw += time.perf_counter() - started
            span.set("rows", result.num_rows)

        strategy_span.set("transfer_bytes", transfer_bytes)
        strategy_span.set("inferred_rows", inferred_rows)
        model_bytes = sum(
            self._bound[tasks[r].udf_name().lower()].model_bytes
            for r in query.udf_roles
        )
        breakdown = CostBreakdown(
            loading=self.scale_db_seconds(loading_raw)
            + self.gpu_transfer_seconds(model_bytes + transfer_bytes),
            inference=self.scale_dl_seconds(inference_raw),
            relational=self.scale_db_seconds(relational_raw),
        )
        return StrategyResult(
            rows=result.rows(),
            breakdown=breakdown,
            details={
                "inferred_rows": inferred_rows,
                "transfer_bytes": transfer_bytes,
                "rewritten_sql": rewritten.to_sql(),
            },
        )

    def _transfer(
        self, db: Database, obj: Any, *, stage: str
    ) -> tuple[Any, int]:
        """One checksummed boundary crossing, retried on transient faults.

        Each retry increments ``transfer_retries_total`` when the database
        carries a metrics registry; permanent :class:`TransferError`\\ s
        (unpicklable payloads, corrupt-beyond-checksum data) propagate
        with the failing stage named.
        """

        def on_retry(attempt: int, exc: BaseException) -> None:
            if db.metrics is not None:
                db.metrics.counter(
                    "transfer_retries_total",
                    "Transient transfer failures retried with backoff",
                ).inc()

        return call_with_retry(
            lambda: roundtrip(obj, faults=db.faults, stage=stage),
            policy=self._retry_policy,
            on_retry=on_retry,
        )


def _predict(bound: "_BoundTask", keyframe: np.ndarray) -> object:
    index = bound.model.predict_class(np.asarray(keyframe))
    if bound.task.returns_bool:
        return bool(index == 1)
    return bound.task.class_labels[index]


def _predict_batch(
    db: Database,
    bound: "_BoundTask",
    task: ModelTask,
    keys_and_frames: list,
) -> tuple[list, int]:
    """Predict every exported frame, via the inference cache when one is
    configured on the database.

    Returns ``(predictions, model_rows)`` where ``model_rows`` counts
    rows the model actually evaluated (cache misses); with no cache that
    is every row.
    """
    cache = getattr(db, "infer_cache", None)
    if cache is None:
        return (
            [(key, _predict(bound, frame)) for key, frame in keys_and_frames],
            len(keys_and_frames),
        )
    namespace = task.udf_name().lower()
    predictions = []
    model_rows = 0
    for key, frame in keys_and_frames:
        digest = hash_row((np.asarray(frame),))
        values, missed = cache.get_many(namespace, [digest])
        if missed:
            value = _predict(bound, frame)
            cache.put(namespace, digest, value)
            model_rows += 1
        else:
            value = values[0]
        predictions.append((key, value))
    return predictions, model_rows


class _BoundTask:
    __slots__ = ("task", "model", "load_seconds", "model_bytes")

    def __init__(self, task, model, load_seconds, model_bytes) -> None:
        self.task = task
        self.model = model
        self.load_seconds = load_seconds
        self.model_bytes = model_bytes
