"""The DB↔DL serialization boundary, made a first-class failure domain.

Independent processing (DB-PyTorch) moves every intermediate result
across a system boundary: relational rows are pickled into a payload,
shipped, and unpickled on the other side.  Historically this was two
bare ``pickle`` calls that either worked or took the process down; this
module wraps the round-trip so that

* every failure surfaces as a typed :class:`~repro.errors.TransferError`
  carrying the failing ``stage`` and the payload ``nbytes`` at that
  point (an unpicklable object, a truncated buffer, a corrupt payload);
* payloads carry a BLAKE2b checksum, so corruption on the wire —
  including faults injected at the ``transfer.serialize`` /
  ``transfer.deserialize`` sites — is *detected* and reported as a
  transient (retryable) error rather than yielding garbage rows;
* the fault injector's transfer sites are honored, letting the chaos
  harness exercise the boundary deterministically.

Transient errors compose with :func:`repro.faults.retry.call_with_retry`
— the independent strategy retries the whole stage with exponential
backoff and counts ``transfer_retries_total``.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import TransferError

if TYPE_CHECKING:  # imported for annotations only
    from repro.faults.injector import FaultInjector

#: Bytes of BLAKE2b digest prefixed to every payload.
CHECKSUM_BYTES = 16


def _checksum(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=CHECKSUM_BYTES).digest()


def serialize_payload(
    obj: Any,
    *,
    faults: Optional["FaultInjector"] = None,
    stage: str = "serialize",
) -> bytes:
    """Pickle ``obj`` into a checksummed payload.

    Raises :class:`TransferError` (permanent) when the object cannot be
    pickled, and re-raises injected faults at ``transfer.serialize`` as
    transfer errors with their transient flag preserved.
    """
    if faults is not None:
        _fire_as_transfer(faults, "transfer.serialize", stage)
    try:
        payload = pickle.dumps(obj)
    except Exception as exc:
        raise TransferError(
            f"transfer stage {stage!r} could not serialize payload: {exc}",
            stage=stage,
            transient=False,
        ) from exc
    if faults is not None:
        # Corruption applies to the raw payload; the checksum is computed
        # over the *uncorrupted* bytes so the receiver detects the damage.
        digest = _checksum(payload)
        payload = faults.corrupt("transfer.serialize", payload)
        return digest + payload
    return _checksum(payload) + payload


def deserialize_payload(
    data: bytes,
    *,
    faults: Optional["FaultInjector"] = None,
    stage: str = "deserialize",
) -> Any:
    """Verify and unpickle a payload produced by :func:`serialize_payload`.

    A checksum mismatch (corruption in flight) is *transient* — the
    sender still holds the original object, so a retry re-serializes and
    usually succeeds.  A payload that fails to unpickle despite a valid
    checksum is permanent.
    """
    if faults is not None:
        _fire_as_transfer(faults, "transfer.deserialize", stage)
    if len(data) < CHECKSUM_BYTES:
        raise TransferError(
            f"transfer stage {stage!r} received a truncated payload "
            f"({len(data)} bytes)",
            stage=stage,
            nbytes=len(data),
            transient=True,
        )
    digest, payload = data[:CHECKSUM_BYTES], data[CHECKSUM_BYTES:]
    if _checksum(payload) != digest:
        raise TransferError(
            f"transfer stage {stage!r} detected payload corruption "
            f"({len(payload)} bytes, checksum mismatch)",
            stage=stage,
            nbytes=len(payload),
            transient=True,
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise TransferError(
            f"transfer stage {stage!r} could not deserialize payload: {exc}",
            stage=stage,
            nbytes=len(payload),
            transient=False,
        ) from exc


def roundtrip(
    obj: Any,
    *,
    faults: Optional["FaultInjector"] = None,
    stage: str = "transfer",
) -> tuple[Any, int]:
    """Serialize + deserialize ``obj`` (one boundary crossing).

    Returns ``(object, payload_bytes)`` where ``payload_bytes`` counts
    the pickled body (excluding the checksum frame), matching what the
    cost model charges as transfer volume.
    """
    data = serialize_payload(obj, faults=faults, stage=f"{stage}.serialize")
    result = deserialize_payload(
        data, faults=faults, stage=f"{stage}.deserialize"
    )
    return result, len(data) - CHECKSUM_BYTES


def _fire_as_transfer(
    faults: "FaultInjector", site: str, stage: str
) -> None:
    """Fire an injection site, converting injected faults to transfer
    errors so retry/backoff treats real and injected faults uniformly."""
    from repro.faults.injector import InjectedFault

    try:
        faults.fire(site, stage=stage)
    except InjectedFault as exc:
        raise TransferError(
            f"transfer stage {stage!r} failed: {exc}",
            stage=stage,
            transient=exc.transient,
        ) from exc
