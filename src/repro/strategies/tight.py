"""Tight integration (DL2SQL / DL2SQL-OP, Section III-C).

Binding a task loads its DL2SQL compilation — the model as relational
tables plus the per-layer SQL program — into the database and registers an
nUDF whose *implementation is the SQL program itself*: each invocation
materializes the keyframe as the input table and executes the compiled
statements.  There is no second system and no cross-system I/O.

``optimized=True`` turns the strategy into DL2SQL-OP: the database's
optimizer runs with the customized cost model and the hint rules of
Section IV (eager/lazy nUDF placement from histogram selectivities,
symmetric hash join for nUDF join keys).
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.core.compiler import PreJoin
from repro.core.hints import HintAwareCostModel, SECONDS_PER_COST_UNIT
from repro.core.runner import Dl2SqlModel
from repro.engine.cost import DefaultCostModel
from repro.engine.database import Database
from repro.engine.optimizer import OptimizerConfig
from repro.engine.udf import BatchUdf
from repro.storage.schema import DataType
from repro.strategies.base import (
    CollaborativeQuery,
    CostBreakdown,
    ModelTask,
    Strategy,
    StrategyCapabilities,
    StrategyResult,
)


class TightStrategy(Strategy):
    """DL2SQL: neural operators as native SQL inside the database."""

    capabilities = StrategyCapabilities(
        implementation_complexity="Hard",
        flexibility="Translate the query into SQL neural operators",
        optimization=(
            "Create new cost model and apply the database's optimizer"
        ),
        scalability="Medium",
        io_cost="Low",
        gpu_support="Depends on the database",
    )

    def __init__(
        self,
        *args,
        optimized: bool = False,
        prejoin: PreJoin = PreJoin.NONE,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.optimized = optimized
        self.prejoin = prejoin
        self.name = "DL2SQL-OP" if optimized else "DL2SQL"
        self._bound: dict[str, _BoundTask] = {}
        self._hint_model: Optional[HintAwareCostModel] = None

    # ------------------------------------------------------------------
    def bind_task(self, db: Database, task: ModelTask) -> float:
        """Load the model's relational tables + indexes, register the
        SQL-backed nUDF, and configure the optimizer."""
        started = time.perf_counter()
        runner = Dl2SqlModel(task.compiled)
        runner.load(db)

        # One calibration inference establishes the per-row cost the hint
        # rules need; its time counts toward model integration (loading).
        warmup = runner.infer(
            db, np.zeros(task.compiled.input_shape, dtype=np.float64)
        )
        cost_per_row = warmup.exec_seconds

        def fn(keyframes: np.ndarray) -> np.ndarray:
            out = np.empty(len(keyframes), dtype=object)
            for i, keyframe in enumerate(keyframes):
                result = runner.infer(db, np.asarray(keyframe))
                if task.returns_bool:
                    out[i] = bool(result.class_index == 1)
                else:
                    out[i] = result.label
            return out

        return_dtype = DataType.BOOL if task.returns_bool else DataType.STRING
        estimator = task.selectivity()
        db.register_udf(
            BatchUdf(
                name=task.udf_name(),
                fn=fn,
                return_dtype=return_dtype,
                cost_per_row=cost_per_row,
                is_neural=True,
                selectivity_of=estimator.selectivity_equals,
                # The implementation executes nested SQL statements on
                # the owning database, whose active-context bookkeeping
                # is per-statement — morsel workers must not run it
                # concurrently.  The inference cache still applies.
                parallel_safe=False,
            ),
            replace=True,
        )

        if self.optimized:
            if self._hint_model is None or db.optimizer_config.cost_model is not self._hint_model:
                self._hint_model = HintAwareCostModel(db.udfs)
                db.optimizer_config = OptimizerConfig(
                    cost_model=self._hint_model, use_hints=True
                )
            self._hint_model.register_selectivity(estimator)
            self._hint_model.add_compiled(task.compiled)
        else:
            db.optimizer_config = OptimizerConfig(
                cost_model=DefaultCostModel(
                    udf_cost_per_row=cost_per_row / SECONDS_PER_COST_UNIT
                ),
                use_hints=False,
            )

        load_seconds = time.perf_counter() - started
        self._bound[task.udf_name().lower()] = _BoundTask(
            task=task,
            runner=runner,
            load_seconds=load_seconds,
            model_bytes=task.compiled.static_bytes(),
        )
        return load_seconds

    def unbind_task(self, db: Database, task: ModelTask) -> None:
        entry = self._bound.pop(task.udf_name().lower(), None)
        if entry is not None:
            entry.runner.unload(db)
        db.udfs.unregister(task.udf_name())

    # ------------------------------------------------------------------
    def run(
        self,
        db: Database,
        query: CollaborativeQuery,
        tasks: Mapping[str, ModelTask],
    ) -> StrategyResult:
        bound = []
        for role in query.udf_roles:
            task = tasks.get(role)
            if task is None:
                raise WorkloadError(f"query requires unbound nUDF role {role!r}")
            entry = self._bound.get(task.udf_name().lower())
            if entry is None:
                raise WorkloadError(
                    f"task {task.name!r} is not bound; call bind_task first"
                )
            bound.append(entry)

        self.preflight_analysis(db, query)
        db.udfs.reset_stats()
        with db.tracer.span(
            f"strategy:{self.name}", sql=query.sql
        ) as strategy_span:
            # No second system: the compiled SQL program runs in-database,
            # so inference appears as nested query spans (one per compiled
            # statement) rather than a cross-system transfer.
            with db.tracer.span("db_subquery") as span:
                started = time.perf_counter()
                result = db.execute(query.sql)
                elapsed = time.perf_counter() - started
                span.set("rows", result.num_rows)

            inference_raw = db.udfs.neural_seconds()
            relational_raw = max(0.0, elapsed - inference_raw)
            inferred_rows = sum(
                db.udfs.get(b.task.udf_name()).stats.rows for b in bound
            )
            strategy_span.set("transfer_bytes", 0)
            strategy_span.set("inferred_rows", inferred_rows)
            strategy_span.set("inference_seconds", inference_raw)

        # Everything here is database-kernel work; the GPU variant offloads
        # the inference statements and pays transfer for the model tables.
        if self.use_gpu:
            inference = self.profile.gpu_time(inference_raw)
            transfer = sum(
                self.gpu_transfer_seconds(b.model_bytes) for b in bound
            )
        else:
            inference = self.scale_db_seconds(inference_raw)
            transfer = 0.0

        # Per-bind model loading is charged by the benchmark layer.
        breakdown = CostBreakdown(
            loading=transfer,
            inference=inference,
            relational=self.scale_db_seconds(relational_raw),
        )
        return StrategyResult(
            rows=result.rows(),
            breakdown=breakdown,
            details={"inferred_rows": inferred_rows},
        )


class _BoundTask:
    __slots__ = ("task", "runner", "load_seconds", "model_bytes")

    def __init__(self, task, runner, load_seconds, model_bytes) -> None:
        self.task = task
        self.runner = runner
        self.load_seconds = load_seconds
        self.model_bytes = model_bytes
