"""Algorithm 1: turning a tensor into a FeatureMap table.

The FeatureMap table has schema ``{MatrixID, OrderID, Value}``:

* ``MatrixID`` identifies one kernel placement (one output position);
* ``OrderID`` serializes the receptive-field slots of that placement —
  generalized from the paper's single-channel illustration to
  multi-channel inputs, ``OrderID = channel·k² + ky·k + kx`` so it aligns
  1:1 with the vectorized kernel table;
* ``Value`` is the input value at that slot.

Elements covered by several placements are stored redundantly, exactly as
the paper notes.  Zero-padding slots are *omitted*: a missing
``(MatrixID, OrderID)`` row contributes nothing to the SUM of Q1, which is
the same as multiplying the kernel weight by zero.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompileError
from repro.tensor.functional import conv_output_size


def feature_map_rows(
    tensor: np.ndarray,
    kernel_size: int,
    stride: int,
    padding: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Algorithm 1 (vectorized): ``[C,H,W]`` -> (MatrixID, OrderID, Value).

    Returns three parallel arrays ready to become table columns.
    """
    if tensor.ndim != 3:
        raise CompileError(f"feature map input must be [C,H,W], got {tensor.shape}")
    channels, height, width = tensor.shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)

    matrix_ids: list[np.ndarray] = []
    order_ids: list[np.ndarray] = []
    values: list[np.ndarray] = []

    slot = np.arange(kernel_size)
    # Top-left corner (in padded coordinates) of each placement.
    ys = np.arange(out_h) * stride - padding
    xs = np.arange(out_w) * stride - padding

    for channel in range(channels):
        for window_y in range(out_h):
            row_positions = ys[window_y] + slot          # k rows
            row_valid = (row_positions >= 0) & (row_positions < height)
            for window_x in range(out_w):
                col_positions = xs[window_x] + slot      # k cols
                col_valid = (col_positions >= 0) & (col_positions < width)
                valid = np.outer(row_valid, col_valid)
                if not valid.any():
                    continue
                ky, kx = np.nonzero(valid)
                matrix_id = window_y * out_w + window_x
                order = channel * kernel_size * kernel_size + ky * kernel_size + kx
                picked = tensor[channel, row_positions[ky], col_positions[kx]]
                matrix_ids.append(np.full(len(ky), matrix_id, dtype=np.int64))
                order_ids.append(order.astype(np.int64))
                values.append(picked.astype(np.float64))

    if not matrix_ids:
        raise CompileError("feature map construction produced no rows")
    return (
        np.concatenate(matrix_ids),
        np.concatenate(order_ids),
        np.concatenate(values),
    )


def flat_rows(tensor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Tensor -> flat table rows (TupleID, Value), TupleID in CHW order."""
    flat = np.asarray(tensor, dtype=np.float64).reshape(-1)
    return np.arange(len(flat), dtype=np.int64), flat


def tensor_from_flat(
    tuple_ids: np.ndarray, values: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Rebuild a tensor from flat-table rows (inverse of :func:`flat_rows`)."""
    size = 1
    for dim in shape:
        size *= dim
    out = np.zeros(size, dtype=np.float64)
    out[np.asarray(tuple_ids, dtype=np.int64)] = np.asarray(values, dtype=np.float64)
    return out.reshape(shape)
